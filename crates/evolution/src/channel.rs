//! Channel-style propagation of SMOs *through* a schema mapping.
//!
//! The paper's second evolution strategy (§4, citing \[24\]): instead of
//! prepending inverted evolution lenses, rewrite the st-tgds so the
//! mapping speaks the evolved schema directly. “It may prove useful to
//! end users … to have a choice between adapting one schema and
//! composing the mappings …, or propagate the evolution primitives
//! through the mapping.”
//!
//! Supported here (the honest fragment — everything else returns
//! [`EvolutionError::CannotPropagate`] with the reason):
//! * source side: create/drop/rename table, add/drop/rename column,
//!   horizontal split, vertical partition, vertical join;
//! * target side: rename table, add/drop/rename column.

use crate::error::EvolutionError;
use crate::smo::Smo;
use dex_logic::{Atom, Mapping, StTgd, Term};
use dex_relational::{Name, Schema};

/// Which side of the mapping a table lives on.
enum Side {
    Source,
    Target,
}

fn side_of(mapping: &Mapping, table: &Name) -> Result<Side, EvolutionError> {
    if mapping.source().relation(table.as_str()).is_some() {
        Ok(Side::Source)
    } else if mapping.target().relation(table.as_str()).is_some() {
        Ok(Side::Target)
    } else {
        Err(EvolutionError::UnknownTable(table.clone()))
    }
}

/// Propagate one SMO through `mapping`, producing the rewritten
/// mapping (evolved schema on the side the SMO touches).
pub fn propagate(smo: &Smo, mapping: &Mapping) -> Result<Mapping, EvolutionError> {
    if mapping.has_target_deps() {
        return Err(EvolutionError::CannotPropagate {
            smo: smo.to_string(),
            reason: "mappings with target dependencies are not supported".into(),
        });
    }
    let table = primary_table(smo);
    let side = match &table {
        Some(t) => side_of(mapping, t)?,
        None => Side::Source, // CreateTable: default to source
    };
    match side {
        Side::Source => propagate_source(smo, mapping),
        Side::Target => propagate_target(smo, mapping),
    }
}

/// Propagate a whole evolution sequence.
pub fn propagate_all(smos: &[Smo], mapping: &Mapping) -> Result<Mapping, EvolutionError> {
    let mut m = mapping.clone();
    for smo in smos {
        m = propagate(smo, &m)?;
    }
    Ok(m)
}

fn primary_table(smo: &Smo) -> Option<Name> {
    match smo {
        Smo::CreateTable(_) => None,
        Smo::DropTable(n) => Some(n.clone()),
        Smo::RenameTable { from, .. } => Some(from.clone()),
        Smo::AddColumn { table, .. }
        | Smo::DropColumn { table, .. }
        | Smo::RenameColumn { table, .. }
        | Smo::SplitHorizontal { table, .. }
        | Smo::PartitionVertical { table, .. } => Some(table.clone()),
        Smo::MergeHorizontal { left, .. } | Smo::JoinVertical { left, .. } => Some(left.clone()),
    }
}

fn rebuild(source: Schema, target: Schema, tgds: Vec<StTgd>) -> Result<Mapping, EvolutionError> {
    Mapping::new(source, target, tgds).map_err(EvolutionError::Relational)
}

fn propagate_source(smo: &Smo, mapping: &Mapping) -> Result<Mapping, EvolutionError> {
    let new_source = smo.apply_schema(mapping.source())?;
    let target = mapping.target().clone();
    let tgds = mapping.st_tgds().to_vec();
    match smo {
        Smo::CreateTable(_) | Smo::RenameColumn { .. } => {
            // Positional tgds are untouched by column renames; a new
            // table is simply unmapped.
            rebuild(new_source, target, tgds)
        }
        Smo::DropTable(n) => {
            let kept: Vec<StTgd> = tgds
                .into_iter()
                .filter(|t| t.lhs.iter().all(|a| &a.relation != n))
                .collect();
            rebuild(new_source, target, kept)
        }
        Smo::RenameTable { from, to } => {
            let rewritten = tgds
                .into_iter()
                .map(|mut t| {
                    for a in t.lhs.iter_mut() {
                        if &a.relation == from {
                            a.relation = to.clone();
                        }
                    }
                    t
                })
                .collect();
            rebuild(new_source, target, rewritten)
        }
        Smo::AddColumn { table, .. } => {
            // Premise atoms over the table gain one fresh variable at
            // the new (last) position.
            let mut counter = 0usize;
            let rewritten = tgds
                .into_iter()
                .map(|mut t| {
                    for a in t.lhs.iter_mut() {
                        if &a.relation == table {
                            let fresh = Name::new(format!("vadd{counter}"));
                            counter += 1;
                            a.args.push(Term::Var(fresh));
                        }
                    }
                    t
                })
                .collect();
            rebuild(new_source, target, rewritten)
        }
        Smo::DropColumn { table, column, .. } => {
            let pos = mapping
                .source()
                .expect_relation(table.as_str())
                .map_err(EvolutionError::Relational)?
                .position(column.as_str())
                .ok_or_else(|| EvolutionError::UnknownColumn {
                    table: table.clone(),
                    column: column.clone(),
                })?;
            // Variables that lose their only binding become existential
            // on the target side (documented information loss).
            let rewritten = tgds
                .into_iter()
                .map(|mut t| {
                    for a in t.lhs.iter_mut() {
                        if &a.relation == table {
                            a.args.remove(pos);
                        }
                    }
                    t
                })
                .collect();
            rebuild(new_source, target, rewritten)
        }
        Smo::SplitHorizontal {
            table,
            true_table,
            false_table,
            ..
        } => {
            // Each tgd with a premise atom over the split table becomes
            // two tgds, one per half — split predicates are not
            // expressible in tgd premises, and do not need to be: the
            // halves partition the rows.
            let mut out = Vec::new();
            for t in tgds {
                if t.lhs.iter().any(|a| &a.relation == table) {
                    for half in [true_table, false_table] {
                        let mut copy = t.clone();
                        for a in copy.lhs.iter_mut() {
                            if &a.relation == table {
                                a.relation = half.clone();
                            }
                        }
                        out.push(copy);
                    }
                } else {
                    out.push(t);
                }
            }
            rebuild(new_source, target, out)
        }
        Smo::PartitionVertical { table, left, right } => {
            // A premise atom T(x̄) becomes L(x̄_L) ∧ R(x̄_R); the shared
            // key columns keep their variables, so the natural join is
            // preserved.
            let rel = mapping
                .source()
                .expect_relation(table.as_str())
                .map_err(EvolutionError::Relational)?
                .clone();
            let pos_of = |c: &Name| -> Result<usize, EvolutionError> {
                rel.position(c.as_str())
                    .ok_or_else(|| EvolutionError::UnknownColumn {
                        table: table.clone(),
                        column: c.clone(),
                    })
            };
            let left_pos: Vec<usize> = left.1.iter().map(&pos_of).collect::<Result<_, _>>()?;
            let right_pos: Vec<usize> = right.1.iter().map(&pos_of).collect::<Result<_, _>>()?;
            let rewritten = tgds
                .into_iter()
                .map(|t| {
                    let mut lhs = Vec::new();
                    for a in t.lhs {
                        if a.relation == *table {
                            lhs.push(Atom::new(
                                left.0.clone(),
                                left_pos.iter().map(|&i| a.args[i].clone()).collect(),
                            ));
                            lhs.push(Atom::new(
                                right.0.clone(),
                                right_pos.iter().map(|&i| a.args[i].clone()).collect(),
                            ));
                        } else {
                            lhs.push(a);
                        }
                    }
                    StTgd::new(lhs, t.rhs)
                })
                .collect();
            rebuild(new_source, target, rewritten)
        }
        Smo::JoinVertical { left, right, out } => {
            // Premise atoms over either input become atoms over the
            // joined table, with fresh variables for the other side's
            // private columns.
            let l_rel = mapping
                .source()
                .expect_relation(left.as_str())
                .map_err(EvolutionError::Relational)?
                .clone();
            let r_rel = mapping
                .source()
                .expect_relation(right.as_str())
                .map_err(EvolutionError::Relational)?
                .clone();
            let joined = new_source
                .expect_relation(out.as_str())
                .map_err(EvolutionError::Relational)?
                .clone();
            let mut counter = 0usize;
            let rewritten = tgds
                .into_iter()
                .map(|t| {
                    let mut lhs = Vec::new();
                    for a in t.lhs {
                        let src_rel = if a.relation == *left {
                            Some(&l_rel)
                        } else if a.relation == *right {
                            Some(&r_rel)
                        } else {
                            None
                        };
                        match src_rel {
                            None => lhs.push(a),
                            Some(rel) => {
                                let mut args = Vec::with_capacity(joined.arity());
                                for jattr in joined.attr_names() {
                                    match rel.position(jattr.as_str()) {
                                        Some(i) => args.push(a.args[i].clone()),
                                        None => {
                                            let fresh = Name::new(format!("vjoin{counter}"));
                                            counter += 1;
                                            args.push(Term::Var(fresh));
                                        }
                                    }
                                }
                                lhs.push(Atom::new(out.clone(), args));
                            }
                        }
                    }
                    StTgd::new(lhs, t.rhs)
                })
                .collect();
            rebuild(new_source, target, rewritten)
        }
        Smo::MergeHorizontal { .. } => Err(EvolutionError::CannotPropagate {
            smo: smo.to_string(),
            reason: "merging source tables loses the provenance the premise atoms rely on; \
                     use the invert-and-compose lens strategy instead"
                .into(),
        }),
    }
}

fn propagate_target(smo: &Smo, mapping: &Mapping) -> Result<Mapping, EvolutionError> {
    let source = mapping.source().clone();
    let new_target = smo.apply_schema(mapping.target())?;
    let tgds = mapping.st_tgds().to_vec();
    match smo {
        Smo::RenameTable { from, to } => {
            let rewritten = tgds
                .into_iter()
                .map(|mut t| {
                    for a in t.rhs.iter_mut() {
                        if &a.relation == from {
                            a.relation = to.clone();
                        }
                    }
                    t
                })
                .collect();
            rebuild(source, new_target, rewritten)
        }
        Smo::RenameColumn { .. } => rebuild(source, new_target, tgds),
        Smo::AddColumn { table, .. } => {
            // Conclusion atoms gain a fresh existential at the new
            // position — exactly a new “extra column” hole.
            let mut counter = 0usize;
            let rewritten = tgds
                .into_iter()
                .map(|mut t| {
                    for a in t.rhs.iter_mut() {
                        if &a.relation == table {
                            let fresh = Name::new(format!("zadd{counter}"));
                            counter += 1;
                            a.args.push(Term::Var(fresh));
                        }
                    }
                    t
                })
                .collect();
            rebuild(source, new_target, rewritten)
        }
        Smo::DropColumn { table, column, .. } => {
            let pos = mapping
                .target()
                .expect_relation(table.as_str())
                .map_err(EvolutionError::Relational)?
                .position(column.as_str())
                .ok_or_else(|| EvolutionError::UnknownColumn {
                    table: table.clone(),
                    column: column.clone(),
                })?;
            let rewritten = tgds
                .into_iter()
                .map(|mut t| {
                    for a in t.rhs.iter_mut() {
                        if &a.relation == table {
                            a.args.remove(pos);
                        }
                    }
                    t
                })
                .collect();
            rebuild(source, new_target, rewritten)
        }
        other => Err(EvolutionError::CannotPropagate {
            smo: other.to_string(),
            reason: "only rename/add-column/drop-column propagate through the target side; \
                     restructure the target with the lens strategy instead"
                .into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::ColumnDefault;
    use dex_chase::exchange;
    use dex_logic::parse_mapping;
    use dex_relational::{tuple, AttrType, Expr, Instance};

    fn base_mapping() -> Mapping {
        parse_mapping(
            r#"
            source Person(id, name, age);
            target Contact(name);
            Person(i, n, a) -> Contact(n);
            "#,
        )
        .unwrap()
    }

    #[test]
    fn rename_source_table_rewrites_premises() {
        let m = propagate(
            &Smo::RenameTable {
                from: Name::new("Person"),
                to: Name::new("People"),
            },
            &base_mapping(),
        )
        .unwrap();
        assert!(m.source().relation("People").is_some());
        assert_eq!(m.st_tgds()[0].lhs[0].relation, "People");
    }

    #[test]
    fn drop_source_table_drops_its_tgds() {
        let m = propagate(&Smo::DropTable(Name::new("Person")), &base_mapping()).unwrap();
        assert!(m.st_tgds().is_empty());
        assert!(m.source().is_empty());
    }

    #[test]
    fn add_source_column_extends_premise_atoms() {
        let m = propagate(
            &Smo::AddColumn {
                table: Name::new("Person"),
                column: Name::new("city"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            },
            &base_mapping(),
        )
        .unwrap();
        assert_eq!(m.st_tgds()[0].lhs[0].arity(), 4);
        // Behaviour preserved on migrated data.
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("Person", vec![tuple![1i64, "Alice", 30i64, "Sydney"]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        assert!(j.contains("Contact", &tuple!["Alice"]));
    }

    #[test]
    fn drop_unexported_source_column_is_lossless() {
        let m = propagate(
            &Smo::DropColumn {
                table: Name::new("Person"),
                column: Name::new("age"),
                restore_default: ColumnDefault::Null,
            },
            &base_mapping(),
        )
        .unwrap();
        assert_eq!(m.st_tgds()[0].lhs[0].arity(), 2);
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("Person", vec![tuple![1i64, "Alice"]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        assert!(j.contains("Contact", &tuple!["Alice"]));
    }

    #[test]
    fn drop_exported_source_column_makes_target_existential() {
        // Dropping `name` removes Contact's only determined column: the
        // tgd's rhs variable becomes existential.
        let m = propagate(
            &Smo::DropColumn {
                table: Name::new("Person"),
                column: Name::new("name"),
                restore_default: ColumnDefault::Null,
            },
            &base_mapping(),
        )
        .unwrap();
        assert!(!m.st_tgds()[0].is_full());
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("Person", vec![tuple![1i64, 30i64]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        assert_eq!(j.fact_count(), 1);
        assert!(!j.is_ground(), "contact name is now a labeled null");
    }

    #[test]
    fn split_source_table_duplicates_tgds() {
        let m = propagate(
            &Smo::SplitHorizontal {
                table: Name::new("Person"),
                pred: Expr::attr("age").ge(Expr::lit(35i64)),
                true_table: Name::new("Senior"),
                false_table: Name::new("Junior"),
            },
            &base_mapping(),
        )
        .unwrap();
        assert_eq!(m.st_tgds().len(), 2);
        // Behavioural equivalence with the lens route: every person
        // still yields a contact.
        let src = Instance::with_facts(
            m.source().clone(),
            vec![
                ("Senior", vec![tuple![2i64, "Bob", 40i64]]),
                ("Junior", vec![tuple![1i64, "Alice", 30i64]]),
            ],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        assert!(j.contains("Contact", &tuple!["Alice"]));
        assert!(j.contains("Contact", &tuple!["Bob"]));
    }

    #[test]
    fn partition_source_table_splits_premise_atom() {
        let m = propagate(
            &Smo::PartitionVertical {
                table: Name::new("Person"),
                left: (Name::new("PN"), vec![Name::new("id"), Name::new("name")]),
                right: (Name::new("PA"), vec![Name::new("id"), Name::new("age")]),
            },
            &base_mapping(),
        )
        .unwrap();
        let tgd = &m.st_tgds()[0];
        assert_eq!(tgd.lhs.len(), 2);
        assert_eq!(tgd.lhs[0].relation, "PN");
        assert_eq!(tgd.lhs[1].relation, "PA");
        // Shared key variable joins the halves.
        assert_eq!(tgd.lhs[0].args[0], tgd.lhs[1].args[0]);
        let src = Instance::with_facts(
            m.source().clone(),
            vec![
                ("PN", vec![tuple![1i64, "Alice"]]),
                ("PA", vec![tuple![1i64, 30i64]]),
            ],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        assert!(j.contains("Contact", &tuple!["Alice"]));
    }

    #[test]
    fn join_vertical_rewrites_both_inputs() {
        let m0 = parse_mapping(
            r#"
            source PN(id, name);
            source PA(id, age);
            target Contact(name);
            target Ages(age);
            PN(i, n) -> Contact(n);
            PA(i, a) -> Ages(a);
            "#,
        )
        .unwrap();
        let m = propagate(
            &Smo::JoinVertical {
                left: Name::new("PN"),
                right: Name::new("PA"),
                out: Name::new("Person"),
            },
            &m0,
        )
        .unwrap();
        for t in m.st_tgds() {
            assert_eq!(t.lhs[0].relation, "Person");
            assert_eq!(t.lhs[0].arity(), 3);
        }
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("Person", vec![tuple![1i64, "Alice", 30i64]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        assert!(j.contains("Contact", &tuple!["Alice"]));
        assert!(j.contains("Ages", &tuple![30i64]));
    }

    #[test]
    fn merge_is_honestly_rejected() {
        let m0 = parse_mapping(
            r#"
            source Cats(name);
            source Dogs(name);
            target Pets(name);
            Cats(x) -> Pets(x);
            Dogs(x) -> Pets(x);
            "#,
        )
        .unwrap();
        let err = propagate(
            &Smo::MergeHorizontal {
                left: Name::new("Cats"),
                right: Name::new("Dogs"),
                out: Name::new("Animals"),
            },
            &m0,
        )
        .unwrap_err();
        assert!(matches!(err, EvolutionError::CannotPropagate { .. }));
    }

    #[test]
    fn target_side_rename_and_columns() {
        let m = propagate(
            &Smo::RenameTable {
                from: Name::new("Contact"),
                to: Name::new("Card"),
            },
            &base_mapping(),
        )
        .unwrap();
        assert_eq!(m.st_tgds()[0].rhs[0].relation, "Card");

        let m2 = propagate(
            &Smo::AddColumn {
                table: Name::new("Contact"),
                column: Name::new("phone"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            },
            &base_mapping(),
        )
        .unwrap();
        let tgd = &m2.st_tgds()[0];
        assert_eq!(tgd.rhs[0].arity(), 2);
        assert_eq!(tgd.existential_vars().len(), 1, "new column is existential");

        let m3 = propagate(
            &Smo::DropColumn {
                table: Name::new("Contact"),
                column: Name::new("name"),
                restore_default: ColumnDefault::Null,
            },
            &base_mapping(),
        )
        .unwrap();
        assert_eq!(m3.st_tgds()[0].rhs[0].arity(), 0);
    }

    #[test]
    fn propagate_all_chains() {
        let m = propagate_all(
            &[
                Smo::RenameTable {
                    from: Name::new("Person"),
                    to: Name::new("People"),
                },
                Smo::AddColumn {
                    table: Name::new("People"),
                    column: Name::new("city"),
                    ty: AttrType::Any,
                    default: ColumnDefault::Null,
                },
            ],
            &base_mapping(),
        )
        .unwrap();
        assert_eq!(m.st_tgds()[0].lhs[0].relation, "People");
        assert_eq!(m.st_tgds()[0].lhs[0].arity(), 4);
    }

    #[test]
    fn unknown_table_rejected() {
        assert!(matches!(
            propagate(&Smo::DropTable(Name::new("Nope")), &base_mapping()),
            Err(EvolutionError::UnknownTable(_))
        ));
    }
}
