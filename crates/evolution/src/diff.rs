//! Schema diff: reconstruct an SMO sequence from two catalogs.
//!
//! `diff(old, new)` returns operators that evolve `old` into `new`.
//! When the catalogs share a lineage (ids comparable), renames are
//! read directly off the ids. Otherwise matching is by name, then by
//! shape — and any step where several reconstructions are equally
//! plausible is refused with a typed
//! [`EvolutionError::AmbiguousDiff`], never guessed: a migration that
//! picks the wrong rename silently destroys a column's data.

use crate::catalog::{CatTable, Catalog};
use crate::error::EvolutionError;
use crate::smo::{ColumnDefault, Smo};
use dex_relational::Name;
use std::collections::BTreeSet;

/// Diff two catalogs into an SMO sequence evolving `old` into `new`.
///
/// Detected edits: table create/drop/rename, column add/drop/rename,
/// and vertical partitions (one old table replaced by two projections
/// sharing a join column). Added columns get
/// [`ColumnDefault::Null`]; dropped columns restore to null when
/// travelling backward. Horizontal splits are *not* inferable (their
/// predicate is not recorded in the schema) and surface as
/// drop+create.
pub fn diff(old: &Catalog, new: &Catalog) -> Result<Vec<Smo>, EvolutionError> {
    let by_ids = old.same_lineage(new);

    // ---- Pass 1: match tables (old index → new index). ----
    let mut matched: Vec<(usize, usize)> = Vec::new();
    let mut old_unmatched: BTreeSet<usize> = (0..old.tables().len()).collect();
    let mut new_unmatched: BTreeSet<usize> = (0..new.tables().len()).collect();

    if by_ids {
        for (oi, ot) in old.tables().iter().enumerate() {
            if let Some(ni) = new.tables().iter().position(|nt| nt.id == ot.id) {
                matched.push((oi, ni));
                old_unmatched.remove(&oi);
                new_unmatched.remove(&ni);
            }
        }
    } else {
        // By name first.
        for (oi, ot) in old.tables().iter().enumerate() {
            if let Some(ni) = new.tables().iter().position(|nt| nt.name == ot.name) {
                matched.push((oi, ni));
                old_unmatched.remove(&oi);
                new_unmatched.remove(&ni);
            }
        }
        // Then by shape (identical attribute-name sequence): a rename.
        // Every candidate edge must be unique on both sides, else the
        // pairing is a guess.
        let header = |t: &CatTable| -> Vec<String> {
            t.columns.iter().map(|c| c.name.to_string()).collect()
        };
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for &oi in &old_unmatched {
            for &ni in &new_unmatched {
                if header(&old.tables()[oi]) == header(&new.tables()[ni]) {
                    edges.push((oi, ni));
                }
            }
        }
        for &(oi, ni) in &edges {
            let o_deg = edges.iter().filter(|(a, _)| *a == oi).count();
            let n_deg = edges.iter().filter(|(_, b)| *b == ni).count();
            if o_deg > 1 || n_deg > 1 {
                return Err(EvolutionError::AmbiguousDiff {
                    detail: format!(
                        "table `{}` could be a rename of several same-shape tables; \
                         rename in smaller steps or keep a shared-lineage catalog",
                        new.tables()[ni].name
                    ),
                });
            }
        }
        for (oi, ni) in edges {
            matched.push((oi, ni));
            old_unmatched.remove(&oi);
            new_unmatched.remove(&ni);
        }
    }

    // ---- Pass 2: vertical partitions among the unmatched. ----
    // One old table T and two new tables L, R with cols(L) ∪ cols(R) =
    // cols(T), all drawn from T, sharing at least one join column.
    let mut partitions: Vec<(usize, usize, usize)> = Vec::new();
    {
        let col_set = |t: &CatTable| -> BTreeSet<String> {
            t.columns.iter().map(|c| c.name.to_string()).collect()
        };
        let mut used_new: BTreeSet<usize> = BTreeSet::new();
        for &oi in &old_unmatched {
            let t_cols = col_set(&old.tables()[oi]);
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            let news: Vec<usize> = new_unmatched
                .iter()
                .copied()
                .filter(|ni| !used_new.contains(ni))
                .collect();
            for (i, &ni) in news.iter().enumerate() {
                for &nj in news.iter().skip(i + 1) {
                    let l = col_set(&new.tables()[ni]);
                    let r = col_set(&new.tables()[nj]);
                    let union: BTreeSet<String> = l.union(&r).cloned().collect();
                    let shared = l.intersection(&r).count();
                    if union == t_cols && shared >= 1 && l != t_cols && r != t_cols {
                        candidates.push((ni, nj));
                    }
                }
            }
            match candidates.len() {
                0 => {}
                1 => {
                    let (ni, nj) = candidates[0];
                    partitions.push((oi, ni, nj));
                    used_new.insert(ni);
                    used_new.insert(nj);
                }
                _ => {
                    return Err(EvolutionError::AmbiguousDiff {
                        detail: format!(
                            "table `{}` could be partitioned into several new-table \
                             pairs; apply the partition explicitly",
                            old.tables()[oi].name
                        ),
                    })
                }
            }
        }
        for (oi, ni, nj) in &partitions {
            old_unmatched.remove(oi);
            new_unmatched.remove(ni);
            new_unmatched.remove(nj);
        }
    }

    // ---- Pass 3: column diffs inside matched tables. ----
    let mut column_ops: Vec<Smo> = Vec::new();
    for &(oi, ni) in &matched {
        let ot = &old.tables()[oi];
        let nt = &new.tables()[ni];
        column_ops.extend(diff_columns(ot, nt, by_ids)?);
    }

    // ---- Assemble, ordered so the sequence applies cleanly. ----
    let mut out: Vec<Smo> = Vec::new();

    // Drops first: they free names renames may need.
    let mut dropped: BTreeSet<String> = BTreeSet::new();
    for &oi in &old_unmatched {
        dropped.insert(old.tables()[oi].name.to_string());
        out.push(Smo::DropTable(old.tables()[oi].name.clone()));
    }

    // Renames in dependency order (Kahn: a rename runs once its target
    // name is free). A cycle (A→B, B→A) cannot be serialised in this
    // vocabulary.
    let mut pending: Vec<(Name, Name)> = matched
        .iter()
        .filter(|&&(oi, ni)| old.tables()[oi].name != new.tables()[ni].name)
        .map(|&(oi, ni)| (old.tables()[oi].name.clone(), new.tables()[ni].name.clone()))
        .collect();
    let mut occupied: BTreeSet<String> = old
        .tables()
        .iter()
        .map(|t| t.name.to_string())
        .filter(|n| !dropped.contains(n))
        .collect();
    // Partitioned tables also free their old name.
    for &(oi, _, _) in &partitions {
        occupied.remove(&old.tables()[oi].name.to_string());
    }
    while !pending.is_empty() {
        let ready = pending
            .iter()
            .position(|(_, to)| !occupied.contains(&to.to_string()));
        match ready {
            Some(i) => {
                let (from, to) = pending.remove(i);
                occupied.remove(&from.to_string());
                occupied.insert(to.to_string());
                out.push(Smo::RenameTable { from, to });
            }
            None => {
                return Err(EvolutionError::UnsupportedDiff {
                    detail: format!(
                        "table renames form a cycle ({}); rename through a \
                         temporary name in two migrations",
                        pending
                            .iter()
                            .map(|(f, t)| format!("`{f}`→`{t}`"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                })
            }
        }
    }

    // Column edits (tables now carry their new names).
    out.append(&mut column_ops);

    // Vertical partitions.
    for (oi, ni, nj) in partitions {
        let part = |idx: usize| -> (Name, Vec<Name>) {
            let t = &new.tables()[idx];
            (
                t.name.clone(),
                t.columns.iter().map(|c| c.name.clone()).collect(),
            )
        };
        out.push(Smo::PartitionVertical {
            table: old.tables()[oi].name.clone(),
            left: part(ni),
            right: part(nj),
        });
    }

    // Creates last: every new name is free by now.
    for &ni in &new_unmatched {
        let t = &new.tables()[ni];
        let attrs: Vec<(Name, dex_relational::AttrType)> =
            t.columns.iter().map(|c| (c.name.clone(), c.ty)).collect();
        let rs = dex_relational::RelSchema::new(t.name.clone(), attrs)
            .map_err(EvolutionError::Relational)?;
        out.push(Smo::CreateTable(rs));
    }

    // Defensive validation: the sequence must actually reproduce the
    // new shape when applied to the old one.
    let mut check = old.clone();
    check.apply_all(&out)?;
    let reached = check.to_schema()?;
    let wanted = new.to_schema()?;
    for want in wanted.relations() {
        let got = reached.relation(want.name().as_str()).ok_or_else(|| {
            EvolutionError::UnsupportedDiff {
                detail: format!("diff lost relation `{}` (internal)", want.name()),
            }
        })?;
        if got.attrs() != want.attrs() {
            return Err(EvolutionError::UnsupportedDiff {
                detail: format!(
                    "relation `{}` changed in a way this diff cannot express \
                     (got {}, want {})",
                    want.name(),
                    got,
                    want
                ),
            });
        }
    }
    if reached.relations().count() != wanted.relations().count() {
        return Err(EvolutionError::UnsupportedDiff {
            detail: "diff produced extra relations (internal)".to_string(),
        });
    }
    Ok(out)
}

/// Column-level diff of one matched table.
fn diff_columns(ot: &CatTable, nt: &CatTable, by_ids: bool) -> Result<Vec<Smo>, EvolutionError> {
    // Pair columns: by id under shared lineage, else by name.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut old_left: BTreeSet<usize> = (0..ot.columns.len()).collect();
    let mut new_left: BTreeSet<usize> = (0..nt.columns.len()).collect();
    for (ci, oc) in ot.columns.iter().enumerate() {
        let found = nt.columns.iter().position(|ncol| {
            if by_ids {
                ncol.id == oc.id
            } else {
                ncol.name == oc.name
            }
        });
        if let Some(ni) = found {
            pairs.push((ci, ni));
            old_left.remove(&ci);
            new_left.remove(&ni);
        }
    }

    let mut ops: Vec<Smo> = Vec::new();
    let table = nt.name.clone();

    // A single leftover on each side is an unambiguous rename; more
    // than one on both sides cannot be decided from names alone.
    if !by_ids {
        if old_left.len() == 1 && new_left.len() == 1 {
            let ci = *old_left.iter().next().ok_or_else(internal_diff)?;
            let ni = *new_left.iter().next().ok_or_else(internal_diff)?;
            pairs.push((ci, ni));
            old_left.clear();
            new_left.clear();
            ops.push(Smo::RenameColumn {
                table: table.clone(),
                from: ot.columns[ci].name.clone(),
                to: nt.columns[ni].name.clone(),
            });
        } else if !old_left.is_empty() && !new_left.is_empty() {
            return Err(EvolutionError::AmbiguousDiff {
                detail: format!(
                    "table `{table}` has several renamed columns ({} old, {} new \
                     unmatched); rename them one migration at a time",
                    old_left.len(),
                    new_left.len()
                ),
            });
        }
    } else {
        // Ids pair renames directly.
        for &(ci, ni) in &pairs {
            if ot.columns[ci].name != nt.columns[ni].name {
                ops.push(Smo::RenameColumn {
                    table: table.clone(),
                    from: ot.columns[ci].name.clone(),
                    to: nt.columns[ni].name.clone(),
                });
            }
        }
    }

    // Order check: surviving columns must keep their relative order —
    // the SMO vocabulary cannot express a reorder.
    let mut order: Vec<usize> = pairs.iter().map(|&(_, ni)| ni).collect();
    let sorted_by_old: Vec<usize> = {
        let mut ps = pairs.clone();
        ps.sort_by_key(|&(ci, _)| ci);
        ps.iter().map(|&(_, ni)| ni).collect()
    };
    order.sort_unstable();
    let mut expect = sorted_by_old.clone();
    expect.sort_unstable();
    debug_assert_eq!(order, expect);
    if sorted_by_old.windows(2).any(|w| w[0] > w[1]) {
        return Err(EvolutionError::UnsupportedDiff {
            detail: format!(
                "table `{table}` reorders its surviving columns; the SMO \
                 vocabulary cannot express a reorder"
            ),
        });
    }

    // Dropped, then added (append-only: added columns must come last,
    // in order — `AddColumn` always appends).
    for &ci in &old_left {
        ops.push(Smo::DropColumn {
            table: table.clone(),
            column: ot.columns[ci].name.clone(),
            restore_default: ColumnDefault::Null,
        });
    }
    let min_new_pos = new_left.iter().copied().min();
    if let Some(pos) = min_new_pos {
        let max_matched = sorted_by_old.iter().copied().max().unwrap_or(0);
        if !sorted_by_old.is_empty() && pos < max_matched {
            return Err(EvolutionError::UnsupportedDiff {
                detail: format!(
                    "table `{table}` inserts column `{}` before existing \
                     columns; `AddColumn` can only append",
                    nt.columns[pos].name
                ),
            });
        }
    }
    for &ni in &new_left {
        ops.push(Smo::AddColumn {
            table: table.clone(),
            column: nt.columns[ni].name.clone(),
            ty: nt.columns[ni].ty,
            default: ColumnDefault::Null,
        });
    }
    Ok(ops)
}

fn internal_diff() -> EvolutionError {
    EvolutionError::UnsupportedDiff {
        detail: "internal diff invariant violated".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{RelSchema, Schema};

    fn schema(decls: &[(&str, &[&str])]) -> Schema {
        Schema::with_relations(
            decls
                .iter()
                .map(|(n, attrs)| {
                    RelSchema::untyped(*n, attrs.iter().map(|a| a.to_string()).collect::<Vec<_>>())
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    fn diff_schemas(old: &Schema, new: &Schema) -> Result<Vec<Smo>, EvolutionError> {
        diff(&Catalog::from_schema(old), &Catalog::from_schema(new))
    }

    #[test]
    fn identical_schemas_diff_to_nothing() {
        let s = schema(&[("Emp", &["name", "dept"])]);
        assert_eq!(diff_schemas(&s, &s).unwrap(), vec![]);
    }

    #[test]
    fn add_and_drop_columns() {
        let old = schema(&[("Emp", &["name", "dept"])]);
        let new = schema(&[("Emp", &["name", "office"])]);
        // `dept` and `office` unmatched on both sides: single-pair
        // rename, not drop+add.
        let smos = diff_schemas(&old, &new).unwrap();
        assert_eq!(
            smos,
            vec![Smo::RenameColumn {
                table: Name::new("Emp"),
                from: Name::new("dept"),
                to: Name::new("office"),
            }]
        );
        // A pure append is an AddColumn.
        let wider = schema(&[("Emp", &["name", "dept", "office"])]);
        let smos = diff_schemas(&old, &wider).unwrap();
        assert!(matches!(&smos[..], [Smo::AddColumn { column, .. }] if column == "office"));
    }

    #[test]
    fn table_rename_detected_by_shape() {
        let old = schema(&[("Emp", &["name", "dept"]), ("Dept", &["dept", "head"])]);
        let new = schema(&[("Employee", &["name", "dept"]), ("Dept", &["dept", "head"])]);
        let smos = diff_schemas(&old, &new).unwrap();
        assert_eq!(
            smos,
            vec![Smo::RenameTable {
                from: Name::new("Emp"),
                to: Name::new("Employee"),
            }]
        );
    }

    #[test]
    fn ambiguous_table_rename_refused() {
        let old = schema(&[("A", &["x", "y"]), ("B", &["x", "y"])]);
        let new = schema(&[("C", &["x", "y"]), ("D", &["x", "y"])]);
        let err = diff_schemas(&old, &new).unwrap_err();
        assert!(matches!(err, EvolutionError::AmbiguousDiff { .. }), "{err}");
    }

    #[test]
    fn shared_lineage_resolves_what_names_cannot() {
        let old = schema(&[("A", &["x", "y"]), ("B", &["x", "y"])]);
        let old_cat = Catalog::from_schema(&old);
        let mut new_cat = old_cat.clone();
        new_cat
            .apply_all(&[
                Smo::RenameTable {
                    from: Name::new("A"),
                    to: Name::new("C"),
                },
                Smo::RenameTable {
                    from: Name::new("B"),
                    to: Name::new("D"),
                },
            ])
            .unwrap();
        let smos = diff(&old_cat, &new_cat).unwrap();
        assert_eq!(smos.len(), 2);
        assert!(smos.iter().all(|s| matches!(s, Smo::RenameTable { .. })));
    }

    #[test]
    fn vertical_partition_detected() {
        let old = schema(&[("Emp", &["name", "dept", "office"])]);
        let new = schema(&[
            ("Names", &["name", "dept"]),
            ("Offices", &["dept", "office"]),
        ]);
        let smos = diff_schemas(&old, &new).unwrap();
        assert_eq!(smos.len(), 1);
        assert!(matches!(&smos[0], Smo::PartitionVertical { table, .. } if table == "Emp"));
    }

    #[test]
    fn create_and_drop_tables() {
        let old = schema(&[("Emp", &["name"]), ("Legacy", &["a", "b", "c"])]);
        let new = schema(&[("Emp", &["name"]), ("Audit", &["who", "what"])]);
        let smos = diff_schemas(&old, &new).unwrap();
        assert_eq!(smos.len(), 2);
        assert!(matches!(&smos[0], Smo::DropTable(n) if n == "Legacy"));
        assert!(matches!(&smos[1], Smo::CreateTable(rs) if rs.name() == "Audit"));
    }

    #[test]
    fn rename_cycle_refused() {
        let old = schema(&[("A", &["x"]), ("B", &["x", "y"])]);
        let old_cat = Catalog::from_schema(&old);
        let mut new_cat = old_cat.clone();
        new_cat
            .apply_all(&[
                Smo::RenameTable {
                    from: Name::new("A"),
                    to: Name::new("Tmp"),
                },
                Smo::RenameTable {
                    from: Name::new("B"),
                    to: Name::new("A"),
                },
                Smo::RenameTable {
                    from: Name::new("Tmp"),
                    to: Name::new("B"),
                },
            ])
            .unwrap();
        let err = diff(&old_cat, &new_cat).unwrap_err();
        assert!(
            matches!(err, EvolutionError::UnsupportedDiff { .. }),
            "{err}"
        );
    }

    #[test]
    fn column_reorder_refused() {
        let old = schema(&[("Emp", &["name", "dept"])]);
        let new = schema(&[("Emp", &["dept", "name"])]);
        let err = diff_schemas(&old, &new).unwrap_err();
        assert!(
            matches!(err, EvolutionError::UnsupportedDiff { .. }),
            "{err}"
        );
    }

    #[test]
    fn diff_sequence_applies_cleanly_via_apply_schema() {
        let old = schema(&[
            ("Emp", &["name", "dept"]),
            ("Dept", &["dept", "head"]),
            ("Legacy", &["z"]),
        ]);
        let new = schema(&[
            ("Employee", &["name", "dept", "office"]),
            ("Dept", &["dept", "head"]),
            ("Audit", &["who"]),
        ]);
        let smos = diff_schemas(&old, &new).unwrap();
        let mut s = old;
        for smo in &smos {
            s = smo.apply_schema(&s).unwrap();
        }
        let e = s.relation("Employee").unwrap();
        assert_eq!(
            e.attr_names().map(|n| n.as_str()).collect::<Vec<_>>(),
            vec!["name", "dept", "office"]
        );
        assert!(s.relation("Audit").is_some());
        assert!(s.relation("Legacy").is_none());
    }
}
