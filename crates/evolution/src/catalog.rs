//! Diffable schema catalogs with stable identities.
//!
//! A [`Catalog`] is a schema whose relations and positions carry
//! **stable ids** (conductor's catalog idiom: identity survives a
//! rename, so a diff can tell `RenameTable` apart from drop+create).
//! Two catalogs are id-comparable only when they share a *lineage* —
//! one was produced from the other by [`Catalog::apply`] — which the
//! lineage token tracks. [`diff`](crate::diff()) falls back to
//! name/shape matching (with typed ambiguity refusals) when the
//! lineages differ, which is the `dexcli migrate` case: the old schema
//! comes from a persisted store, the new one from a `.dex` file, and
//! neither carries ids.

use crate::error::EvolutionError;
use crate::smo::Smo;
use dex_relational::{AttrType, Name, RelSchema, Schema};

/// Stable identity of a relation, preserved across renames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TableId(pub u64);

/// Stable identity of a column, preserved across renames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColumnId(pub u64);

/// One column: stable id + current name + declared type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatColumn {
    /// Stable identity.
    pub id: ColumnId,
    /// Current name.
    pub name: Name,
    /// Declared type.
    pub ty: AttrType,
}

/// One relation: stable id + current name + ordered columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatTable {
    /// Stable identity.
    pub id: TableId,
    /// Current name.
    pub name: Name,
    /// Ordered columns.
    pub columns: Vec<CatColumn>,
}

impl CatTable {
    /// The ordered column names.
    pub fn column_names(&self) -> Vec<&Name> {
        self.columns.iter().map(|c| &c.name).collect()
    }
}

/// A schema with stable relation/position identities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Catalog {
    tables: Vec<CatTable>,
    next_id: u64,
    lineage: u64,
}

/// FNV-1a over the schema display: a deterministic lineage token, so
/// two catalogs built independently from the *same* schema still
/// id-match (their ids coincide by construction), while catalogs of
/// unrelated schemas never spuriously share ids.
fn lineage_of(schema: &Schema) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in schema.to_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Catalog {
    /// Build a catalog from a schema, assigning ids in declaration
    /// order (deterministic: the same schema always yields the same
    /// ids).
    pub fn from_schema(schema: &Schema) -> Catalog {
        let mut next_id = 0u64;
        let mut tables = Vec::new();
        for rel in schema.relations() {
            let tid = TableId(next_id);
            next_id += 1;
            let columns = rel
                .attrs()
                .iter()
                .map(|(name, ty)| {
                    let cid = ColumnId(next_id);
                    next_id += 1;
                    CatColumn {
                        id: cid,
                        name: name.clone(),
                        ty: *ty,
                    }
                })
                .collect();
            tables.push(CatTable {
                id: tid,
                name: rel.name().clone(),
                columns,
            });
        }
        Catalog {
            tables,
            next_id,
            lineage: lineage_of(schema),
        }
    }

    /// The tables, in original declaration order.
    pub fn tables(&self) -> &[CatTable] {
        &self.tables
    }

    /// Look up a table by current name.
    pub fn table(&self, name: &str) -> Option<&CatTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Do `self` and `other` share an edit lineage, making their ids
    /// comparable?
    pub fn same_lineage(&self, other: &Catalog) -> bool {
        self.lineage == other.lineage
    }

    /// Reconstruct the plain schema (functional dependencies are not
    /// tracked by the catalog — diffing operates on names and shapes).
    pub fn to_schema(&self) -> Result<Schema, EvolutionError> {
        let mut rels = Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            let attrs: Vec<(Name, AttrType)> =
                t.columns.iter().map(|c| (c.name.clone(), c.ty)).collect();
            rels.push(RelSchema::new(t.name.clone(), attrs).map_err(EvolutionError::Relational)?);
        }
        Schema::with_relations(rels).map_err(EvolutionError::Relational)
    }

    fn fresh_table_id(&mut self) -> TableId {
        let id = TableId(self.next_id);
        self.next_id += 1;
        id
    }

    fn fresh_column_id(&mut self) -> ColumnId {
        let id = ColumnId(self.next_id);
        self.next_id += 1;
        id
    }

    fn table_mut(&mut self, name: &Name) -> Result<&mut CatTable, EvolutionError> {
        self.tables
            .iter_mut()
            .find(|t| t.name == *name)
            .ok_or_else(|| EvolutionError::UnknownTable(name.clone()))
    }

    fn take_table(&mut self, name: &Name) -> Result<CatTable, EvolutionError> {
        let idx = self
            .tables
            .iter()
            .position(|t| t.name == *name)
            .ok_or_else(|| EvolutionError::UnknownTable(name.clone()))?;
        Ok(self.tables.remove(idx))
    }

    fn check_free(&self, name: &Name) -> Result<(), EvolutionError> {
        if self.table(name.as_str()).is_some() {
            return Err(EvolutionError::NameCollision(name.clone()));
        }
        Ok(())
    }

    /// Apply one SMO, preserving identities: a renamed table or column
    /// keeps its id, a created one gets a fresh id, and vertical
    /// partitions carry their parent's column ids into the parts.
    pub fn apply(&mut self, smo: &Smo) -> Result<(), EvolutionError> {
        match smo {
            Smo::CreateTable(rs) => {
                self.check_free(rs.name())?;
                let tid = self.fresh_table_id();
                let columns = rs
                    .attrs()
                    .iter()
                    .map(|(name, ty)| CatColumn {
                        id: self.fresh_column_id(),
                        name: name.clone(),
                        ty: *ty,
                    })
                    .collect();
                self.tables.push(CatTable {
                    id: tid,
                    name: rs.name().clone(),
                    columns,
                });
            }
            Smo::DropTable(n) => {
                self.take_table(n)?;
            }
            Smo::RenameTable { from, to } => {
                self.check_free(to)?;
                self.table_mut(from)?.name = to.clone();
            }
            Smo::AddColumn {
                table, column, ty, ..
            } => {
                let cid = self.fresh_column_id();
                let t = self.table_mut(table)?;
                if t.columns.iter().any(|c| c.name == *column) {
                    return Err(EvolutionError::NameCollision(column.clone()));
                }
                t.columns.push(CatColumn {
                    id: cid,
                    name: column.clone(),
                    ty: *ty,
                });
            }
            Smo::DropColumn { table, column, .. } => {
                let t = self.table_mut(table)?;
                let idx = t.columns.iter().position(|c| c.name == *column).ok_or(
                    EvolutionError::UnknownColumn {
                        table: table.clone(),
                        column: column.clone(),
                    },
                )?;
                t.columns.remove(idx);
            }
            Smo::RenameColumn { table, from, to } => {
                let t = self.table_mut(table)?;
                if t.columns.iter().any(|c| c.name == *to) {
                    return Err(EvolutionError::NameCollision(to.clone()));
                }
                let c = t.columns.iter_mut().find(|c| c.name == *from).ok_or(
                    EvolutionError::UnknownColumn {
                        table: table.clone(),
                        column: from.clone(),
                    },
                )?;
                c.name = to.clone();
            }
            Smo::SplitHorizontal {
                table,
                true_table,
                false_table,
                ..
            } => {
                let parent = self.take_table(table)?;
                for n in [true_table, false_table] {
                    self.check_free(n)?;
                }
                for n in [true_table, false_table] {
                    let tid = self.fresh_table_id();
                    let columns = parent
                        .columns
                        .iter()
                        .map(|c| CatColumn {
                            id: self.fresh_column_id(),
                            name: c.name.clone(),
                            ty: c.ty,
                        })
                        .collect();
                    self.tables.push(CatTable {
                        id: tid,
                        name: n.clone(),
                        columns,
                    });
                }
            }
            Smo::MergeHorizontal { left, right, out } => {
                let l = self.take_table(left)?;
                let r = self.take_table(right)?;
                if l.column_names() != r.column_names() {
                    return Err(EvolutionError::UnsupportedDiff {
                        detail: format!("merge headers differ: `{left}` vs `{right}`"),
                    });
                }
                self.check_free(out)?;
                let tid = self.fresh_table_id();
                self.tables.push(CatTable {
                    id: tid,
                    name: out.clone(),
                    columns: l.columns,
                });
            }
            Smo::PartitionVertical { table, left, right } => {
                let parent = self.take_table(table)?;
                for (name, cols) in [left, right] {
                    self.check_free(name)?;
                    let columns: Vec<CatColumn> = cols
                        .iter()
                        .map(|c| {
                            parent
                                .columns
                                .iter()
                                .find(|pc| pc.name == *c)
                                .cloned()
                                .ok_or_else(|| EvolutionError::UnknownColumn {
                                    table: table.clone(),
                                    column: c.clone(),
                                })
                        })
                        .collect::<Result<_, _>>()?;
                    let tid = self.fresh_table_id();
                    self.tables.push(CatTable {
                        id: tid,
                        name: name.clone(),
                        columns,
                    });
                }
            }
            Smo::JoinVertical { left, right, out } => {
                let l = self.take_table(left)?;
                let r = self.take_table(right)?;
                self.check_free(out)?;
                let mut columns = l.columns.clone();
                for c in &r.columns {
                    if !columns.iter().any(|lc| lc.name == c.name) {
                        columns.push(c.clone());
                    }
                }
                let tid = self.fresh_table_id();
                self.tables.push(CatTable {
                    id: tid,
                    name: out.clone(),
                    columns,
                });
            }
        }
        Ok(())
    }

    /// Apply a sequence of SMOs (see [`Catalog::apply`]).
    pub fn apply_all(&mut self, smos: &[Smo]) -> Result<(), EvolutionError> {
        for smo in smos {
            self.apply(smo)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::ColumnDefault;

    fn schema(text: &str) -> Schema {
        let rels: Vec<RelSchema> = text
            .split(';')
            .filter(|s| !s.trim().is_empty())
            .map(|decl| {
                let (name, rest) = decl.trim().split_once('(').unwrap();
                let attrs: Vec<String> = rest
                    .trim_end_matches(')')
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .collect();
                RelSchema::untyped(name.trim(), attrs).unwrap()
            })
            .collect();
        Schema::with_relations(rels).unwrap()
    }

    #[test]
    fn ids_survive_renames() {
        let mut cat = Catalog::from_schema(&schema("Emp(name, dept)"));
        let emp_id = cat.table("Emp").unwrap().id;
        let name_id = cat.table("Emp").unwrap().columns[0].id;
        cat.apply_all(&[
            Smo::RenameTable {
                from: Name::new("Emp"),
                to: Name::new("Employee"),
            },
            Smo::RenameColumn {
                table: Name::new("Employee"),
                from: Name::new("name"),
                to: Name::new("full_name"),
            },
        ])
        .unwrap();
        let t = cat.table("Employee").unwrap();
        assert_eq!(t.id, emp_id);
        assert_eq!(t.columns[0].id, name_id);
        assert_eq!(t.columns[0].name, "full_name");
    }

    #[test]
    fn created_entities_get_fresh_ids_and_lineage_is_preserved() {
        let s = schema("Emp(name)");
        let mut cat = Catalog::from_schema(&s);
        let before = cat.clone();
        cat.apply(&Smo::AddColumn {
            table: Name::new("Emp"),
            column: Name::new("dept"),
            ty: AttrType::Any,
            default: ColumnDefault::Null,
        })
        .unwrap();
        assert!(cat.same_lineage(&before));
        let t = cat.table("Emp").unwrap();
        assert_ne!(t.columns[0].id, t.columns[1].id);
        // Independent catalogs of different schemas never id-match.
        let other = Catalog::from_schema(&schema("Dept(name)"));
        assert!(!cat.same_lineage(&other));
    }

    #[test]
    fn partition_carries_column_ids_into_parts() {
        let mut cat = Catalog::from_schema(&schema("Emp(name, dept, office)"));
        let name_id = cat.table("Emp").unwrap().columns[0].id;
        cat.apply(&Smo::PartitionVertical {
            table: Name::new("Emp"),
            left: (
                Name::new("Names"),
                vec![Name::new("name"), Name::new("dept")],
            ),
            right: (
                Name::new("Offices"),
                vec![Name::new("dept"), Name::new("office")],
            ),
        })
        .unwrap();
        assert_eq!(cat.table("Names").unwrap().columns[0].id, name_id);
        let sch = cat.to_schema().unwrap();
        assert_eq!(sch.relations().count(), 2);
    }

    #[test]
    fn apply_mirrors_apply_schema() {
        let s = schema("Emp(name, dept); Dept(dept, head)");
        let smos = vec![
            Smo::RenameTable {
                from: Name::new("Dept"),
                to: Name::new("Department"),
            },
            Smo::DropColumn {
                table: Name::new("Emp"),
                column: Name::new("dept"),
                restore_default: ColumnDefault::Null,
            },
        ];
        let mut cat = Catalog::from_schema(&s);
        cat.apply_all(&smos).unwrap();
        let mut plain = s.clone();
        for smo in &smos {
            plain = smo.apply_schema(&plain).unwrap();
        }
        // Same relation names and attribute sequences.
        let got = cat.to_schema().unwrap();
        for rel in plain.relations() {
            let g = got.relation(rel.name().as_str()).unwrap();
            assert_eq!(g.attrs(), rel.attrs());
        }
        assert_eq!(got.relations().count(), plain.relations().count());
    }
}
