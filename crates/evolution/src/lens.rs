//! SMOs as symmetric lenses; evolutions as lens sequences.
//!
//! Paper §4: “composing mappings specified using lenses is as simple
//! as concatenating them. So, if there is a mapping from S to T as
//! [m₁, m₂, m₃], and one can express a schema evolution operation
//! against S to S′ as a sequence of symmetric lenses [ℓ₁, ℓ₂], then
//! one can construct a mapping from S′ to T as
//! [ℓ₂⁻¹, ℓ₁⁻¹, m₁, m₂, m₃].”
//!
//! [`SmoLens`] makes one SMO a [`SymLens`]; [`EvolutionLens`] chains a
//! sequence; `dex_lens::invert` / `compose_sym` (or the
//! [`SymLens::inverted`]/[`SymLens::then_sym`] methods) implement the
//! bracketed concatenation above.

use crate::error::EvolutionError;
use crate::smo::Smo;
use dex_lens::SymLens;
use dex_relational::{Instance, Schema};

/// One SMO as a symmetric lens between instances of the old and the
/// evolved schema. The complement holds the last state seen on each
/// side, so one-sided data (dropped columns, dropped tables) survives
/// round trips.
#[derive(Clone, Debug)]
pub struct SmoLens {
    smo: Smo,
    old_schema: Schema,
    new_schema: Schema,
}

impl SmoLens {
    /// Build, validating the SMO against `old_schema`.
    pub fn new(smo: Smo, old_schema: Schema) -> Result<Self, EvolutionError> {
        let new_schema = smo.apply_schema(&old_schema)?;
        Ok(SmoLens {
            smo,
            old_schema,
            new_schema,
        })
    }

    /// The operator.
    pub fn smo(&self) -> &Smo {
        &self.smo
    }

    /// The pre-evolution schema.
    pub fn old_schema(&self) -> &Schema {
        &self.old_schema
    }

    /// The evolved schema.
    pub fn new_schema(&self) -> &Schema {
        &self.new_schema
    }

    /// Fallible forward migration.
    pub fn try_forward(
        &self,
        src: &Instance,
        prev_tgt: Option<&Instance>,
    ) -> Result<Instance, EvolutionError> {
        self.smo.forward(src, prev_tgt)
    }

    /// Fallible backward migration.
    pub fn try_backward(
        &self,
        tgt: &Instance,
        prev_src: Option<&Instance>,
    ) -> Result<Instance, EvolutionError> {
        self.smo.backward(tgt, &self.old_schema, prev_src)
    }
}

// The infallible `SymLens` trait surface adapts the fallible
// try_forward/try_backward API for SMOs that passed validation at
// construction; a failure here is a validator bug, not a recoverable
// state.
#[allow(clippy::expect_used)]
impl SymLens for SmoLens {
    type Left = Instance;
    type Right = Instance;
    type Compl = (Option<Instance>, Option<Instance>);

    fn missing(&self) -> Self::Compl {
        (None, None)
    }

    fn put_r(&self, x: &Instance, c: &Self::Compl) -> (Instance, Self::Compl) {
        let y = self
            .try_forward(x, c.1.as_ref())
            .expect("SMO forward failed");
        (y.clone(), (Some(x.clone()), Some(y)))
    }

    fn put_l(&self, y: &Instance, c: &Self::Compl) -> (Instance, Self::Compl) {
        let x = self
            .try_backward(y, c.0.as_ref())
            .expect("SMO backward failed");
        (x.clone(), (Some(x), Some(y.clone())))
    }
}

/// A sequence of SMO lenses — an *evolution* — as a single symmetric
/// lens.
#[derive(Clone, Debug, Default)]
pub struct EvolutionLens {
    steps: Vec<SmoLens>,
}

impl EvolutionLens {
    /// Build from a sequence of SMOs, chaining the schemas.
    pub fn new(smos: Vec<Smo>, initial: Schema) -> Result<Self, EvolutionError> {
        let mut steps = Vec::with_capacity(smos.len());
        let mut schema = initial;
        for smo in smos {
            let step = SmoLens::new(smo, schema)?;
            schema = step.new_schema().clone();
            steps.push(step);
        }
        Ok(EvolutionLens { steps })
    }

    /// The individual steps.
    pub fn steps(&self) -> &[SmoLens] {
        &self.steps
    }

    /// The fully evolved schema.
    pub fn final_schema(&self) -> Option<&Schema> {
        self.steps.last().map(SmoLens::new_schema)
    }
}

impl SymLens for EvolutionLens {
    type Left = Instance;
    type Right = Instance;
    type Compl = Vec<(Option<Instance>, Option<Instance>)>;

    fn missing(&self) -> Self::Compl {
        vec![(None, None); self.steps.len()]
    }

    fn put_r(&self, x: &Instance, c: &Self::Compl) -> (Instance, Self::Compl) {
        let mut state = x.clone();
        let mut compl = Vec::with_capacity(self.steps.len());
        for (step, sc) in self.steps.iter().zip(c.iter()) {
            let (next, nc) = step.put_r(&state, sc);
            state = next;
            compl.push(nc);
        }
        (state, compl)
    }

    fn put_l(&self, y: &Instance, c: &Self::Compl) -> (Instance, Self::Compl) {
        let mut state = y.clone();
        let mut compl = vec![(None, None); self.steps.len()];
        for (i, step) in self.steps.iter().enumerate().rev() {
            let (prev, nc) = step.put_l(&state, &c[i]);
            state = prev;
            compl[i] = nc;
        }
        (state, compl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smo::ColumnDefault;
    use dex_lens::laws;
    use dex_lens::symmetric::invert;
    use dex_relational::{tuple, AttrType, Expr, Name, RelSchema};

    fn person_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped(
            "Person",
            vec!["id", "name", "age"],
        )
        .unwrap()])
        .unwrap()
    }

    fn person_db() -> Instance {
        Instance::with_facts(
            person_schema(),
            vec![(
                "Person",
                vec![tuple![1i64, "Alice", 30i64], tuple![2i64, "Bob", 40i64]],
            )],
        )
        .unwrap()
    }

    fn rename_lens() -> SmoLens {
        SmoLens::new(
            Smo::RenameTable {
                from: Name::new("Person"),
                to: Name::new("People"),
            },
            person_schema(),
        )
        .unwrap()
    }

    #[test]
    fn smolens_laws_for_lossless_smos() {
        let l = rename_lens();
        let fwd = l.try_forward(&person_db(), None).unwrap();
        let report = laws::check_sym_well_behaved(&l, &[person_db()], &[fwd], &[l.missing()]);
        assert!(report.all_ok(), "{report}");
    }

    #[test]
    fn smolens_round_trip_restores_dropped_column() {
        let l = SmoLens::new(
            Smo::DropColumn {
                table: Name::new("Person"),
                column: Name::new("age"),
                restore_default: ColumnDefault::Null,
            },
            person_schema(),
        )
        .unwrap();
        let (narrow, c1) = l.put_r(&person_db(), &l.missing());
        assert_eq!(narrow.schema().relation("Person").unwrap().arity(), 2);
        // Delete Bob on the evolved side; push back.
        let mut edited = narrow.clone();
        edited.remove("Person", &tuple![2i64, "Bob"]).unwrap();
        let (back, _) = l.put_l(&edited, &c1);
        assert_eq!(back.fact_count(), 1);
        assert!(
            back.contains("Person", &tuple![1i64, "Alice", 30i64]),
            "age restored from the complement"
        );
    }

    #[test]
    fn evolution_sequence_chains_schemas() {
        let evo = EvolutionLens::new(
            vec![
                Smo::RenameTable {
                    from: Name::new("Person"),
                    to: Name::new("People"),
                },
                Smo::AddColumn {
                    table: Name::new("People"),
                    column: Name::new("city"),
                    ty: AttrType::Any,
                    default: ColumnDefault::Const("unknown".into()),
                },
                Smo::SplitHorizontal {
                    table: Name::new("People"),
                    pred: Expr::attr("age").ge(Expr::lit(35i64)),
                    true_table: Name::new("Seniors"),
                    false_table: Name::new("Juniors"),
                },
            ],
            person_schema(),
        )
        .unwrap();
        let final_schema = evo.final_schema().unwrap();
        assert!(final_schema.relation("Seniors").is_some());
        assert!(final_schema.relation("Juniors").is_some());

        let (evolved, c) = evo.put_r(&person_db(), &evo.missing());
        assert!(evolved.contains("Seniors", &tuple![2i64, "Bob", 40i64, "unknown"]));
        assert!(evolved.contains("Juniors", &tuple![1i64, "Alice", 30i64, "unknown"]));
        // Round trip.
        let (back, _) = evo.put_l(&evolved, &c);
        assert_eq!(back, person_db());
    }

    #[test]
    fn inverted_evolution_goes_the_other_way() {
        let evo = EvolutionLens::new(
            vec![Smo::RenameTable {
                from: Name::new("Person"),
                to: Name::new("People"),
            }],
            person_schema(),
        )
        .unwrap();
        let inv = invert(evo.clone());
        let (renamed, _) = evo.put_r(&person_db(), &evo.missing());
        // The inverse pushes evolved → original.
        let (orig, _) = inv.put_r(&renamed, &inv.missing());
        assert_eq!(orig, person_db());
    }

    #[test]
    fn empty_evolution_is_identity_ish() {
        let evo = EvolutionLens::new(vec![], person_schema()).unwrap();
        let (same, _) = evo.put_r(&person_db(), &evo.missing());
        assert_eq!(same, person_db());
        assert!(evo.final_schema().is_none());
    }
}
