//! Compile an SMO sequence into one migration [`Mapping`].
//!
//! Each step k becomes a mapping from the `v{k}__`-prefixed schema to
//! the `v{k+1}__`-prefixed one (the prefix satisfies the mapping
//! language's disjoint-vocabulary rule and makes consecutive steps
//! chain exactly), the steps are folded through [`dex_ops::compose()`]
//! (Fagin–Kolaitis–Popa–Tan), and the result is **de-skolemized** back
//! to plain st-tgds: a Skolem term produced by an earlier step's
//! existential and threaded through later copies appears only in
//! conclusions, where it is a fresh existential again. Sequences that
//! genuinely leave the first-order fragment (a Skolem term shared
//! across clauses or constrained in a premise) are refused with a
//! typed [`EvolutionError::NotFirstOrder`] — the caller gets a clean
//! 422-style refusal instead of a silently wrong migration.
//!
//! The final mapping's target is the *plain* new schema (prefix
//! stripped), with the new schema's key dependencies attached as
//! target egds: the migration chase itself enforces the evolved keys.

use crate::error::EvolutionError;
use crate::smo::{ColumnDefault, Smo};
use dex_logic::{Atom, Egd, Mapping, SoTgd, StTgd, Term};
use dex_ops::compose;
use dex_relational::{Instance, Name, RelSchema, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// The relation-name prefix marking version `k` of an evolving schema.
pub fn version_prefix(k: usize) -> String {
    format!("v{k}__")
}

fn prefixed_name(name: &Name, k: usize) -> Name {
    Name::new(format!("{}{}", version_prefix(k), name))
}

/// Rename every relation of `schema` to its version-`k` name,
/// preserving attributes and functional dependencies.
pub fn prefix_schema(schema: &Schema, k: usize) -> Result<Schema, EvolutionError> {
    let rels: Vec<RelSchema> = schema
        .relations()
        .map(|r| r.clone().renamed(prefixed_name(r.name(), k)))
        .collect();
    Schema::with_relations(rels).map_err(EvolutionError::Relational)
}

/// Copy `inst` onto the version-`k` renaming of its schema (tuples,
/// nulls and all) — the form the migration mapping's source expects.
pub fn prefix_instance(inst: &Instance, k: usize) -> Result<Instance, EvolutionError> {
    let schema = prefix_schema(inst.schema(), k)?;
    let mut out = Instance::empty(schema);
    for (rel, tuple) in inst.facts() {
        out.insert(prefixed_name(rel, k).as_str(), tuple.clone())
            .map_err(EvolutionError::Relational)?;
    }
    Ok(out)
}

/// Variables `x0..x{n-1}`.
fn row_vars(n: usize) -> Vec<Term> {
    (0..n).map(|i| Term::var(format!("x{i}"))).collect()
}

/// `R(x0..xn) -> S(x0..xn)`-style copy rule between two versions of
/// one relation (same arity, possibly different names).
fn copy_rule(from: &Name, from_k: usize, to: &Name, to_k: usize, arity: usize) -> StTgd {
    let vars = row_vars(arity);
    StTgd::new(
        vec![Atom::new(prefixed_name(from, from_k), vars.clone())],
        vec![Atom::new(prefixed_name(to, to_k), vars)],
    )
}

/// Compile one SMO into the mapping from version `k` (the schema
/// `before` the operator) to version `k+1`.
fn step_mapping(before: &Schema, smo: &Smo, k: usize) -> Result<Mapping, EvolutionError> {
    let after = smo.apply_schema(before)?;
    let source = prefix_schema(before, k)?;
    let target = prefix_schema(&after, k + 1)?;

    let arity_of =
        |s: &Schema, n: &Name| -> usize { s.relation(n.as_str()).map(|r| r.arity()).unwrap_or(0) };
    // Copy rules for every relation untouched by the operator.
    let mut tgds: Vec<StTgd> = Vec::new();
    let touched: Vec<&Name> = match smo {
        Smo::CreateTable(rs) => vec![rs.name()],
        Smo::DropTable(n) => vec![n],
        Smo::RenameTable { from, to } => vec![from, to],
        Smo::AddColumn { table, .. }
        | Smo::DropColumn { table, .. }
        | Smo::RenameColumn { table, .. } => vec![table],
        Smo::SplitHorizontal {
            table,
            true_table,
            false_table,
            ..
        } => vec![table, true_table, false_table],
        Smo::MergeHorizontal { left, right, out } => vec![left, right, out],
        Smo::PartitionVertical { table, left, right } => vec![table, &left.0, &right.0],
        Smo::JoinVertical { left, right, out } => vec![left, right, out],
    };
    for rel in before.relations() {
        if touched.iter().any(|t| *t == rel.name()) {
            continue;
        }
        tgds.push(copy_rule(rel.name(), k, rel.name(), k + 1, rel.arity()));
    }

    // Operator-specific rules.
    match smo {
        Smo::CreateTable(_) => {} // new table starts empty
        Smo::DropTable(_) => {}   // its rows simply have no conclusion
        Smo::RenameTable { from, to } => {
            tgds.push(copy_rule(from, k, to, k + 1, arity_of(before, from)));
        }
        Smo::AddColumn { table, default, .. } => {
            let n = arity_of(before, table);
            let mut rhs = row_vars(n);
            match default {
                ColumnDefault::Null => rhs.push(Term::var("y")),
                ColumnDefault::Const(c) => rhs.push(Term::Const(c.clone())),
            }
            tgds.push(StTgd::new(
                vec![Atom::new(prefixed_name(table, k), row_vars(n))],
                vec![Atom::new(prefixed_name(table, k + 1), rhs)],
            ));
        }
        Smo::DropColumn { table, column, .. } => {
            let rel = before
                .relation(table.as_str())
                .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
            let keep: Vec<Term> = rel
                .attrs()
                .iter()
                .enumerate()
                .filter(|(_, (a, _))| a != column)
                .map(|(i, _)| Term::var(format!("x{i}")))
                .collect();
            tgds.push(StTgd::new(
                vec![Atom::new(prefixed_name(table, k), row_vars(rel.arity()))],
                vec![Atom::new(prefixed_name(table, k + 1), keep)],
            ));
        }
        Smo::RenameColumn { table, .. } => {
            // Positions are unchanged; only the schema header differs.
            tgds.push(copy_rule(table, k, table, k + 1, arity_of(before, table)));
        }
        Smo::SplitHorizontal { pred, .. } => {
            return Err(EvolutionError::NotCompilable {
                smo: smo.to_string(),
                reason: format!(
                    "the split predicate `{pred}` is not expressible in the \
                     tgd language; split the data explicitly and migrate the \
                     two halves as created tables"
                ),
            });
        }
        Smo::MergeHorizontal { left, right, out } => {
            tgds.push(copy_rule(left, k, out, k + 1, arity_of(before, left)));
            tgds.push(copy_rule(right, k, out, k + 1, arity_of(before, right)));
        }
        Smo::PartitionVertical { table, left, right } => {
            let rel = before
                .relation(table.as_str())
                .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
            for (name, cols) in [left, right] {
                let sel: Vec<Term> = cols
                    .iter()
                    .map(|c| {
                        rel.position(c.as_str())
                            .map(|i| Term::var(format!("x{i}")))
                            .ok_or_else(|| EvolutionError::UnknownColumn {
                                table: table.clone(),
                                column: c.clone(),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                tgds.push(StTgd::new(
                    vec![Atom::new(prefixed_name(table, k), row_vars(rel.arity()))],
                    vec![Atom::new(prefixed_name(name, k + 1), sel)],
                ));
            }
        }
        Smo::JoinVertical { left, right, out } => {
            let l = before
                .relation(left.as_str())
                .ok_or_else(|| EvolutionError::UnknownTable(left.clone()))?;
            let r = before
                .relation(right.as_str())
                .ok_or_else(|| EvolutionError::UnknownTable(right.clone()))?;
            // Shared attribute names join; the out row is l's columns
            // then r's non-shared ones (matching `apply_schema`).
            let var_for = |a: &Name, side: char, i: usize, shared: bool| -> Term {
                if shared {
                    Term::var(format!("s_{a}"))
                } else {
                    Term::var(format!("{side}{i}"))
                }
            };
            let l_vars: Vec<Term> = l
                .attrs()
                .iter()
                .enumerate()
                .map(|(i, (a, _))| var_for(a, 'l', i, r.position(a.as_str()).is_some()))
                .collect();
            let r_vars: Vec<Term> = r
                .attrs()
                .iter()
                .enumerate()
                .map(|(i, (a, _))| var_for(a, 'r', i, l.position(a.as_str()).is_some()))
                .collect();
            let mut out_vars = l_vars.clone();
            for (i, (a, _)) in r.attrs().iter().enumerate() {
                if l.position(a.as_str()).is_none() {
                    out_vars.push(r_vars[i].clone());
                }
            }
            tgds.push(StTgd::new(
                vec![
                    Atom::new(prefixed_name(left, k), l_vars),
                    Atom::new(prefixed_name(right, k), r_vars),
                ],
                vec![Atom::new(prefixed_name(out, k + 1), out_vars)],
            ));
        }
    }

    Mapping::new(source, target, tgds).map_err(EvolutionError::Relational)
}

/// De-skolemize an SO-tgd whose function terms occur only in
/// conclusions: each distinct application becomes a fresh existential
/// variable of its clause. Refused (typed) when a function term is
/// constrained by a premise/equality or shared across clauses — those
/// compositions are genuinely second-order (the paper's Example 2).
fn deskolemize(so: &SoTgd) -> Result<Vec<StTgd>, EvolutionError> {
    let mut seen_apps: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = Vec::with_capacity(so.clauses.len());
    for (ci, clause) in so.clauses.iter().enumerate() {
        if !clause.lhs_eqs.is_empty() {
            return Err(EvolutionError::NotFirstOrder {
                detail: format!(
                    "clause {} constrains a Skolem term in its premise ({})",
                    ci,
                    clause
                        .lhs_eqs
                        .iter()
                        .map(|(l, r)| format!("{l} = {r}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        if clause.lhs_atoms.iter().any(Atom::has_func) {
            return Err(EvolutionError::NotFirstOrder {
                detail: format!("clause {ci} has a function term in a premise atom"),
            });
        }
        let mut rhs = clause.rhs_atoms.clone();
        let mut taken: BTreeSet<String> = BTreeSet::new();
        for a in clause.lhs_atoms.iter().chain(rhs.iter()) {
            for v in a.variables() {
                taken.insert(v.to_string());
            }
        }
        let mut fresh = 0usize;
        // Innermost-first: repeatedly replace a function application
        // with no function subterms, so nested Skolems (AddColumn
        // after AddColumn) unwind to independent existentials.
        while let Some(app) = rhs
            .iter()
            .flat_map(|a| a.args.iter())
            .find_map(innermost_app)
        {
            let key = app.to_string();
            if let Some(&other) = seen_apps.get(&key) {
                if other != ci {
                    return Err(EvolutionError::NotFirstOrder {
                        detail: format!(
                            "Skolem term {key} is shared by clauses {other} and {ci}; \
                             its witness cannot be split into per-clause existentials"
                        ),
                    });
                }
            }
            seen_apps.insert(key, ci);
            let mut name = format!("e{fresh}");
            while taken.contains(&name) {
                fresh += 1;
                name = format!("e{fresh}");
            }
            taken.insert(name.clone());
            fresh += 1;
            let replacement = Term::var(name);
            for a in rhs.iter_mut() {
                for t in a.args.iter_mut() {
                    *t = replace_term(t, &app, &replacement);
                }
            }
        }
        out.push(StTgd::new(clause.lhs_atoms.clone(), rhs));
    }
    Ok(out)
}

/// First function application in `t` that itself contains no function
/// subterm.
fn innermost_app(t: &Term) -> Option<Term> {
    match t {
        Term::Func(_, args) => args
            .iter()
            .find_map(innermost_app)
            .or_else(|| Some(t.clone())),
        _ => None,
    }
}

/// Replace every occurrence of `from` (an exact term) in `t`.
fn replace_term(t: &Term, from: &Term, to: &Term) -> Term {
    if t == from {
        return to.clone();
    }
    match t {
        Term::Func(f, args) => Term::Func(
            f.clone(),
            args.iter().map(|a| replace_term(a, from, to)).collect(),
        ),
        other => other.clone(),
    }
}

/// A compiled migration: the single chaseable mapping plus what it was
/// compiled from.
#[derive(Clone, Debug)]
pub struct Migration {
    /// `v0__`-prefixed old schema → plain new schema, with the new
    /// schema's keys as target egds. Chasing the (prefixed) stored
    /// instance through this mapping *is* the migration.
    pub mapping: Mapping,
    /// The SMO sequence the mapping was compiled from.
    pub smos: Vec<Smo>,
}

impl Migration {
    /// The backward mapping (paper §2's inverse direction): the
    /// maximum recovery of the forward migration, when the fragment
    /// supports it. Shown by `dexcli migrate --dry-run`.
    pub fn backward(&self) -> Option<dex_ops::MaxRecovery> {
        // Strip egds: maximum_recovery is defined for st-tgd mappings.
        let plain = Mapping::new(
            self.mapping.source().clone(),
            self.mapping.target().clone(),
            self.mapping.st_tgds().to_vec(),
        )
        .ok()?;
        dex_ops::maximum_recovery(&plain).ok()
    }
}

/// Compile `smos` (evolving `old` into `new`) to one migration
/// mapping via pairwise composition and de-skolemization.
///
/// `new` must be the schema the sequence actually reaches (the caller
/// obtained `smos` from [`crate::diff()`] or built them alongside the
/// schema); its keys become target egds, so the migration chase
/// enforces the evolved schema's constraints as it copies.
pub fn compile_migration(
    old: &Schema,
    new: &Schema,
    smos: &[Smo],
) -> Result<Migration, EvolutionError> {
    compile_migration_checked(old, new, smos, false)
}

/// [`compile_migration`] with an opt-in chase-agreement self-check.
///
/// With `self_check` set, every pairwise composition in the fold is
/// refereed by [`dex_ops::verify_composition`]: the critical instances
/// of both operands are chased through the two-step pipeline and
/// through the composed mapping, and the results must be
/// homomorphically equivalent. A disagreement aborts compilation with
/// [`EvolutionError::SelfCheck`] (`DEX604`) *before* any migration
/// plan is built — a miscompiled fold never reaches the store. Steps
/// outside the decidable fragment (second-order intermediate, later
/// de-skolemized) are skipped, not failed: refusal to certify is not a
/// counterexample. `dexcli migrate --dry-run` runs with the check on.
pub fn compile_migration_checked(
    old: &Schema,
    new: &Schema,
    smos: &[Smo],
    self_check: bool,
) -> Result<Migration, EvolutionError> {
    // Fold the steps into one v0 → vN mapping.
    let mut acc: Option<Mapping> = None;
    let mut schema_k = old.clone();
    for (k, smo) in smos.iter().enumerate() {
        let step = step_mapping(&schema_k, smo, k)?;
        schema_k = smo.apply_schema(&schema_k)?;
        acc = Some(match acc {
            None => step,
            Some(prev) => {
                let comp = compose(&prev, &step).map_err(|e| EvolutionError::Compose {
                    detail: e.to_string(),
                })?;
                if self_check {
                    if let Some(chk) = dex_ops::verify_composition(&prev, &step, &comp) {
                        if !chk.agreed {
                            return Err(EvolutionError::SelfCheck {
                                detail: format!(
                                    "step {k} (`{smo}`): counterexample found after \
                                     {} critical instance(s)",
                                    chk.checked
                                ),
                            });
                        }
                    }
                }
                let tgds = match comp.st_tgds {
                    Some(tgds) => tgds,
                    None => deskolemize(&comp.sotgd)?,
                };
                Mapping::new(comp.source, comp.target, tgds).map_err(EvolutionError::Relational)?
            }
        });
    }
    let steps = smos.len();
    let (folded_tgds, source) = match acc {
        Some(m) => (m.st_tgds().to_vec(), m.source().clone()),
        None => {
            // Empty sequence: the identity migration v0 → new.
            let source = prefix_schema(old, 0)?;
            let tgds = old
                .relations()
                .map(|r| copy_rule(r.name(), 0, r.name(), 0, r.arity()))
                .collect();
            (tgds, source)
        }
    };

    // Retarget: strip the `v{N}__` prefix off every conclusion so the
    // final mapping lands on the plain new schema (with its keys).
    let vn = version_prefix(steps);
    let retargeted: Vec<StTgd> = folded_tgds
        .into_iter()
        .map(|t| {
            let rhs = t
                .rhs
                .iter()
                .map(|a| {
                    let plain = a
                        .relation
                        .as_str()
                        .strip_prefix(&vn)
                        .unwrap_or(a.relation.as_str());
                    Atom::new(Name::new(plain), a.args.clone())
                })
                .collect();
            StTgd::new(t.lhs.clone(), rhs)
        })
        .collect();

    let egds = key_egds(new);
    let mapping = Mapping::with_target_deps(source, new.clone(), retargeted, vec![], egds)
        .map_err(EvolutionError::Relational)?;
    Ok(Migration {
        mapping,
        smos: smos.to_vec(),
    })
}

/// Key egds of `schema`: one per relation whose FD set contains a key
/// (an FD whose two sides together cover every attribute).
fn key_egds(schema: &Schema) -> Vec<Egd> {
    let mut out = Vec::new();
    for rel in schema.relations() {
        let all: BTreeSet<Name> = rel.attr_names().cloned().collect();
        for fd in rel.fds().iter() {
            if fd.attributes() == all {
                let key_positions: Vec<usize> = fd
                    .lhs()
                    .iter()
                    .filter_map(|a| rel.position(a.as_str()))
                    .collect();
                out.extend(Egd::key(rel.name().as_str(), rel.arity(), &key_positions));
            }
        }
    }
    out
}

/// Render a mapping back into parseable `.dex` text (`source`/
/// `target`/`key` declarations plus rules). The migration machinery
/// persists mapping text verbatim into stores and re-parses it on
/// resume, so this must round-trip through `parse_mapping`.
pub fn render_mapping_dex(m: &Mapping) -> String {
    let mut out = String::new();
    for rel in m.source().relations() {
        out.push_str(&decl_line("source", rel));
    }
    for rel in m.target().relations() {
        out.push_str(&decl_line("target", rel));
        let all: BTreeSet<Name> = rel.attr_names().cloned().collect();
        for fd in rel.fds().iter() {
            if fd.attributes() == all {
                let key = fd
                    .lhs()
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("key {}({});\n", rel.name(), key));
            }
        }
    }
    for t in m.st_tgds() {
        out.push_str(&rule_line(&t.lhs, &t.rhs));
    }
    for t in m.target_tgds() {
        out.push_str(&rule_line(&t.lhs, &t.rhs));
    }
    out
}

/// Render just a schema as `.dex` text (target declarations + keys):
/// the meta text a migrated store carries, parseable back into a
/// rule-less mapping whose target is the schema.
pub fn render_schema_dex(schema: &Schema) -> String {
    let mut out = String::new();
    for rel in schema.relations() {
        out.push_str(&decl_line("target", rel));
        let all: BTreeSet<Name> = rel.attr_names().cloned().collect();
        for fd in rel.fds().iter() {
            if fd.attributes() == all {
                let key = fd
                    .lhs()
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("key {}({});\n", rel.name(), key));
            }
        }
    }
    out
}

fn decl_line(kw: &str, rel: &RelSchema) -> String {
    let attrs = rel
        .attr_names()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!("{kw} {}({});\n", rel.name(), attrs)
}

fn rule_line(lhs: &[Atom], rhs: &[Atom]) -> String {
    let side = |atoms: &[Atom]| {
        atoms
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" & ")
    };
    format!("{} -> {};\n", side(lhs), side(rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::diff::diff;
    use dex_chase::exchange;
    use dex_logic::parse_mapping;
    use dex_relational::{tuple, AttrType, Value};

    fn schema(decls: &[(&str, &[&str])]) -> Schema {
        Schema::with_relations(
            decls
                .iter()
                .map(|(n, attrs)| {
                    RelSchema::untyped(*n, attrs.iter().map(|a| a.to_string()).collect::<Vec<_>>())
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    fn migrate_instance(old: &Schema, new: &Schema, inst: &Instance) -> Instance {
        let smos = diff(&Catalog::from_schema(old), &Catalog::from_schema(new)).unwrap();
        let mig = compile_migration(old, new, &smos).unwrap();
        let src = prefix_instance(inst, 0).unwrap();
        exchange(&mig.mapping, &src).unwrap().target
    }

    #[test]
    fn rename_add_drop_pipeline_preserves_data() {
        // A rename combined with a column add is not shape-inferable
        // (diff would refuse); spelled as explicit SMOs it compiles
        // and chases end to end.
        let old = schema(&[("Emp", &["name", "dept"]), ("Legacy", &["junk"])]);
        let new = schema(&[("Employee", &["name", "dept", "office"])]);
        let smos = vec![
            Smo::RenameTable {
                from: Name::new("Emp"),
                to: Name::new("Employee"),
            },
            Smo::AddColumn {
                table: Name::new("Employee"),
                column: Name::new("office"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            },
            Smo::DropTable(Name::new("Legacy")),
        ];
        let mig = compile_migration(&old, &new, &smos).unwrap();
        let mut inst = Instance::empty(old.clone());
        inst.insert("Emp", tuple!["ann", "eng"]).unwrap();
        inst.insert("Emp", tuple!["bob", "ops"]).unwrap();
        inst.insert("Legacy", tuple!["junk0"]).unwrap();
        let out = exchange(&mig.mapping, &prefix_instance(&inst, 0).unwrap())
            .unwrap()
            .target;
        let rows: Vec<_> = out.facts().collect();
        assert_eq!(rows.len(), 2, "{out}");
        for (rel, t) in rows {
            assert_eq!(rel.as_str(), "Employee");
            assert_eq!(t.arity(), 3);
            assert!(t[2].is_null(), "office column is a fresh null: {t:?}");
        }
    }

    #[test]
    fn chained_add_columns_deskolemize_to_independent_nulls() {
        let old = schema(&[("R", &["a"])]);
        let smos = vec![
            Smo::AddColumn {
                table: Name::new("R"),
                column: Name::new("b"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            },
            Smo::AddColumn {
                table: Name::new("R"),
                column: Name::new("c"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            },
        ];
        let new = schema(&[("R", &["a", "b", "c"])]);
        let mig = compile_migration(&old, &new, &smos).unwrap();
        assert_eq!(mig.mapping.st_tgds().len(), 1);
        let tgd = &mig.mapping.st_tgds()[0];
        assert_eq!(tgd.existential_vars().len(), 2, "{tgd}");
        // And it chases: each row gets two distinct fresh nulls.
        let mut inst = Instance::empty(old.clone());
        inst.insert("R", tuple!["k"]).unwrap();
        let out = exchange(&mig.mapping, &prefix_instance(&inst, 0).unwrap())
            .unwrap()
            .target;
        let (_, row) = out.facts().next().unwrap();
        assert!(row[1].is_null() && row[2].is_null() && row[1] != row[2]);
    }

    #[test]
    fn self_check_passes_on_a_multi_step_fold() {
        // Two folded compositions (rename then add-column), with the
        // chase-agreement referee watching each one.
        let old = schema(&[("R", &["a"])]);
        let smos = vec![
            Smo::RenameTable {
                from: Name::new("R"),
                to: Name::new("S"),
            },
            Smo::AddColumn {
                table: Name::new("S"),
                column: Name::new("b"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            },
        ];
        let new = schema(&[("S", &["a", "b"])]);
        let checked = compile_migration_checked(&old, &new, &smos, true).unwrap();
        let unchecked = compile_migration(&old, &new, &smos).unwrap();
        assert_eq!(
            checked.mapping.st_tgds().len(),
            unchecked.mapping.st_tgds().len(),
            "the self-check observes, it must not rewrite"
        );
    }

    #[test]
    fn const_default_fills_existing_rows() {
        let old = schema(&[("R", &["a"])]);
        let new = schema(&[("R", &["a", "tag"])]);
        let smos = vec![Smo::AddColumn {
            table: Name::new("R"),
            column: Name::new("tag"),
            ty: AttrType::Str,
            default: ColumnDefault::Const("migrated".into()),
        }];
        let mig = compile_migration(&old, &new, &smos).unwrap();
        let mut inst = Instance::empty(old.clone());
        inst.insert("R", tuple!["k"]).unwrap();
        let out = exchange(&mig.mapping, &prefix_instance(&inst, 0).unwrap())
            .unwrap()
            .target;
        let (_, row) = out.facts().next().unwrap();
        assert_eq!(row[1], Value::str("migrated"));
    }

    #[test]
    fn partition_vertical_splits_rows() {
        let old = schema(&[("Emp", &["name", "dept", "office"])]);
        let new = schema(&[
            ("Names", &["name", "dept"]),
            ("Offices", &["dept", "office"]),
        ]);
        let mut inst = Instance::empty(old.clone());
        inst.insert("Emp", tuple!["ann", "eng", "e41"]).unwrap();
        let out = migrate_instance(&old, &new, &inst);
        assert_eq!(out.fact_count(), 2);
        let names: Vec<_> = out.facts().map(|(r, _)| r.as_str()).collect();
        assert!(names.contains(&"Names") && names.contains(&"Offices"));
    }

    #[test]
    fn rendered_mapping_reparses_to_the_same_semantics() {
        let old = schema(&[("Emp", &["name", "dept"])]);
        let new = schema(&[("Employee", &["name", "dept", "office"])]);
        let smos = diff(&Catalog::from_schema(&old), &Catalog::from_schema(&new)).unwrap();
        let mig = compile_migration(&old, &new, &smos).unwrap();
        let text = render_mapping_dex(&mig.mapping);
        let reparsed = parse_mapping(&text).unwrap_or_else(|e| panic!("{text}\n{e}"));
        assert_eq!(reparsed.st_tgds().len(), mig.mapping.st_tgds().len());
        let mut inst = Instance::empty(old.clone());
        inst.insert("Emp", tuple!["ann", "eng"]).unwrap();
        let src = prefix_instance(&inst, 0).unwrap();
        let a = exchange(&mig.mapping, &src).unwrap().target;
        let b = exchange(&reparsed, &src).unwrap().target;
        assert_eq!(a, b);
    }

    #[test]
    fn new_schema_keys_become_target_egds() {
        let old = schema(&[("Emp", &["name", "dept"])]);
        let mut rel = RelSchema::untyped("Emp", vec!["name", "dept"]).unwrap();
        rel.fds_mut()
            .insert(dex_relational::Fd::new(vec!["name"], vec!["dept"]));
        let new = Schema::with_relations(vec![rel]).unwrap();
        let mig = compile_migration(&old, &new, &[]).unwrap();
        assert!(!mig.mapping.target_egds().is_empty());
    }

    #[test]
    fn split_horizontal_is_a_typed_refusal() {
        let old = schema(&[("R", &["a", "b"])]);
        let smo = Smo::SplitHorizontal {
            table: Name::new("R"),
            pred: dex_relational::Expr::attr("a").ge(dex_relational::Expr::lit(0i64)),
            true_table: Name::new("T"),
            false_table: Name::new("F"),
        };
        let err = compile_migration(&old, &schema(&[("T", &["a", "b"])]), &[smo]).unwrap_err();
        assert!(matches!(err, EvolutionError::NotCompilable { .. }), "{err}");
    }

    #[test]
    fn backward_recovery_exists_for_copy_style_migrations() {
        let old = schema(&[("Emp", &["name", "dept"])]);
        let new = schema(&[("Employee", &["name", "dept"])]);
        let smos = diff(&Catalog::from_schema(&old), &Catalog::from_schema(&new)).unwrap();
        let mig = compile_migration(&old, &new, &smos).unwrap();
        assert!(mig.backward().is_some());
    }
}
