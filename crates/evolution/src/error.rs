//! Evolution failure modes.

use dex_relational::{Name, RelationalError};
use std::fmt;

/// Errors applying schema-modification operators.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvolutionError {
    /// The operator references a table that does not exist.
    UnknownTable(Name),
    /// The operator references a column that does not exist.
    UnknownColumn {
        /// The table.
        table: Name,
        /// The missing column.
        column: Name,
    },
    /// The operator would create a name collision.
    NameCollision(Name),
    /// Channel propagation cannot rewrite the mapping for this SMO.
    CannotPropagate {
        /// The operator display.
        smo: String,
        /// Why.
        reason: String,
    },
    /// A row violates the predicate discipline of a split table.
    SplitViolation {
        /// The table.
        table: Name,
        /// The row.
        row: String,
    },
    /// `diff` found several equally plausible reconstructions and
    /// refuses to guess (the caller should disambiguate by renaming in
    /// steps or editing through a shared-lineage [`crate::Catalog`]).
    AmbiguousDiff {
        /// What could not be decided.
        detail: String,
    },
    /// `diff` recognises the edit but cannot express it as an SMO
    /// sequence (e.g. a column reorder or a rename cycle).
    UnsupportedDiff {
        /// The unsupported edit.
        detail: String,
    },
    /// The operator has no st-tgd migration semantics (e.g. a
    /// horizontal split's predicate is not in the tgd language).
    NotCompilable {
        /// The operator display.
        smo: String,
        /// Why.
        reason: String,
    },
    /// Composing the step mappings left the first-order st-tgd
    /// fragment, so the sequence cannot run as one chase.
    NotFirstOrder {
        /// The offending clause or function term.
        detail: String,
    },
    /// The opt-in chase-agreement self-check caught a composed step
    /// disagreeing with its two-step chase (`DEX604`): the compiled
    /// migration would not faithfully replay the SMO sequence.
    SelfCheck {
        /// The failing step and counterexample description.
        detail: String,
    },
    /// A `dex-ops` operator refused during migration compilation.
    Compose {
        /// The operator's error display.
        detail: String,
    },
    /// An underlying relational error.
    Relational(RelationalError),
}

impl fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvolutionError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            EvolutionError::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            EvolutionError::NameCollision(n) => {
                write!(f, "name `{n}` already exists")
            }
            EvolutionError::CannotPropagate { smo, reason } => {
                write!(f, "cannot propagate `{smo}` through the mapping: {reason}")
            }
            EvolutionError::SplitViolation { table, row } => {
                write!(
                    f,
                    "row {row} violates the predicate of split table `{table}`"
                )
            }
            EvolutionError::AmbiguousDiff { detail } => {
                write!(f, "ambiguous schema diff: {detail}")
            }
            EvolutionError::UnsupportedDiff { detail } => {
                write!(f, "unsupported schema edit: {detail}")
            }
            EvolutionError::NotCompilable { smo, reason } => {
                write!(f, "cannot compile `{smo}` to a migration mapping: {reason}")
            }
            EvolutionError::NotFirstOrder { detail } => {
                write!(
                    f,
                    "the composed migration is not first-order expressible: {detail}"
                )
            }
            EvolutionError::Compose { detail } => {
                write!(f, "migration composition failed: {detail}")
            }
            EvolutionError::SelfCheck { detail } => {
                write!(
                    f,
                    "migration self-check failed (DEX604): the composed mapping \
                     is not equivalent to the step-by-step chase: {detail}"
                )
            }
            EvolutionError::Relational(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvolutionError {}

impl From<RelationalError> for EvolutionError {
    fn from(e: RelationalError) -> Self {
        EvolutionError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EvolutionError::UnknownColumn {
            table: Name::new("T"),
            column: Name::new("c"),
        };
        assert!(e.to_string().contains("no column"));
    }
}
