//! Schema-modification operators (SMOs).
//!
//! The channel-style primitives of the paper's \[24\] (“Updatable and
//! Evolvable Transforms for Virtual Databases”): each operator evolves
//! a schema and carries *bidirectional* instance semantics —
//! [`Smo::forward`] migrates data onto the evolved schema,
//! [`Smo::backward`] migrates it back, and both consult the previous
//! opposite-side state so that data private to one side survives round
//! trips (the lens discipline).

use crate::error::EvolutionError;
use dex_relational::algebra;
use dex_relational::{
    AttrType, Constant, Expr, Instance, Name, NullGen, RelSchema, Schema, Tuple, Value,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Default for a newly added column.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ColumnDefault {
    /// A fresh labeled null per row.
    Null,
    /// A constant.
    Const(Constant),
}

impl fmt::Display for ColumnDefault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnDefault::Null => write!(f, "null"),
            ColumnDefault::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A schema-modification operator.
///
/// ```
/// use dex_evolution::{ColumnDefault, Smo};
/// use dex_relational::{tuple, Instance, Name, RelSchema, Schema};
///
/// let schema = Schema::with_relations(vec![
///     RelSchema::untyped("Person", vec!["id", "name"]).unwrap(),
/// ]).unwrap();
/// let smo = Smo::RenameTable {
///     from: Name::new("Person"),
///     to: Name::new("People"),
/// };
/// let db = Instance::with_facts(schema.clone(), vec![
///     ("Person", vec![tuple![1i64, "Alice"]]),
/// ]).unwrap();
/// let evolved = smo.forward(&db, None).unwrap();
/// assert!(evolved.contains("People", &tuple![1i64, "Alice"]));
/// let back = smo.backward(&evolved, &schema, None).unwrap();
/// assert_eq!(back, db);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Smo {
    /// Add a new, empty table.
    CreateTable(RelSchema),
    /// Remove a table (its data is recoverable only from memory).
    DropTable(Name),
    /// Rename a table.
    RenameTable {
        /// Old name.
        from: Name,
        /// New name.
        to: Name,
    },
    /// Add a column with a default.
    AddColumn {
        /// The table.
        table: Name,
        /// The new column's name.
        column: Name,
        /// The new column's type.
        ty: AttrType,
        /// Fill for pre-existing rows.
        default: ColumnDefault,
    },
    /// Drop a column.
    DropColumn {
        /// The table.
        table: Name,
        /// The column to drop.
        column: Name,
        /// Fill when rows travel back to the old schema.
        restore_default: ColumnDefault,
    },
    /// Rename a column.
    RenameColumn {
        /// The table.
        table: Name,
        /// Old column name.
        from: Name,
        /// New column name.
        to: Name,
    },
    /// Split a table horizontally by a predicate.
    SplitHorizontal {
        /// The table to split.
        table: Name,
        /// The discriminating predicate.
        pred: Expr,
        /// Receives the rows satisfying the predicate.
        true_table: Name,
        /// Receives the rest.
        false_table: Name,
    },
    /// Merge two same-header tables into one (inverse of split, but
    /// provenance is lost — backward routes unseen rows to `left`).
    MergeHorizontal {
        /// Left input.
        left: Name,
        /// Right input.
        right: Name,
        /// The merged table.
        out: Name,
    },
    /// Split a table vertically into two overlapping projections
    /// (shared columns act as the join key).
    PartitionVertical {
        /// The table to partition.
        table: Name,
        /// `(new name, columns)` of the first part.
        left: (Name, Vec<Name>),
        /// `(new name, columns)` of the second part.
        right: (Name, Vec<Name>),
    },
    /// Natural-join two tables into one (inverse of partition).
    JoinVertical {
        /// Left input.
        left: Name,
        /// Right input.
        right: Name,
        /// The joined table.
        out: Name,
    },
}

impl fmt::Display for Smo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Smo::CreateTable(s) => write!(f, "CREATE TABLE {s}"),
            Smo::DropTable(n) => write!(f, "DROP TABLE {n}"),
            Smo::RenameTable { from, to } => write!(f, "RENAME TABLE {from} TO {to}"),
            Smo::AddColumn {
                table,
                column,
                default,
                ..
            } => write!(f, "ADD COLUMN {table}.{column} DEFAULT {default}"),
            Smo::DropColumn { table, column, .. } => {
                write!(f, "DROP COLUMN {table}.{column}")
            }
            Smo::RenameColumn { table, from, to } => {
                write!(f, "RENAME COLUMN {table}.{from} TO {to}")
            }
            Smo::SplitHorizontal {
                table,
                pred,
                true_table,
                false_table,
            } => write!(
                f,
                "SPLIT {table} ON {pred} INTO {true_table} / {false_table}"
            ),
            Smo::MergeHorizontal { left, right, out } => {
                write!(f, "MERGE {left}, {right} INTO {out}")
            }
            Smo::PartitionVertical { table, left, right } => write!(
                f,
                "PARTITION {table} INTO {}({}) / {}({})",
                left.0,
                join_names(&left.1),
                right.0,
                join_names(&right.1)
            ),
            Smo::JoinVertical { left, right, out } => {
                write!(f, "JOIN {left}, {right} INTO {out}")
            }
        }
    }
}

fn join_names(ns: &[Name]) -> String {
    ns.iter().map(Name::as_str).collect::<Vec<_>>().join(", ")
}

impl Smo {
    /// Evolve a schema.
    pub fn apply_schema(&self, schema: &Schema) -> Result<Schema, EvolutionError> {
        let mut out = schema.clone();
        match self {
            Smo::CreateTable(s) => {
                if out.relation(s.name().as_str()).is_some() {
                    return Err(EvolutionError::NameCollision(s.name().clone()));
                }
                out.add_relation(s.clone())?;
            }
            Smo::DropTable(n) => {
                out.remove_relation(n.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(n.clone()))?;
            }
            Smo::RenameTable { from, to } => {
                let rel = out
                    .remove_relation(from.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(from.clone()))?;
                if out.relation(to.as_str()).is_some() {
                    return Err(EvolutionError::NameCollision(to.clone()));
                }
                out.add_relation(rel.renamed(to.clone()))?;
            }
            Smo::AddColumn {
                table, column, ty, ..
            } => {
                let rel = out
                    .remove_relation(table.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
                let mut attrs = rel.attrs().to_vec();
                if attrs.iter().any(|(a, _)| a == column) {
                    return Err(EvolutionError::NameCollision(column.clone()));
                }
                attrs.push((column.clone(), *ty));
                let mut new_rel = RelSchema::new(rel.name().clone(), attrs)?;
                *new_rel.fds_mut() = rel.fds().clone();
                out.add_relation(new_rel)?;
            }
            Smo::DropColumn { table, column, .. } => {
                let rel = out
                    .remove_relation(table.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
                if rel.position(column.as_str()).is_none() {
                    return Err(EvolutionError::UnknownColumn {
                        table: table.clone(),
                        column: column.clone(),
                    });
                }
                let attrs: Vec<(Name, AttrType)> = rel
                    .attrs()
                    .iter()
                    .filter(|(a, _)| a != column)
                    .cloned()
                    .collect();
                let kept: std::collections::BTreeSet<Name> =
                    attrs.iter().map(|(a, _)| a.clone()).collect();
                let mut new_rel = RelSchema::new(rel.name().clone(), attrs)?;
                *new_rel.fds_mut() = rel.fds().restrict_to(&kept);
                out.add_relation(new_rel)?;
            }
            Smo::RenameColumn { table, from, to } => {
                let rel = out
                    .remove_relation(table.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
                if rel.position(from.as_str()).is_none() {
                    return Err(EvolutionError::UnknownColumn {
                        table: table.clone(),
                        column: from.clone(),
                    });
                }
                if rel.position(to.as_str()).is_some() {
                    return Err(EvolutionError::NameCollision(to.clone()));
                }
                let mut renaming = BTreeMap::new();
                renaming.insert(from.clone(), to.clone());
                let attrs: Vec<(Name, AttrType)> = rel
                    .attrs()
                    .iter()
                    .map(|(a, t)| (renaming.get(a).cloned().unwrap_or_else(|| a.clone()), *t))
                    .collect();
                let mut new_rel = RelSchema::new(rel.name().clone(), attrs)?;
                *new_rel.fds_mut() = rel.fds().rename(&renaming);
                out.add_relation(new_rel)?;
            }
            Smo::SplitHorizontal {
                table,
                pred,
                true_table,
                false_table,
            } => {
                let rel = out
                    .remove_relation(table.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
                for a in pred.referenced_attrs() {
                    if rel.position(a.as_str()).is_none() {
                        return Err(EvolutionError::UnknownColumn {
                            table: table.clone(),
                            column: a,
                        });
                    }
                }
                for n in [true_table, false_table] {
                    if out.relation(n.as_str()).is_some() {
                        return Err(EvolutionError::NameCollision(n.clone()));
                    }
                }
                out.add_relation(rel.clone().renamed(true_table.clone()))?;
                out.add_relation(rel.renamed(false_table.clone()))?;
            }
            Smo::MergeHorizontal {
                left,
                right,
                out: o,
            } => {
                let l = out
                    .remove_relation(left.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(left.clone()))?;
                let r = out
                    .remove_relation(right.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(right.clone()))?;
                let la: Vec<&Name> = l.attr_names().collect();
                let ra: Vec<&Name> = r.attr_names().collect();
                if la != ra {
                    return Err(EvolutionError::Relational(
                        dex_relational::RelationalError::SchemaMismatch {
                            context: format!("merge headers differ: {l} vs {r}"),
                        },
                    ));
                }
                if out.relation(o.as_str()).is_some() {
                    return Err(EvolutionError::NameCollision(o.clone()));
                }
                out.add_relation(l.renamed(o.clone()))?;
            }
            Smo::PartitionVertical { table, left, right } => {
                let rel = out
                    .remove_relation(table.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(table.clone()))?;
                for (name, cols) in [left, right] {
                    if out.relation(name.as_str()).is_some() {
                        return Err(EvolutionError::NameCollision(name.clone()));
                    }
                    let attrs: Vec<(Name, AttrType)> = cols
                        .iter()
                        .map(|c| {
                            rel.position(c.as_str())
                                .map(|i| rel.attrs()[i].clone())
                                .ok_or_else(|| EvolutionError::UnknownColumn {
                                    table: table.clone(),
                                    column: c.clone(),
                                })
                        })
                        .collect::<Result<_, _>>()?;
                    let kept: std::collections::BTreeSet<Name> =
                        attrs.iter().map(|(a, _)| a.clone()).collect();
                    let mut part = RelSchema::new(name.clone(), attrs)?;
                    *part.fds_mut() = rel.fds().restrict_to(&kept);
                    out.add_relation(part)?;
                }
            }
            Smo::JoinVertical {
                left,
                right,
                out: o,
            } => {
                let l = out
                    .remove_relation(left.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(left.clone()))?;
                let r = out
                    .remove_relation(right.as_str())
                    .ok_or_else(|| EvolutionError::UnknownTable(right.clone()))?;
                if out.relation(o.as_str()).is_some() {
                    return Err(EvolutionError::NameCollision(o.clone()));
                }
                let mut attrs = l.attrs().to_vec();
                for (a, t) in r.attrs() {
                    if l.position(a.as_str()).is_none() {
                        attrs.push((a.clone(), *t));
                    }
                }
                let mut joined = RelSchema::new(o.clone(), attrs)?;
                let mut fds = l.fds().clone();
                for fd in r.fds().iter() {
                    fds.insert(fd.clone());
                }
                *joined.fds_mut() = fds;
                out.add_relation(joined)?;
            }
        }
        Ok(out)
    }

    /// Migrate an instance onto the evolved schema. `prev_tgt` (the
    /// last state on the evolved side, if any) lets one-sided data
    /// survive: a created table keeps its contents, an added column
    /// keeps manually entered values.
    pub fn forward(
        &self,
        src: &Instance,
        prev_tgt: Option<&Instance>,
    ) -> Result<Instance, EvolutionError> {
        let new_schema = self.apply_schema(src.schema())?;
        let mut out = Instance::empty(new_schema.clone());
        let mut gen = fresh_gen(src, prev_tgt);
        match self {
            Smo::CreateTable(s) => {
                copy_all(src, &mut out)?;
                if let Some(prev) = prev_tgt {
                    if let Some(rel) = prev.relation(s.name().as_str()) {
                        for t in rel.iter() {
                            out.insert(s.name().as_str(), t.clone())?;
                        }
                    }
                }
            }
            Smo::DropTable(n) => {
                copy_except(src, &mut out, &[n])?;
            }
            Smo::RenameTable { from, to } => {
                copy_except(src, &mut out, &[from])?;
                let rel = src.expect_relation(from.as_str())?;
                for t in rel.iter() {
                    out.insert(to.as_str(), t.clone())?;
                }
            }
            Smo::AddColumn {
                table,
                column,
                default,
                ..
            } => {
                copy_except(src, &mut out, &[table])?;
                let rel = src.expect_relation(table.as_str())?;
                // Restore manually entered values from the previous
                // evolved state, matching rows on the old columns.
                let mut index: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
                if let Some(prev) = prev_tgt {
                    if let Some(prel) = prev.relation(table.as_str()) {
                        let col_pos = prel.schema().position(column.as_str());
                        if let Some(cp) = col_pos {
                            let old_positions: Vec<usize> =
                                (0..prel.schema().arity()).filter(|i| *i != cp).collect();
                            for t in prel.iter() {
                                index
                                    .entry(t.project(&old_positions))
                                    .or_default()
                                    .push(t.clone());
                            }
                        }
                    }
                }
                for t in rel.iter() {
                    match index.get(&t) {
                        Some(matches) => {
                            for m in matches {
                                out.insert(table.as_str(), m.clone())?;
                            }
                        }
                        None => {
                            let fill = match default {
                                ColumnDefault::Null => gen.fresh(),
                                ColumnDefault::Const(c) => Value::Const(c.clone()),
                            };
                            let mut vals = t.values().to_vec();
                            vals.push(fill);
                            out.insert(table.as_str(), Tuple::new(vals))?;
                        }
                    }
                }
            }
            Smo::DropColumn { table, column, .. } => {
                copy_except(src, &mut out, &[table])?;
                let rel = src.expect_relation(table.as_str())?;
                let keep: Vec<usize> = (0..rel.schema().arity())
                    .filter(|i| rel.schema().attrs()[*i].0 != *column)
                    .collect();
                for t in rel.iter() {
                    out.insert(table.as_str(), t.project(&keep))?;
                }
            }
            Smo::RenameColumn { table, .. } => {
                copy_except(src, &mut out, &[table])?;
                let rel = src.expect_relation(table.as_str())?;
                for t in rel.iter() {
                    out.insert(table.as_str(), t.clone())?;
                }
            }
            Smo::SplitHorizontal {
                table,
                pred,
                true_table,
                false_table,
            } => {
                copy_except(src, &mut out, &[table])?;
                let rel = src.expect_relation(table.as_str())?;
                for t in rel.iter() {
                    let dest = if pred.eval_bool(rel.schema(), &t)? {
                        true_table
                    } else {
                        false_table
                    };
                    out.insert(dest.as_str(), t.clone())?;
                }
            }
            Smo::MergeHorizontal {
                left,
                right,
                out: o,
            } => {
                copy_except(src, &mut out, &[left, right])?;
                for n in [left, right] {
                    let rel = src.expect_relation(n.as_str())?;
                    for t in rel.iter() {
                        out.insert(o.as_str(), t.clone())?;
                    }
                }
            }
            Smo::PartitionVertical { table, left, right } => {
                copy_except(src, &mut out, &[table])?;
                let rel = src.expect_relation(table.as_str())?;
                for (name, cols) in [left, right] {
                    // Validation pinned every partition column to the
                    // table's schema, so position() cannot miss;
                    // filter_map keeps that invariant panic-free.
                    let positions: Vec<usize> = cols
                        .iter()
                        .filter_map(|c| rel.schema().position(c.as_str()))
                        .collect();
                    for t in rel.iter() {
                        out.insert(name.as_str(), t.project(&positions))?;
                    }
                }
            }
            Smo::JoinVertical {
                left,
                right,
                out: o,
            } => {
                copy_except(src, &mut out, &[left, right])?;
                let l = src.expect_relation(left.as_str())?;
                let r = src.expect_relation(right.as_str())?;
                let joined = algebra::natural_join(l, r, o.as_str())?;
                for t in joined.iter() {
                    out.insert(o.as_str(), t.clone())?;
                }
            }
        }
        Ok(out)
    }

    /// Migrate an evolved-schema instance back to the old schema.
    /// `old_schema` is the pre-evolution schema; `prev_src` (the last
    /// old-side state) lets dropped data be restored.
    pub fn backward(
        &self,
        tgt: &Instance,
        old_schema: &Schema,
        prev_src: Option<&Instance>,
    ) -> Result<Instance, EvolutionError> {
        let mut out = Instance::empty(old_schema.clone());
        let mut gen = fresh_gen(tgt, prev_src);
        match self {
            Smo::CreateTable(s) => {
                copy_except(tgt, &mut out, &[s.name()])?;
            }
            Smo::DropTable(n) => {
                copy_all(tgt, &mut out)?;
                if let Some(prev) = prev_src {
                    if let Some(rel) = prev.relation(n.as_str()) {
                        for t in rel.iter() {
                            out.insert(n.as_str(), t.clone())?;
                        }
                    }
                }
            }
            Smo::RenameTable { from, to } => {
                copy_except(tgt, &mut out, &[to])?;
                let rel = tgt.expect_relation(to.as_str())?;
                for t in rel.iter() {
                    out.insert(from.as_str(), t.clone())?;
                }
            }
            Smo::AddColumn { table, .. } => {
                copy_except(tgt, &mut out, &[table])?;
                let rel = tgt.expect_relation(table.as_str())?;
                // The added column is last (apply_schema pushes it).
                let keep: Vec<usize> = (0..rel.schema().arity() - 1).collect();
                for t in rel.iter() {
                    out.insert(table.as_str(), t.project(&keep))?;
                }
            }
            Smo::DropColumn {
                table,
                column,
                restore_default,
            } => {
                copy_except(tgt, &mut out, &[table])?;
                let rel = tgt.expect_relation(table.as_str())?;
                let old_rel = old_schema.expect_relation(table.as_str())?;
                let col_pos = old_rel.position(column.as_str()).ok_or_else(|| {
                    EvolutionError::UnknownColumn {
                        table: table.clone(),
                        column: column.clone(),
                    }
                })?;
                // Restore dropped values from the previous old state.
                let old_keep: Vec<usize> = (0..old_rel.arity()).filter(|i| *i != col_pos).collect();
                let mut index: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
                if let Some(prev) = prev_src {
                    if let Some(prel) = prev.relation(table.as_str()) {
                        for t in prel.iter() {
                            index
                                .entry(t.project(&old_keep))
                                .or_default()
                                .push(t.clone());
                        }
                    }
                }
                for t in rel.iter() {
                    match index.get(&t) {
                        Some(matches) => {
                            for m in matches {
                                out.insert(table.as_str(), m.clone())?;
                            }
                        }
                        None => {
                            let fill = match restore_default {
                                ColumnDefault::Null => gen.fresh(),
                                ColumnDefault::Const(c) => Value::Const(c.clone()),
                            };
                            let mut vals = t.values().to_vec();
                            vals.insert(col_pos, fill);
                            out.insert(table.as_str(), Tuple::new(vals))?;
                        }
                    }
                }
            }
            Smo::RenameColumn { table, .. } => {
                copy_except(tgt, &mut out, &[table])?;
                let rel = tgt.expect_relation(table.as_str())?;
                for t in rel.iter() {
                    out.insert(table.as_str(), t.clone())?;
                }
            }
            Smo::SplitHorizontal {
                table,
                pred,
                true_table,
                false_table,
            } => {
                copy_except(tgt, &mut out, &[true_table, false_table])?;
                let tt = tgt.expect_relation(true_table.as_str())?;
                let ft = tgt.expect_relation(false_table.as_str())?;
                for (rel, must_hold) in [(tt, true), (ft, false)] {
                    for t in rel.iter() {
                        if pred.eval_bool(rel.schema(), &t)? != must_hold {
                            return Err(EvolutionError::SplitViolation {
                                table: rel.name().clone(),
                                row: t.to_string(),
                            });
                        }
                        out.insert(table.as_str(), t.clone())?;
                    }
                }
            }
            Smo::MergeHorizontal {
                left,
                right,
                out: o,
            } => {
                copy_except(tgt, &mut out, &[o])?;
                let merged = tgt.expect_relation(o.as_str())?;
                let in_prev = |side: &Name, t: &Tuple| {
                    prev_src
                        .and_then(|p| p.relation(side.as_str()))
                        .is_some_and(|r| r.contains(t))
                };
                for t in merged.iter() {
                    let was_left = in_prev(left, &t);
                    let was_right = in_prev(right, &t);
                    if was_left || !was_right {
                        // provenance says left, or brand new → left
                        out.insert(left.as_str(), t.clone())?;
                    }
                    if was_right {
                        out.insert(right.as_str(), t.clone())?;
                    }
                }
            }
            Smo::PartitionVertical { table, left, right } => {
                copy_except(tgt, &mut out, &[&left.0, &right.0])?;
                let l = tgt.expect_relation(left.0.as_str())?;
                let r = tgt.expect_relation(right.0.as_str())?;
                let joined = algebra::natural_join(l, r, table.as_str())?;
                // Reorder columns to the old schema's order.
                let old_rel = old_schema.expect_relation(table.as_str())?;
                // A vertical partition keeps every old column on one
                // side or the other, so rejoining covers the old
                // header and position() cannot miss; filter_map keeps
                // that invariant panic-free.
                let positions: Vec<usize> = old_rel
                    .attr_names()
                    .filter_map(|a| joined.schema().position(a.as_str()))
                    .collect();
                for t in joined.iter() {
                    out.insert(table.as_str(), t.project(&positions))?;
                }
            }
            Smo::JoinVertical {
                left,
                right,
                out: o,
            } => {
                copy_except(tgt, &mut out, &[o])?;
                let joined = tgt.expect_relation(o.as_str())?;
                for side in [left, right] {
                    let old_rel = old_schema.expect_relation(side.as_str())?;
                    let positions: Vec<usize> = old_rel
                        .attr_names()
                        .map(|a| {
                            joined.schema().position(a.as_str()).ok_or_else(|| {
                                EvolutionError::UnknownColumn {
                                    table: o.clone(),
                                    column: a.clone(),
                                }
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    for t in joined.iter() {
                        out.insert(side.as_str(), t.project(&positions))?;
                    }
                }
            }
        }
        Ok(out)
    }
}

fn fresh_gen(a: &Instance, b: Option<&Instance>) -> NullGen {
    let mut max = 0u64;
    let mut track = |i: &Instance| {
        if let Some(n) = i.nulls().iter().next_back() {
            max = max.max(n.0 + 1);
        }
    };
    track(a);
    if let Some(b) = b {
        track(b);
    }
    NullGen::starting_at(max)
}

fn copy_all(src: &Instance, out: &mut Instance) -> Result<(), EvolutionError> {
    for (n, t) in src.facts() {
        out.insert(n.as_str(), t.clone())?;
    }
    Ok(())
}

fn copy_except(src: &Instance, out: &mut Instance, skip: &[&Name]) -> Result<(), EvolutionError> {
    for (n, t) in src.facts() {
        if skip.contains(&n) {
            continue;
        }
        out.insert(n.as_str(), t.clone())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::tuple;

    fn person_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped(
            "Person",
            vec!["id", "name", "age"],
        )
        .unwrap()])
        .unwrap()
    }

    fn person_db() -> Instance {
        Instance::with_facts(
            person_schema(),
            vec![(
                "Person",
                vec![tuple![1i64, "Alice", 30i64], tuple![2i64, "Bob", 40i64]],
            )],
        )
        .unwrap()
    }

    #[test]
    fn create_and_drop_table() {
        let smo = Smo::CreateTable(RelSchema::untyped("Log", vec!["msg"]).unwrap());
        let s2 = smo.apply_schema(&person_schema()).unwrap();
        assert!(s2.relation("Log").is_some());
        let fwd = smo.forward(&person_db(), None).unwrap();
        assert!(fwd.relation("Log").unwrap().is_empty());
        assert_eq!(fwd.relation("Person").unwrap().len(), 2);
        // Data entered in the new table survives a later forward.
        let mut evolved = fwd.clone();
        evolved.insert("Log", tuple!["hello"]).unwrap();
        let fwd2 = smo.forward(&person_db(), Some(&evolved)).unwrap();
        assert!(fwd2.contains("Log", &tuple!["hello"]));
        // Backward just drops the new table.
        let back = smo.backward(&evolved, &person_schema(), None).unwrap();
        assert_eq!(back.schema(), &person_schema());
        assert_eq!(back.fact_count(), 2);

        // Drop: forward loses, backward restores from memory.
        let drop = Smo::DropTable(Name::new("Person"));
        let dropped = drop.forward(&person_db(), None).unwrap();
        assert!(dropped.relation("Person").is_none());
        let restored = drop
            .backward(&dropped, &person_schema(), Some(&person_db()))
            .unwrap();
        assert_eq!(restored, person_db());
    }

    #[test]
    fn rename_table_round_trip() {
        let smo = Smo::RenameTable {
            from: Name::new("Person"),
            to: Name::new("People"),
        };
        let fwd = smo.forward(&person_db(), None).unwrap();
        assert!(fwd.contains("People", &tuple![1i64, "Alice", 30i64]));
        let back = smo.backward(&fwd, &person_schema(), None).unwrap();
        assert_eq!(back, person_db());
    }

    #[test]
    fn add_column_with_defaults_and_memory() {
        let smo = Smo::AddColumn {
            table: Name::new("Person"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: ColumnDefault::Const("unknown".into()),
        };
        let fwd = smo.forward(&person_db(), None).unwrap();
        assert!(fwd.contains("Person", &tuple![1i64, "Alice", 30i64, "unknown"]));
        // A user fills in the city; a later forward keeps it.
        let mut edited = fwd.clone();
        edited
            .remove("Person", &tuple![1i64, "Alice", 30i64, "unknown"])
            .unwrap();
        edited
            .insert("Person", tuple![1i64, "Alice", 30i64, "Sydney"])
            .unwrap();
        let fwd2 = smo.forward(&person_db(), Some(&edited)).unwrap();
        assert!(fwd2.contains("Person", &tuple![1i64, "Alice", 30i64, "Sydney"]));
        // Backward projects the column away.
        let back = smo.backward(&edited, &person_schema(), None).unwrap();
        assert_eq!(back, person_db());
    }

    #[test]
    fn add_column_null_default_mints_fresh_nulls() {
        let smo = Smo::AddColumn {
            table: Name::new("Person"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: ColumnDefault::Null,
        };
        let fwd = smo.forward(&person_db(), None).unwrap();
        let nulls = fwd.nulls();
        assert_eq!(nulls.len(), 2, "one fresh null per row");
    }

    #[test]
    fn drop_column_restores_from_memory() {
        let smo = Smo::DropColumn {
            table: Name::new("Person"),
            column: Name::new("age"),
            restore_default: ColumnDefault::Null,
        };
        let s2 = smo.apply_schema(&person_schema()).unwrap();
        assert_eq!(s2.relation("Person").unwrap().arity(), 2);
        let fwd = smo.forward(&person_db(), None).unwrap();
        assert!(fwd.contains("Person", &tuple![1i64, "Alice"]));
        // Backward with memory: ages restored exactly.
        let back = smo
            .backward(&fwd, &person_schema(), Some(&person_db()))
            .unwrap();
        assert_eq!(back, person_db());
        // Backward without memory: nulls.
        let cold = smo.backward(&fwd, &person_schema(), None).unwrap();
        assert_eq!(cold.fact_count(), 2);
        assert!(!cold.is_ground());
        // New rows on the evolved side get the restore default.
        let mut evolved = fwd.clone();
        evolved.insert("Person", tuple![3i64, "Carol"]).unwrap();
        let back2 = smo
            .backward(&evolved, &person_schema(), Some(&person_db()))
            .unwrap();
        let carol = back2
            .relation("Person")
            .unwrap()
            .iter()
            .find(|t| t[0] == Value::int(3))
            .unwrap()
            .clone();
        assert!(carol[2].is_null());
    }

    #[test]
    fn rename_column_round_trip() {
        let smo = Smo::RenameColumn {
            table: Name::new("Person"),
            from: Name::new("age"),
            to: Name::new("years"),
        };
        let s2 = smo.apply_schema(&person_schema()).unwrap();
        assert!(s2.relation("Person").unwrap().position("years").is_some());
        let fwd = smo.forward(&person_db(), None).unwrap();
        let back = smo.backward(&fwd, &person_schema(), None).unwrap();
        assert_eq!(back, person_db());
    }

    #[test]
    fn split_and_unsplit() {
        let smo = Smo::SplitHorizontal {
            table: Name::new("Person"),
            pred: Expr::attr("age").ge(Expr::lit(35i64)),
            true_table: Name::new("Senior"),
            false_table: Name::new("Junior"),
        };
        let fwd = smo.forward(&person_db(), None).unwrap();
        assert!(fwd.contains("Senior", &tuple![2i64, "Bob", 40i64]));
        assert!(fwd.contains("Junior", &tuple![1i64, "Alice", 30i64]));
        let back = smo.backward(&fwd, &person_schema(), None).unwrap();
        assert_eq!(back, person_db());
        // A row in the wrong half is a split violation.
        let mut bad = fwd.clone();
        bad.insert("Senior", tuple![3i64, "Kid", 10i64]).unwrap();
        assert!(matches!(
            smo.backward(&bad, &person_schema(), None),
            Err(EvolutionError::SplitViolation { .. })
        ));
    }

    #[test]
    fn merge_uses_provenance() {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("Cats", vec!["name"]).unwrap(),
            RelSchema::untyped("Dogs", vec!["name"]).unwrap(),
        ])
        .unwrap();
        let db = Instance::with_facts(
            schema.clone(),
            vec![
                ("Cats", vec![tuple!["felix"]]),
                ("Dogs", vec![tuple!["rex"]]),
            ],
        )
        .unwrap();
        let smo = Smo::MergeHorizontal {
            left: Name::new("Cats"),
            right: Name::new("Dogs"),
            out: Name::new("Pets"),
        };
        let fwd = smo.forward(&db, None).unwrap();
        assert_eq!(fwd.relation("Pets").unwrap().len(), 2);
        // Add a new pet; backward routes it to the left (Cats) by the
        // fixed policy, while provenance routes the others.
        let mut edited = fwd.clone();
        edited.insert("Pets", tuple!["hamster"]).unwrap();
        let back = smo.backward(&edited, &schema, Some(&db)).unwrap();
        assert!(back.contains("Cats", &tuple!["felix"]));
        assert!(back.contains("Dogs", &tuple!["rex"]));
        assert!(back.contains("Cats", &tuple!["hamster"]));
        assert!(!back.contains("Dogs", &tuple!["hamster"]));
    }

    #[test]
    fn vertical_partition_and_rejoin() {
        let smo = Smo::PartitionVertical {
            table: Name::new("Person"),
            left: (
                Name::new("PersonName"),
                vec![Name::new("id"), Name::new("name")],
            ),
            right: (
                Name::new("PersonAge"),
                vec![Name::new("id"), Name::new("age")],
            ),
        };
        let fwd = smo.forward(&person_db(), None).unwrap();
        assert!(fwd.contains("PersonName", &tuple![1i64, "Alice"]));
        assert!(fwd.contains("PersonAge", &tuple![1i64, 30i64]));
        let back = smo.backward(&fwd, &person_schema(), None).unwrap();
        assert_eq!(back, person_db());
    }

    #[test]
    fn join_vertical_and_back() {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("PN", vec!["id", "name"]).unwrap(),
            RelSchema::untyped("PA", vec!["id", "age"]).unwrap(),
        ])
        .unwrap();
        let db = Instance::with_facts(
            schema.clone(),
            vec![
                ("PN", vec![tuple![1i64, "Alice"]]),
                ("PA", vec![tuple![1i64, 30i64]]),
            ],
        )
        .unwrap();
        let smo = Smo::JoinVertical {
            left: Name::new("PN"),
            right: Name::new("PA"),
            out: Name::new("Person"),
        };
        let fwd = smo.forward(&db, None).unwrap();
        assert!(fwd.contains("Person", &tuple![1i64, "Alice", 30i64]));
        let back = smo.backward(&fwd, &schema, None).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn schema_errors_reported() {
        assert!(matches!(
            Smo::DropTable(Name::new("Nope")).apply_schema(&person_schema()),
            Err(EvolutionError::UnknownTable(_))
        ));
        assert!(matches!(
            Smo::RenameColumn {
                table: Name::new("Person"),
                from: Name::new("nope"),
                to: Name::new("x"),
            }
            .apply_schema(&person_schema()),
            Err(EvolutionError::UnknownColumn { .. })
        ));
        assert!(matches!(
            Smo::AddColumn {
                table: Name::new("Person"),
                column: Name::new("name"),
                ty: AttrType::Any,
                default: ColumnDefault::Null,
            }
            .apply_schema(&person_schema()),
            Err(EvolutionError::NameCollision(_))
        ));
    }

    #[test]
    fn display_forms() {
        let smo = Smo::SplitHorizontal {
            table: Name::new("T"),
            pred: Expr::attr("a").ge(Expr::lit(1i64)),
            true_table: Name::new("Hi"),
            false_table: Name::new("Lo"),
        };
        assert_eq!(smo.to_string(), "SPLIT T ON a >= 1 INTO Hi / Lo");
    }
}
