//! Property tests for the bidirectional SMO semantics.
//!
//! The lens laws the migration compiler leans on: for every SMO,
//! `backward(forward(I))` — with the original instance as memory where
//! the operator is lossy — reproduces `I` exactly, and a repeated
//! `forward` with the evolved side as memory is stable (edits and
//! minted nulls survive). Both `ColumnDefault` paths (`Null` and
//! `Const`) are exercised for add and drop.

use dex_evolution::{ColumnDefault, Smo};
use dex_relational::{tuple, AttrType, Expr, Instance, Name, RelSchema, Schema, Tuple};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn person_schema() -> Schema {
    Schema::with_relations(vec![RelSchema::untyped(
        "Person",
        vec!["id", "name", "age"],
    )
    .unwrap()])
    .unwrap()
}

/// Random Person rows, unique on `id` (the BTreeMap keys), so that
/// vertical partitions on `id` are lossless joins and projections never
/// collide rows.
fn person_rows() -> impl Strategy<Value = BTreeMap<i64, (String, i64)>> {
    proptest::collection::btree_map(
        0..50i64,
        ("[a-e]{1,4}".prop_map(String::from), 0..90i64),
        0..10,
    )
}

fn person_db(rows: &BTreeMap<i64, (String, i64)>) -> Instance {
    let facts: Vec<Tuple> = rows
        .iter()
        .map(|(id, (name, age))| tuple![*id, name.as_str(), *age])
        .collect();
    Instance::with_facts(person_schema(), vec![("Person", facts)]).unwrap()
}

fn round_trip(smo: &Smo, db: &Instance, memory: bool) -> Instance {
    let fwd = smo.forward(db, None).expect("forward");
    smo.backward(&fwd, db.schema(), memory.then_some(db))
        .expect("backward")
}

proptest! {
    #[test]
    fn rename_table_round_trips(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::RenameTable { from: Name::new("Person"), to: Name::new("People") };
        prop_assert_eq!(round_trip(&smo, &db, false), db);
    }

    #[test]
    fn rename_column_round_trips(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::RenameColumn {
            table: Name::new("Person"),
            from: Name::new("age"),
            to: Name::new("years"),
        };
        prop_assert_eq!(round_trip(&smo, &db, false), db);
    }

    #[test]
    fn create_table_round_trips_and_keeps_target_edits(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::CreateTable(RelSchema::untyped("Log", vec!["msg"]).unwrap());
        prop_assert_eq!(round_trip(&smo, &db, false), db.clone());
        // Data entered in the created table is target-private: a later
        // forward with the evolved side as memory must keep it.
        let mut evolved = smo.forward(&db, None).unwrap();
        evolved.insert("Log", tuple!["hello"]).unwrap();
        let fwd2 = smo.forward(&db, Some(&evolved)).unwrap();
        prop_assert_eq!(fwd2, evolved);
    }

    #[test]
    fn drop_table_restores_from_memory(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::DropTable(Name::new("Person"));
        let fwd = smo.forward(&db, None).unwrap();
        prop_assert!(fwd.relation("Person").is_none());
        prop_assert_eq!(round_trip(&smo, &db, true), db);
    }

    #[test]
    fn add_column_const_round_trips_without_minting_nulls(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::AddColumn {
            table: Name::new("Person"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: ColumnDefault::Const("unknown".into()),
        };
        let fwd = smo.forward(&db, None).unwrap();
        prop_assert!(fwd.nulls().is_empty(), "constant default mints no nulls");
        for (id, (name, age)) in &rows {
            prop_assert!(fwd.contains("Person", &tuple![*id, name.as_str(), *age, "unknown"]));
        }
        prop_assert_eq!(smo.backward(&fwd, db.schema(), None).unwrap(), db);
    }

    #[test]
    fn add_column_null_mints_one_null_per_row_and_round_trips(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::AddColumn {
            table: Name::new("Person"),
            column: Name::new("city"),
            ty: AttrType::Any,
            default: ColumnDefault::Null,
        };
        let fwd = smo.forward(&db, None).unwrap();
        prop_assert_eq!(fwd.nulls().len(), rows.len(), "one fresh null per row");
        prop_assert_eq!(smo.backward(&fwd, db.schema(), None).unwrap(), db.clone());
        // Stability: re-running forward with the evolved side as memory
        // must not re-mint — the first run's nulls are kept verbatim.
        let fwd2 = smo.forward(&db, Some(&fwd)).unwrap();
        prop_assert_eq!(fwd2, fwd);
    }

    #[test]
    fn drop_column_with_memory_round_trips_exactly(rows in person_rows()) {
        let db = person_db(&rows);
        for restore in [ColumnDefault::Null, ColumnDefault::Const(0i64.into())] {
            let smo = Smo::DropColumn {
                table: Name::new("Person"),
                column: Name::new("age"),
                restore_default: restore,
            };
            prop_assert_eq!(round_trip(&smo, &db, true), db.clone());
        }
    }

    #[test]
    fn drop_column_without_memory_fills_the_restore_default(rows in person_rows()) {
        let db = person_db(&rows);
        let null_smo = Smo::DropColumn {
            table: Name::new("Person"),
            column: Name::new("age"),
            restore_default: ColumnDefault::Null,
        };
        let cold = round_trip(&null_smo, &db, false);
        prop_assert_eq!(cold.fact_count(), rows.len());
        prop_assert_eq!(cold.nulls().len(), rows.len(), "one placeholder null per row");

        let const_smo = Smo::DropColumn {
            table: Name::new("Person"),
            column: Name::new("age"),
            restore_default: ColumnDefault::Const(0i64.into()),
        };
        let cold = round_trip(&const_smo, &db, false);
        for (id, (name, _)) in &rows {
            prop_assert!(cold.contains("Person", &tuple![*id, name.as_str(), 0i64]));
        }
    }

    #[test]
    fn split_horizontal_round_trips(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::SplitHorizontal {
            table: Name::new("Person"),
            pred: Expr::attr("age").ge(Expr::lit(40i64)),
            true_table: Name::new("Senior"),
            false_table: Name::new("Junior"),
        };
        let fwd = smo.forward(&db, None).unwrap();
        let split: usize = ["Senior", "Junior"]
            .iter()
            .map(|t| fwd.relation(t).unwrap().len())
            .sum();
        prop_assert_eq!(split, rows.len(), "split loses and invents nothing");
        prop_assert_eq!(smo.backward(&fwd, db.schema(), None).unwrap(), db);
    }

    #[test]
    fn merge_horizontal_restores_provenance_from_memory(rows in person_rows()) {
        // Route rows to two same-header tables by id parity; rows are
        // unique on id, so the two sides are disjoint.
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("Old", vec!["id", "name", "age"]).unwrap(),
            RelSchema::untyped("New", vec!["id", "name", "age"]).unwrap(),
        ])
        .unwrap();
        let (mut old, mut new) = (Vec::new(), Vec::new());
        for (id, (name, age)) in &rows {
            let t = tuple![*id, name.as_str(), *age];
            if id % 2 == 0 { old.push(t) } else { new.push(t) }
        }
        let db =
            Instance::with_facts(schema.clone(), vec![("Old", old), ("New", new)]).unwrap();
        let smo = Smo::MergeHorizontal {
            left: Name::new("Old"),
            right: Name::new("New"),
            out: Name::new("All"),
        };
        let fwd = smo.forward(&db, None).unwrap();
        prop_assert_eq!(fwd.relation("All").unwrap().len(), rows.len());
        // With memory the original left/right provenance is restored;
        // without it every merged row routes to the left table.
        prop_assert_eq!(smo.backward(&fwd, &schema, Some(&db)).unwrap(), db);
        let cold = smo.backward(&fwd, &schema, None).unwrap();
        prop_assert_eq!(cold.relation("Old").unwrap().len(), rows.len());
        prop_assert!(cold.relation("New").unwrap().is_empty());
    }

    #[test]
    fn partition_vertical_on_a_key_is_a_lossless_join(rows in person_rows()) {
        let db = person_db(&rows);
        let smo = Smo::PartitionVertical {
            table: Name::new("Person"),
            left: (Name::new("Ident"), vec![Name::new("id"), Name::new("name")]),
            right: (Name::new("Age"), vec![Name::new("id"), Name::new("age")]),
        };
        // `id` is unique, so the natural join back is exact.
        prop_assert_eq!(round_trip(&smo, &db, false), db);
    }

    #[test]
    fn partition_vertical_on_a_non_key_joins_to_a_superset(rows in person_rows()) {
        // Shared column `name` repeats across rows, so the backward
        // natural join may invent combinations — but never loses a row.
        let db = person_db(&rows);
        let smo = Smo::PartitionVertical {
            table: Name::new("Person"),
            left: (Name::new("Ident"), vec![Name::new("name"), Name::new("id")]),
            right: (Name::new("Ages"), vec![Name::new("name"), Name::new("age")]),
        };
        let back = round_trip(&smo, &db, false);
        for (id, (name, age)) in &rows {
            prop_assert!(back.contains("Person", &tuple![*id, name.as_str(), *age]));
        }
    }
}
