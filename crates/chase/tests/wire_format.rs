//! Golden pin for the versioned [`ChaseStats`] JSON wire format.
//!
//! The stats object is consumed by `dexcli --stats --format json`
//! tooling and `dexd` HTTP clients, so its byte-level shape is an API:
//! any drift must show up as a deliberate diff here, together with a
//! bump of [`dex_chase::CHASE_STATS_WIRE_V`].

use dex_chase::ChaseStats;

#[test]
fn chase_stats_wire_format_is_pinned() {
    let stats = ChaseStats {
        st_firings: 4,
        rounds: 2,
        firings_per_round: vec![3, 1, 0],
        delta_sizes: vec![4, 3, 1],
        index_builds: 5,
        index_probes: 17,
    };
    let got = serde_json::to_string(&stats).expect("stats serialize");
    assert_eq!(
        got,
        "{\"v\":1,\"st_firings\":4,\"rounds\":2,\
         \"firings_per_round\":[3,1,0],\"delta_sizes\":[4,3,1],\
         \"index_builds\":5,\"index_probes\":17}"
    );
}

#[test]
fn default_stats_still_carry_the_version_tag() {
    let j: serde_json::Value =
        serde_json::to_value(&ChaseStats::default()).expect("default stats serialize");
    assert_eq!(j["v"].as_u64(), Some(1));
    assert_eq!(j["rounds"].as_u64(), Some(0));
}
