//! Fault-injection matrix: every registered fail-point site, in both
//! actions, against a real exchange. Pinned properties:
//!
//! * an injected *error* surfaces as a typed [`ChaseError`] — never a
//!   panic, never a partial write into the caller's inputs;
//! * an injected *panic* unwinds cleanly (poison-tolerant locks) and
//!   the very next un-armed run succeeds;
//! * in both cases the source instance is bit-identical afterwards.
//!
//! Compiled only with `--features failpoints`.
#![cfg(feature = "failpoints")]

use dex_chase::{exchange, ChaseError};
use dex_logic::parse_mapping;
use dex_logic::Mapping;
use dex_relational::fail::{arm, clear, exclusive, FailAction, SITES};
use dex_relational::{tuple, Instance, RelationalError};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A mapping that exercises all three sites: indexed matching (builds
/// indexes), tgd firing, and delta commits across two chase phases.
fn exchange_fixture() -> (Mapping, Instance) {
    let m = parse_mapping(
        r#"
        source R(a);
        target S(a);
        target T(a, b);
        R(x) -> S(x);
        S(x) -> T(x, y);
        "#,
    )
    .unwrap();
    let src = Instance::with_facts(
        m.source().clone(),
        vec![("R", vec![tuple!["u"], tuple!["v"], tuple!["w"]])],
    )
    .unwrap();
    (m, src)
}

#[test]
fn matrix_every_site_every_action() {
    let _gate = exclusive();
    for &site in SITES {
        for action in [FailAction::Error, FailAction::Panic] {
            clear();
            let (m, src) = exchange_fixture();
            let pristine = src.clone();
            arm(site, action, 1);

            let outcome = catch_unwind(AssertUnwindSafe(|| exchange(&m, &src)));
            // `index.build` sits behind an infallible probe API, so
            // both actions surface as a panic there; the other sites
            // return the typed error for `Error`.
            let error_is_typed = site != "index.build" && action == FailAction::Error;
            match outcome {
                Ok(Err(ChaseError::Relational(RelationalError::FaultInjected(s)))) => {
                    assert!(
                        error_is_typed,
                        "unexpected typed error at {site}/{action:?}"
                    );
                    assert_eq!(s, site);
                }
                Ok(Err(other)) => panic!("wrong error at {site}/{action:?}: {other}"),
                Ok(Ok(_)) => panic!("injected fault at {site}/{action:?} was swallowed"),
                Err(_) => assert!(
                    !error_is_typed,
                    "error action at {site} should not have panicked"
                ),
            }

            // The faulted run left its input untouched (the fail
            // points sit before any mutation), and the process — locks
            // included — is healthy enough to run to completion.
            assert_eq!(src, pristine, "{site}/{action:?} mutated the source");
            clear();
            let rerun = exchange(&m, &src).expect("post-fault exchange");
            assert_eq!(rerun.target.fact_count(), 6, "recovery run completes");
        }
    }
    clear();
}

#[test]
fn later_hits_fault_deeper_in_the_chase() {
    let _gate = exclusive();
    clear();
    let (m, src) = exchange_fixture();
    // Phase 1 fires three times; the 5th firing is mid phase-2.
    arm("chase.fire", FailAction::Error, 5);
    let err = exchange(&m, &src).expect_err("5th firing faults");
    assert!(matches!(
        err,
        ChaseError::Relational(RelationalError::FaultInjected(_))
    ));
    clear();
    assert!(exchange(&m, &src).is_ok());
}
