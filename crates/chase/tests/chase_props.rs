//! Property-based tests for the chase: soundness (the output is always
//! a solution), universality against sampled solutions, and the
//! standard/oblivious relationship.

use dex_chase::{
    certain_answers, core_of, exchange, exchange_with, ChaseOptions, ChaseVariant,
    ConjunctiveQuery, Matcher,
};
use dex_logic::{parse_mapping, Atom, Mapping};
use dex_relational::homomorphism::{homomorphically_equivalent, is_homomorphic_to};
use dex_relational::{tuple, Instance};
use proptest::prelude::*;

fn mappings() -> Vec<Mapping> {
    vec![
        parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap(),
        parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap(),
        parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            "#,
        )
        .unwrap(),
    ]
}

/// Mappings that exercise the phase-2 target chase: chained target
/// tgds, a target join premise, and egds interleaved with tgds.
fn target_dep_mappings() -> Vec<Mapping> {
    vec![
        parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a, b);
            target U(b);
            R(x) -> S(x);
            S(x) -> T(x, y);
            T(x, y) -> U(y);
            "#,
        )
        .unwrap(),
        parse_mapping(
            r#"
            source E(p, c);
            target P(p, c);
            target G(a, c);
            E(x, y) -> P(x, y);
            P(x, y) & P(y, z) -> G(x, z);
            "#,
        )
        .unwrap(),
        parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target Manager(emp, mgr);
            target Peer(mgr);
            key Manager(emp);
            E1(x) -> Manager(x, y);
            E2(x) -> Manager(x, y);
            Manager(x, y) -> Peer(y);
            "#,
        )
        .unwrap(),
    ]
}

/// Populate every source relation of `m` from a pool of generated
/// pairs (unary relations use the first component).
fn populate(m: &Mapping, rows: &[(u8, u8)]) -> Instance {
    let mut inst = Instance::empty(m.source().clone());
    for rel in m.source().relations() {
        for (i, (a, b)) in rows.iter().enumerate() {
            let vals: Vec<dex_relational::Value> = match rel.arity() {
                1 => vec![dex_relational::Value::str(format!("v{a}"))],
                2 => vec![
                    dex_relational::Value::str(format!("v{a}")),
                    dex_relational::Value::str(format!("w{b}")),
                ],
                n => (0..n)
                    .map(|k| dex_relational::Value::str(format!("x{i}_{k}")))
                    .collect(),
            };
            inst.insert(rel.name().as_str(), dex_relational::Tuple::new(vals))
                .unwrap();
        }
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soundness: the chase output is a solution, for every mapping in
    /// the family and every generated source.
    #[test]
    fn chase_output_is_always_a_solution(rows in proptest::collection::vec((0u8..5, 0u8..5), 0..8)) {
        for m in mappings() {
            let src = populate(&m, &rows);
            let res = exchange(&m, &src).unwrap();
            prop_assert!(m.is_solution(&src, &res.target), "mapping failed:\n{}", m);
        }
    }

    /// Universality against a constructed family of other solutions:
    /// the canonical solution maps into (chase output ∪ extra ground
    /// facts resolved from its nulls).
    #[test]
    fn chase_output_maps_into_extended_solutions(rows in proptest::collection::vec((0u8..4, 0u8..4), 1..6)) {
        for m in mappings() {
            let src = populate(&m, &rows);
            let res = exchange(&m, &src).unwrap();
            // Resolve every null to a fixed constant: still a solution
            // (tgd rhs are positive), and the canonical maps into it.
            let nulls = res.target.nulls();
            let subst: std::collections::BTreeMap<_, _> = nulls
                .into_iter()
                .map(|n| (n, dex_relational::Value::str("resolved")))
                .collect();
            let ground = res.target.substitute_nulls(&subst);
            prop_assert!(m.is_solution(&src, &ground));
            prop_assert!(is_homomorphic_to(&res.target, &ground));
        }
    }

    /// The standard and oblivious chases are homomorphically
    /// equivalent, and the standard one never produces more facts.
    #[test]
    fn standard_vs_oblivious(rows in proptest::collection::vec((0u8..4, 0u8..4), 0..8)) {
        for m in mappings() {
            let src = populate(&m, &rows);
            let std = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
            let obl = exchange_with(&m, &src, ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            }).unwrap();
            prop_assert!(std.target.fact_count() <= obl.target.fact_count());
            prop_assert!(homomorphically_equivalent(&std.target, &obl.target));
        }
    }

    /// Monotonicity of certain answers: adding source facts never
    /// removes certain answers (for the positive queries used here).
    #[test]
    fn certain_answers_monotone(
        rows in proptest::collection::btree_set((0u8..4, 0u8..4), 1..6),
        extra in (0u8..4, 0u8..4),
    ) {
        let m = &mappings()[2]; // Father/Mother → Parent
        let rows: Vec<(u8, u8)> = rows.into_iter().collect();
        let small = populate(m, &rows);
        let mut big = small.clone();
        big.insert("Father", tuple![
            format!("v{}", extra.0).as_str(),
            format!("w{}", extra.1).as_str()
        ]).unwrap();
        let q = ConjunctiveQuery::new(vec!["p"], vec![Atom::vars("Parent", &["p", "c"])]).unwrap();
        let small_ans = certain_answers(&q, &exchange(m, &small).unwrap().target);
        let big_ans = certain_answers(&q, &exchange(m, &big).unwrap().target);
        prop_assert!(small_ans.is_subset(&big_ans));
    }

    /// The indexed semi-naive chase is *literally* equal to the
    /// full-scan oracle — same tuples, same null allocation order, same
    /// firing count — on random instances, for both chase variants,
    /// across plain st-tgd mappings and mappings with target tgds/egds.
    #[test]
    fn indexed_semi_naive_literally_equals_scan_oracle(
        rows in proptest::collection::vec((0u8..5, 0u8..5), 0..8)
    ) {
        for m in mappings().into_iter().chain(target_dep_mappings()) {
            let src = populate(&m, &rows);
            for variant in [ChaseVariant::Standard, ChaseVariant::Oblivious] {
                let indexed = exchange_with(&m, &src, ChaseOptions {
                    variant,
                    matcher: Matcher::Indexed,
                    ..Default::default()
                }).unwrap();
                let scan = exchange_with(&m, &src, ChaseOptions {
                    variant,
                    matcher: Matcher::Scan,
                    ..Default::default()
                }).unwrap();
                prop_assert_eq!(
                    &indexed.target, &scan.target,
                    "divergence under {:?} for:\n{}", variant, m
                );
                prop_assert_eq!(indexed.nulls_created, scan.nulls_created);
                prop_assert_eq!(indexed.firings, scan.firings);
            }
        }
    }

    /// Sharded parallel matching is *literally* equal to the
    /// single-threaded chase — same tuples, same null allocation order,
    /// same firing count, same stats — for 2, 3, and 8 worker threads,
    /// both matchers, both chase variants, across plain st-tgd mappings
    /// and mappings with target tgds/egds.
    #[test]
    fn parallel_matching_literally_equals_sequential(
        rows in proptest::collection::vec((0u8..5, 0u8..5), 0..8)
    ) {
        for m in mappings().into_iter().chain(target_dep_mappings()) {
            let src = populate(&m, &rows);
            for variant in [ChaseVariant::Standard, ChaseVariant::Oblivious] {
                for matcher in [Matcher::Indexed, Matcher::Scan] {
                    let seq = exchange_with(&m, &src, ChaseOptions {
                        variant,
                        matcher,
                        threads: 1,
                        ..Default::default()
                    }).unwrap();
                    for threads in [2usize, 3, 8] {
                        let par = exchange_with(&m, &src, ChaseOptions {
                            variant,
                            matcher,
                            threads,
                            ..Default::default()
                        }).unwrap();
                        prop_assert_eq!(
                            &seq.target, &par.target,
                            "threads={} {:?}/{:?} diverged for:\n{}",
                            threads, variant, matcher, m
                        );
                        prop_assert_eq!(seq.nulls_created, par.nulls_created);
                        prop_assert_eq!(seq.firings, par.firings);
                        prop_assert_eq!(&seq.stats, &par.stats);
                    }
                }
            }
        }
    }

    /// The core of the chase output is still a solution and still
    /// universal (maps into the original output).
    #[test]
    fn core_preserves_solutionhood(rows in proptest::collection::vec((0u8..3, 0u8..3), 0..6)) {
        for m in mappings() {
            let src = populate(&m, &rows);
            let res = exchange_with(&m, &src, ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            }).unwrap();
            let core = core_of(&res.target);
            prop_assert!(m.is_solution(&src, &core), "core lost solutionhood");
            prop_assert!(homomorphically_equivalent(&core, &res.target));
            prop_assert!(core.fact_count() <= res.target.fact_count());
        }
    }
}
