//! Chasing with second-order tgds.
//!
//! Executing a *composed* mapping (paper Example 2) requires chasing an
//! SO-tgd directly: existential functions are interpreted as **Skolem
//! terms** (`Value::Skolem`), making the canonical target instance
//! computable in one pass. Equalities on the left-hand side are
//! evaluated syntactically over these terms — `f(Alice)` equals only
//! `f(Alice)` — which yields the canonical (most-general) solution.

use crate::chase::{ChaseStats, Exhausted};
use crate::error::ChaseError;
use dex_logic::eval::match_conjunction;
use dex_logic::SoTgd;
use dex_relational::{Governor, Instance, Schema};

/// Materialize the canonical target instance of `src` under an SO-tgd.
///
/// For SO-tgds obtained by composing st-tgd mappings this is the
/// canonical universal solution of the composition: existential
/// functions become Skolem-term values over the matched source values.
pub fn so_exchange(
    sotgd: &SoTgd,
    target_schema: &Schema,
    src: &Instance,
) -> Result<Instance, ChaseError> {
    match so_exchange_governed(sotgd, target_schema, src, &Governor::unlimited())? {
        SoOutcome::Complete(inst) => Ok(inst),
        // Unreachable with an unlimited governor; collapse defensively.
        SoOutcome::Exhausted(e) => Err(ChaseError::Exhausted(Box::new(e))),
    }
}

/// The outcome of a governed SO-tgd chase.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum SoOutcome {
    /// The single-pass SO chase ran to completion.
    Complete(Instance),
    /// A budget or cancellation stopped the pass early; the partial
    /// holds the facts of a prefix of whole clause-match firings.
    Exhausted(Exhausted),
}

/// Like [`so_exchange`], but checks a [`Governor`] between clause-match
/// firings: a trip hands back the facts inserted so far (each firing
/// inserts all rhs atoms of one matched clause before the next check,
/// so the partial is a prefix of whole firings).
pub fn so_exchange_governed(
    sotgd: &SoTgd,
    target_schema: &Schema,
    src: &Instance,
    gov: &Governor,
) -> Result<SoOutcome, ChaseError> {
    let mut target = Instance::empty(target_schema.clone());
    for clause in &sotgd.clauses {
        for m in match_conjunction(&clause.lhs_atoms, src) {
            if let Err(reason) = gov.check() {
                return Ok(SoOutcome::Exhausted(Exhausted {
                    partial: target,
                    report: gov.report(reason),
                    stats: ChaseStats::default(),
                }));
            }
            // Left-hand equalities: evaluate with Skolem-term semantics.
            let mut eqs_hold = true;
            for (a, b) in &clause.lhs_eqs {
                let va = a.eval(&m);
                let vb = b.eval(&m);
                if va.is_none() || vb.is_none() || va != vb {
                    eqs_hold = false;
                    break;
                }
            }
            if !eqs_hold {
                continue;
            }
            let mut inserted = 0usize;
            for atom in &clause.rhs_atoms {
                let t = atom.instantiate(&m).ok_or_else(|| {
                    ChaseError::Relational(dex_relational::RelationalError::EvalError(format!(
                        "SO-tgd rhs atom {atom} has variables not bound by the clause body"
                    )))
                })?;
                if target.insert(atom.relation.as_str(), t)? {
                    inserted += 1;
                }
            }
            gov.note_tuples(inserted);
        }
    }
    Ok(SoOutcome::Complete(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_tgd, Atom, SoClause, Term};
    use dex_relational::{tuple, Name, RelSchema, Tuple, Value};

    fn emp_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap()
    }

    fn boss_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Boss", vec!["emp", "mgr"]).unwrap(),
            RelSchema::untyped("SelfMngr", vec!["emp"]).unwrap(),
        ])
        .unwrap()
    }

    /// The paper's Example 2 SO-tgd, chased over I = {Emp(Alice),
    /// Emp(Bob)}: Boss gets Skolem-term managers, SelfMngr stays empty
    /// (x = f(x) never holds syntactically for a fresh Skolem term).
    #[test]
    fn example2_canonical_solution() {
        let so = SoTgd::new(
            vec![(Name::new("f"), 1)],
            vec![
                SoClause::new(
                    vec![Atom::vars("Emp", &["x"])],
                    vec![],
                    vec![Atom::new(
                        "Boss",
                        vec![Term::var("x"), Term::func("f", vec![Term::var("x")])],
                    )],
                ),
                SoClause::new(
                    vec![Atom::vars("Emp", &["x"])],
                    vec![(Term::var("x"), Term::func("f", vec![Term::var("x")]))],
                    vec![Atom::vars("SelfMngr", &["x"])],
                ),
            ],
        );
        let src = Instance::with_facts(
            emp_schema(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        let j = so_exchange(&so, &boss_schema(), &src).unwrap();
        assert_eq!(j.relation("Boss").unwrap().len(), 2);
        assert!(j.relation("SelfMngr").unwrap().is_empty());
        assert!(j.contains(
            "Boss",
            &Tuple::new(vec![
                Value::str("Alice"),
                Value::skolem("f", vec![Value::str("Alice")]),
            ])
        ));
        // The canonical solution satisfies the SO-tgd (bounded check).
        assert!(so.satisfied_by_bounded(&src, &j));
    }

    #[test]
    fn function_free_so_chase_agrees_with_plain_semantics() {
        let tgd = parse_tgd("Manager(x, y) -> Boss(x, y)").unwrap();
        let so = SoTgd::from_st_tgds(std::slice::from_ref(&tgd));
        let mgr_schema =
            Schema::with_relations(vec![RelSchema::untyped("Manager", vec!["e", "m"]).unwrap()])
                .unwrap();
        let src = Instance::with_facts(mgr_schema, vec![("Manager", vec![tuple!["Alice", "Ted"]])])
            .unwrap();
        let j = so_exchange(&so, &boss_schema(), &src).unwrap();
        assert!(j.contains("Boss", &tuple!["Alice", "Ted"]));
        assert_eq!(j.fact_count(), 1);
        assert!(tgd.satisfied_by(&src, &j));
    }

    #[test]
    fn skolemized_existential_becomes_skolem_value() {
        let tgd = parse_tgd("Emp(x) -> Manager2(x, y)").unwrap();
        let so = SoTgd::from_st_tgds(&[tgd]);
        let t_schema =
            Schema::with_relations(vec![RelSchema::untyped("Manager2", vec!["e", "m"]).unwrap()])
                .unwrap();
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let j = so_exchange(&so, &t_schema, &src).unwrap();
        let t = j.relation("Manager2").unwrap().iter().next().unwrap();
        assert_eq!(t[0], Value::str("Alice"));
        assert!(t[1].is_skolem());
    }

    #[test]
    fn equality_between_constants_filters_matches() {
        // Clause: P(x, y) ∧ x = y → Q(x). Only the diagonal fires.
        let so = SoTgd::new(
            vec![],
            vec![SoClause::new(
                vec![Atom::vars("P", &["x", "y"])],
                vec![(Term::var("x"), Term::var("y"))],
                vec![Atom::vars("Q", &["x"])],
            )],
        );
        let p_schema =
            Schema::with_relations(vec![RelSchema::untyped("P", vec!["a", "b"]).unwrap()]).unwrap();
        let q_schema =
            Schema::with_relations(vec![RelSchema::untyped("Q", vec!["a"]).unwrap()]).unwrap();
        let src = Instance::with_facts(
            p_schema,
            vec![("P", vec![tuple!["a", "a"], tuple!["a", "b"]])],
        )
        .unwrap();
        let j = so_exchange(&so, &q_schema, &src).unwrap();
        assert_eq!(j.fact_count(), 1);
        assert!(j.contains("Q", &tuple!["a"]));
    }
}
