//! Chase failure modes.

use dex_relational::RelationalError;
use std::fmt;

/// Errors raised while chasing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChaseError {
    /// An egd tried to equate two distinct constants — the exchange has
    /// **no solution** (hard failure in the data-exchange sense).
    EgdFailure {
        /// Display of the egd that failed.
        egd: String,
        /// The two constants that were forced equal.
        left: String,
        /// Second constant.
        right: String,
    },
    /// The target-dependency chase did not reach a fixpoint within the
    /// step budget (possible for non-weakly-acyclic dependencies).
    StepLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// An underlying relational error (arity/type violations etc.).
    Relational(RelationalError),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::EgdFailure { egd, left, right } => write!(
                f,
                "chase failed: egd `{egd}` forces distinct constants {left} = {right}"
            ),
            ChaseError::StepLimitExceeded { limit } => {
                write!(
                    f,
                    "chase exceeded {limit} steps without reaching a fixpoint"
                )
            }
            ChaseError::Relational(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<RelationalError> for ChaseError {
    fn from(e: RelationalError) -> Self {
        ChaseError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ChaseError::StepLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10 steps"));
        let e = ChaseError::EgdFailure {
            egd: "E".into(),
            left: "a".into(),
            right: "b".into(),
        };
        assert!(e.to_string().contains("a = b"));
    }
}
