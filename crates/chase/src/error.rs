//! Chase failure modes.

use crate::chase::Exhausted;
use dex_relational::{Name, RelationalError};
use std::fmt;

/// Errors raised while chasing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChaseError {
    /// An egd tried to equate two distinct constants — the exchange has
    /// **no solution** (hard failure in the data-exchange sense).
    EgdFailure {
        /// Display of the egd that failed.
        egd: String,
        /// The two constants that were forced equal.
        left: String,
        /// Second constant.
        right: String,
    },
    /// A resource budget (rounds, deadline, tuples, nulls, memory) or a
    /// cancellation stopped the chase before fixpoint. Raised by the
    /// `Result`-only entry points ([`crate::exchange_with`] and
    /// friends), which have no room for a partial outcome; the governed
    /// entry points ([`crate::exchange_governed`]) return the boxed
    /// [`Exhausted`] value — partial instance plus report — directly,
    /// so callers can keep the consistent prefix.
    Exhausted(Box<Exhausted>),
    /// A dependency used a variable in its conclusion (or an egd in its
    /// equalities) that its premise never binds. Caught at parse time
    /// for `.dex` sources; reachable for programmatically constructed
    /// dependencies.
    UnboundVariable {
        /// The unbound variable.
        var: Name,
        /// The dependency being fired, in display form.
        dependency: String,
    },
    /// An underlying relational error (arity/type violations etc.).
    Relational(RelationalError),
    /// A [`crate::CheckpointSink`] failed to persist a committed chase
    /// boundary. The chase aborts rather than outrun its own durable
    /// record; the message is the sink's own description (typically a
    /// `dex-store` IO or corruption error).
    Checkpoint(String),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::EgdFailure { egd, left, right } => write!(
                f,
                "chase failed: egd `{egd}` forces distinct constants {left} = {right}"
            ),
            ChaseError::Exhausted(e) => write!(f, "chase stopped: {}", e.report),
            ChaseError::UnboundVariable { var, dependency } => write!(
                f,
                "variable `{var}` is not bound by the premise of `{dependency}`"
            ),
            ChaseError::Relational(e) => write!(f, "{e}"),
            ChaseError::Checkpoint(msg) => {
                write!(f, "chase aborted: checkpoint sink failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<RelationalError> for ChaseError {
    fn from(e: RelationalError) -> Self {
        ChaseError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ChaseError::EgdFailure {
            egd: "E".into(),
            left: "a".into(),
            right: "b".into(),
        };
        assert!(e.to_string().contains("a = b"));
        let e = ChaseError::UnboundVariable {
            var: Name::new("z"),
            dependency: "R(x) -> S(z)".into(),
        };
        assert!(e.to_string().contains("`z`"));
    }
}
