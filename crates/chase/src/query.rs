//! Conjunctive queries and certain answers.
//!
//! Query answering in data exchange (paper §2, citing Fagin et al.
//! \[11\]): the *certain answers* of a query are those holding in **every**
//! solution. For (unions of) conjunctive queries they are computed by
//! naive evaluation — evaluate over a universal solution and discard any
//! answer tuple containing a labeled null.

use dex_logic::eval::{for_each_match_mode, match_conjunction, MatchMode, Valuation};
use dex_logic::Atom;
use dex_relational::{ExhaustionReport, Governor, Instance, Name, RelationalError, Schema, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunctive query `q(x̄) :- body`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// The head (answer) variables.
    pub head: Vec<Name>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Build a query; head variables must occur in the body.
    pub fn new(head: Vec<&str>, body: Vec<Atom>) -> Result<Self, RelationalError> {
        let head: Vec<Name> = head.into_iter().map(Name::new).collect();
        let mut body_vars = Vec::new();
        for a in &body {
            a.collect_vars(&mut body_vars);
        }
        for h in &head {
            if !body_vars.contains(h) {
                return Err(RelationalError::UnboundAttribute(h.clone()));
            }
        }
        Ok(ConjunctiveQuery { head, body })
    }

    /// Validate body atoms against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), RelationalError> {
        for a in &self.body {
            a.validate(schema)?;
        }
        Ok(())
    }

    /// Evaluate over an instance (answers may contain nulls).
    pub fn eval(&self, inst: &Instance) -> BTreeSet<Tuple> {
        match_conjunction(&self.body, inst)
            .into_iter()
            .map(|m| {
                self.head
                    .iter()
                    .map(|h| m[h.as_str()].clone())
                    .collect::<Tuple>()
            })
            .collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q({}) :- {}",
            self.head
                .iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.body
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// A union of conjunctive queries with a shared head arity.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Build a union query; all disjuncts must agree on head arity.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Result<Self, RelationalError> {
        if let Some(first) = disjuncts.first() {
            let arity = first.head.len();
            if disjuncts.iter().any(|d| d.head.len() != arity) {
                return Err(RelationalError::SchemaMismatch {
                    context: "union query disjuncts must share head arity".into(),
                });
            }
        }
        Ok(UnionQuery { disjuncts })
    }

    /// Evaluate over an instance.
    pub fn eval(&self, inst: &Instance) -> BTreeSet<Tuple> {
        self.disjuncts.iter().flat_map(|d| d.eval(inst)).collect()
    }
}

/// Certain answers by naive evaluation over a universal solution: keep
/// only the all-constant answer tuples.
pub fn certain_answers(q: &ConjunctiveQuery, universal_solution: &Instance) -> BTreeSet<Tuple> {
    q.eval(universal_solution)
        .into_iter()
        .filter(Tuple::is_ground)
        .collect()
}

/// Certain answers of a union of conjunctive queries.
pub fn certain_answers_union(q: &UnionQuery, universal_solution: &Instance) -> BTreeSet<Tuple> {
    q.eval(universal_solution)
        .into_iter()
        .filter(Tuple::is_ground)
        .collect()
}

/// Certain answers under a resource budget: naive evaluation that
/// checks the governor between body matches (each enumerated match
/// also counts one tuple of consumption). Returns the certain answers
/// accumulated so far, plus `Some(report)` when a budget or
/// cancellation stopped the enumeration early — in which case the set
/// is a sound *subset* of the certain answers (every returned tuple is
/// certain; some may be missing). `None` means the evaluation ran to
/// completion and the set is exact.
pub fn certain_answers_governed(
    q: &ConjunctiveQuery,
    universal_solution: &Instance,
    gov: &Governor,
) -> (BTreeSet<Tuple>, Option<ExhaustionReport>) {
    let mut out = BTreeSet::new();
    let mut tripped = None;
    for_each_match_mode(
        &q.body,
        universal_solution,
        &Valuation::new(),
        MatchMode::default(),
        &mut |m| {
            if let Err(reason) = gov.check() {
                tripped = Some(gov.report(reason));
                return true; // stop the enumeration
            }
            gov.note_tuples(1);
            let t: Tuple = q
                .head
                .iter()
                .map(|h| m[h.as_str()].clone())
                .collect::<Tuple>();
            if t.is_ground() {
                out.insert(t);
            }
            false
        },
    );
    (out, tripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::exchange;
    use dex_logic::parse_mapping;
    use dex_relational::tuple;

    #[test]
    fn head_vars_must_occur_in_body() {
        let err = ConjunctiveQuery::new(vec!["x"], vec![Atom::vars("R", &["y"])]);
        assert!(err.is_err());
    }

    #[test]
    fn certain_answers_drop_null_tuples() {
        // Example 1's exchange: q(e, m) :- Manager(e, m) has NO certain
        // answers (managers are nulls); q(e) :- Manager(e, m) has both
        // employees.
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let src = dex_relational::Instance::with_facts(
            m.source().clone(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;

        let q_pairs =
            ConjunctiveQuery::new(vec!["e", "m"], vec![Atom::vars("Manager", &["e", "m"])])
                .unwrap();
        assert!(certain_answers(&q_pairs, &j).is_empty());

        let q_emps =
            ConjunctiveQuery::new(vec!["e"], vec![Atom::vars("Manager", &["e", "m"])]).unwrap();
        let ans = certain_answers(&q_emps, &j);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["Alice"]));
        assert!(ans.contains(&tuple!["Bob"]));
    }

    #[test]
    fn eval_keeps_nulls_certain_answers_do_not() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let src = dex_relational::Instance::with_facts(
            m.source().clone(),
            vec![("Emp", vec![tuple!["Alice"]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        let q = ConjunctiveQuery::new(vec!["m"], vec![Atom::vars("Manager", &["e", "m"])]).unwrap();
        assert_eq!(q.eval(&j).len(), 1, "naive eval sees the null");
        assert!(certain_answers(&q, &j).is_empty());
    }

    #[test]
    fn join_query_over_universal_solution() {
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        let src = dex_relational::Instance::with_facts(
            m.source().clone(),
            vec![("Takes", vec![tuple!["Alice", "DB"]])],
        )
        .unwrap();
        let j = exchange(&m, &src).unwrap().target;
        // q(n, c) :- Student(i, n), Assgn(n, c): the join goes through
        // the shared constant name, so (Alice, DB) is certain.
        let q = ConjunctiveQuery::new(
            vec!["n", "c"],
            vec![
                Atom::vars("Student", &["i", "n"]),
                Atom::vars("Assgn", &["n", "c"]),
            ],
        )
        .unwrap();
        let ans = certain_answers(&q, &j);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["Alice", "DB"]));
    }

    #[test]
    fn union_query_arity_checked_and_evaluated() {
        let q1 = ConjunctiveQuery::new(vec!["x"], vec![Atom::vars("Father", &["x", "y"])]).unwrap();
        let q2 = ConjunctiveQuery::new(vec!["x"], vec![Atom::vars("Mother", &["x", "y"])]).unwrap();
        let u = UnionQuery::new(vec![q1.clone(), q2]).unwrap();
        let schema = dex_relational::Schema::with_relations(vec![
            dex_relational::RelSchema::untyped("Father", vec!["p", "c"]).unwrap(),
            dex_relational::RelSchema::untyped("Mother", vec!["p", "c"]).unwrap(),
        ])
        .unwrap();
        let inst = dex_relational::Instance::with_facts(
            schema,
            vec![
                ("Father", vec![tuple!["Leslie", "Alice"]]),
                ("Mother", vec![tuple!["Robin", "Sam"]]),
            ],
        )
        .unwrap();
        let ans = certain_answers_union(&u, &inst);
        assert_eq!(ans.len(), 2);

        let bad = UnionQuery::new(vec![
            q1,
            ConjunctiveQuery::new(vec!["x", "y"], vec![Atom::vars("Mother", &["x", "y"])]).unwrap(),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn display() {
        let q = ConjunctiveQuery::new(vec!["e"], vec![Atom::vars("Manager", &["e", "m"])]).unwrap();
        assert_eq!(q.to_string(), "q(e) :- Manager(e, m)");
    }
}
