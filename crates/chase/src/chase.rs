//! The chase: source instance → universal solution.

use crate::error::ChaseError;
use dex_logic::eval::{extend_matches, has_match, match_conjunction, Valuation};
use dex_logic::{Mapping, StTgd};
use dex_relational::{Instance, Name, NullGen, NullId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Which chase to run for the source-to-target phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseVariant {
    /// The **standard** chase: fire a tgd only when its right-hand side
    /// has no satisfying extension yet. Produces fewer redundant nulls.
    #[default]
    Standard,
    /// The **oblivious** chase: fire once for every left-hand-side
    /// match, unconditionally. Simpler and order-insensitive; produces a
    /// canonical (possibly redundant) universal solution.
    Oblivious,
}

/// Chase configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaseOptions {
    /// Source-to-target variant.
    pub variant: ChaseVariant,
    /// Maximum number of rule-firing rounds for the *target* chase
    /// (guards non-terminating target tgds).
    pub max_rounds: usize,
    /// Match the st-tgd premises in parallel (one task per tgd). Pays
    /// off for mappings with several expensive premises; firing stays
    /// sequential and deterministic either way.
    pub parallel: bool,
}

impl Default for ChaseOptions {
    fn default() -> Self {
        ChaseOptions {
            variant: ChaseVariant::Standard,
            max_rounds: 10_000,
            parallel: false,
        }
    }
}

/// The outcome of a successful exchange.
#[derive(Clone, Debug)]
pub struct ExchangeResult {
    /// The materialized universal solution.
    pub target: Instance,
    /// Number of labeled nulls invented.
    pub nulls_created: usize,
    /// Number of tgd firings (st + target).
    pub firings: usize,
}

/// Materialize a universal solution for `src` under `mapping` with
/// default options. This is the paper's “how to materialize the best
/// solution for I under M”.
///
/// ```
/// use dex_chase::exchange;
/// use dex_logic::parse_mapping;
/// use dex_relational::{tuple, Instance};
///
/// let m = parse_mapping(r#"
///     source Emp(name);
///     target Manager(emp, mgr);
///     Emp(x) -> Manager(x, y);
/// "#).unwrap();
/// let src = Instance::with_facts(
///     m.source().clone(),
///     vec![("Emp", vec![tuple!["Alice"]])],
/// ).unwrap();
/// let result = exchange(&m, &src).unwrap();
/// assert_eq!(result.nulls_created, 1);    // Alice's unknown manager
/// assert!(m.is_solution(&src, &result.target));
/// ```
pub fn exchange(mapping: &Mapping, src: &Instance) -> Result<ExchangeResult, ChaseError> {
    exchange_with(mapping, src, ChaseOptions::default())
}

/// Materialize with explicit options.
pub fn exchange_with(
    mapping: &Mapping,
    src: &Instance,
    opts: ChaseOptions,
) -> Result<ExchangeResult, ChaseError> {
    let mut target = Instance::empty(mapping.target().clone());
    // Fresh nulls must avoid any nulls already present in the source.
    let mut gen = src.null_gen();
    let mut firings = 0usize;
    let nulls_before = gen.clone();

    // Phase 1: source-to-target. The lhs only mentions source relations,
    // so a single pass over all (tgd, match) pairs suffices. Matching
    // is read-only over the source, so it can fan out across tgds;
    // firing is kept sequential for determinism.
    let all_matches: Vec<(usize, Vec<Valuation>)> =
        if opts.parallel && mapping.st_tgds().len() > 1 {
            crossbeam::scope(|scope| {
                let handles: Vec<_> = mapping
                    .st_tgds()
                    .iter()
                    .enumerate()
                    .map(|(i, tgd)| {
                        scope.spawn(move |_| (i, match_conjunction(&tgd.lhs, src)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("chase match threads panicked")
        } else {
            mapping
                .st_tgds()
                .iter()
                .enumerate()
                .map(|(i, tgd)| (i, match_conjunction(&tgd.lhs, src)))
                .collect()
        };
    for (i, matches) in all_matches {
        let tgd = &mapping.st_tgds()[i];
        let rhs_vars: BTreeSet<Name> = tgd.rhs_vars().into_iter().collect();
        for m in matches {
            let frontier: Valuation = m
                .into_iter()
                .filter(|(k, _)| rhs_vars.contains(k))
                .collect();
            if opts.variant == ChaseVariant::Standard
                && has_match(&tgd.rhs, &target, &frontier)
            {
                continue;
            }
            fire(tgd, &frontier, &mut target, &mut gen)?;
            firings += 1;
        }
    }

    // Phase 2: target dependencies to fixpoint.
    let mut rounds = 0usize;
    loop {
        let mut changed = false;

        // Target tgds (standard chase within the target).
        for tgd in mapping.target_tgds() {
            let rhs_vars: BTreeSet<Name> = tgd.rhs_vars().into_iter().collect();
            // Collect matches first: firing mutates the instance.
            let matches: Vec<Valuation> = match_conjunction(&tgd.lhs, &target);
            for m in matches {
                let frontier: Valuation = m
                    .into_iter()
                    .filter(|(k, _)| rhs_vars.contains(k))
                    .collect();
                if has_match(&tgd.rhs, &target, &frontier) {
                    continue;
                }
                fire(tgd, &frontier, &mut target, &mut gen)?;
                firings += 1;
                changed = true;
            }
        }

        // Target egds: equate values, merging nulls or failing on
        // distinct constants.
        for egd in mapping.target_egds() {
            let (new_target, merges) = chase_one_egd(egd, target)?;
            target = new_target;
            if merges > 0 {
                firings += merges;
                changed = true;
            }
        }

        if !changed {
            break;
        }
        rounds += 1;
        if rounds > opts.max_rounds {
            return Err(ChaseError::StepLimitExceeded {
                limit: opts.max_rounds,
            });
        }
    }

    let nulls_created = count_new_nulls(&nulls_before, &gen);
    Ok(ExchangeResult {
        target,
        nulls_created,
        firings,
    })
}

/// Chase one egd to its local fixpoint: repeatedly merge a null with
/// the value it is equated to (one merge at a time, then re-match).
/// Returns the new instance and the number of merges applied.
fn chase_one_egd(
    egd: &dex_logic::Egd,
    mut target: Instance,
) -> Result<(Instance, usize), ChaseError> {
    let mut merges = 0usize;
    loop {
        let mut subst: BTreeMap<NullId, Value> = BTreeMap::new();
        'find: for m in match_conjunction(&egd.lhs, &target) {
            for (a, b) in &egd.equalities {
                let va = a.eval(&m).expect("egd variables bound by body");
                let vb = b.eval(&m).expect("egd variables bound by body");
                if va == vb {
                    continue;
                }
                match (&va, &vb) {
                    (Value::Null(n), _) => {
                        subst.insert(*n, vb.clone());
                    }
                    (_, Value::Null(n)) => {
                        subst.insert(*n, va.clone());
                    }
                    _ => {
                        return Err(ChaseError::EgdFailure {
                            egd: egd.to_string(),
                            left: va.to_string(),
                            right: vb.to_string(),
                        });
                    }
                }
                break 'find; // apply one merge at a time
            }
        }
        if subst.is_empty() {
            return Ok((target, merges));
        }
        target = target.substitute_nulls(&subst);
        merges += 1;
    }
}

/// Chase a set of egds over an instance to fixpoint (merging nulls;
/// failing when two distinct constants are forced equal). This is the
/// standalone entry point used by the lens engine to enforce target
/// keys after a forward pass.
pub fn enforce_egds(
    inst: &Instance,
    egds: &[dex_logic::Egd],
) -> Result<Instance, ChaseError> {
    let mut target = inst.clone();
    loop {
        let mut changed = false;
        for egd in egds {
            let (next, merges) = chase_one_egd(egd, target)?;
            target = next;
            changed |= merges > 0;
        }
        if !changed {
            return Ok(target);
        }
    }
}

fn count_new_nulls(before: &NullGen, after: &NullGen) -> usize {
    // NullGen is a counter; expose the difference via fresh ids.
    let mut b = before.clone();
    let mut a = after.clone();
    (a.fresh_id().0 - b.fresh_id().0) as usize
}

/// Fire one tgd for one frontier valuation: extend the valuation with
/// fresh nulls for the existential variables and insert the rhs facts.
fn fire(
    tgd: &StTgd,
    frontier: &Valuation,
    target: &mut Instance,
    gen: &mut NullGen,
) -> Result<(), ChaseError> {
    let mut v = frontier.clone();
    for y in tgd.existential_vars() {
        v.insert(y, gen.fresh());
    }
    for atom in &tgd.rhs {
        let t = atom
            .instantiate(&v)
            .expect("all rhs variables bound after existential extension");
        target.insert(atom.relation.as_str(), t)?;
    }
    Ok(())
}

/// Check that `solution` is universal for `src` under `mapping` by
/// verifying (i) it is a solution, and (ii) it maps homomorphically into
/// `other` for each provided solution. (Used by tests; universality
/// against *all* solutions is a theorem about the chase, checked here
/// against sampled ones.)
pub fn maps_into_all<'a>(
    solution: &Instance,
    others: impl IntoIterator<Item = &'a Instance>,
) -> bool {
    others
        .into_iter()
        .all(|o| dex_relational::is_homomorphic_to(solution, o))
}

/// The set of valuations of `atoms` over `inst` extended by `partial` —
/// re-exported convenience for downstream crates building on chase
/// internals.
pub fn matches_with(
    atoms: &[dex_logic::Atom],
    inst: &Instance,
    partial: &Valuation,
) -> Vec<Valuation> {
    extend_matches(atoms, inst, partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_mapping, Atom};
    use dex_relational::{tuple, RelSchema, Schema, Tuple};

    fn example1_mapping() -> Mapping {
        parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap()
    }

    fn emp_instance(names: &[&str]) -> Instance {
        Instance::with_facts(
            example1_mapping().source().clone(),
            vec![("Emp", names.iter().map(|n| tuple![*n]).collect())],
        )
        .unwrap()
    }

    /// Paper Example 1: the chase produces J* with one fresh null per
    /// employee.
    #[test]
    fn example1_chase_produces_j_star() {
        let m = example1_mapping();
        let src = emp_instance(&["Alice", "Bob"]);
        let res = exchange(&m, &src).unwrap();
        assert_eq!(res.target.fact_count(), 2);
        assert_eq!(res.nulls_created, 2);
        assert_eq!(res.firings, 2);
        // Every tuple pairs a constant employee with a null manager.
        let rel = res.target.relation("Manager").unwrap();
        for t in rel.iter() {
            assert!(t[0].is_const());
            assert!(t[1].is_null());
        }
        // It is a solution and maps into the paper's J1 and J2.
        assert!(m.is_solution(&src, &res.target));
        let j1 = Instance::with_facts(
            m.target().clone(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
            )],
        )
        .unwrap();
        let j2 = Instance::with_facts(
            m.target().clone(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Bob"], tuple!["Bob", "Ted"]],
            )],
        )
        .unwrap();
        assert!(maps_into_all(&res.target, [&j1, &j2]));
    }

    #[test]
    fn standard_chase_skips_satisfied_matches() {
        // Two tgds with the same rhs requirement: the second pass adds
        // nothing under the standard chase.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target T(name, info);
            E1(x) -> T(x, y);
            E2(x) -> T(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["a"]).unwrap();
        src.insert("E2", tuple!["a"]).unwrap();
        let std = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
        assert_eq!(std.target.fact_count(), 1, "second firing suppressed");
        let obl = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(obl.target.fact_count(), 2, "oblivious fires twice");
        // Both are universal solutions: homomorphically equivalent.
        assert!(dex_relational::homomorphism::homomorphically_equivalent(
            &std.target,
            &obl.target
        ));
    }

    #[test]
    fn figure1_university_exchange() {
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(
            m.source().clone(),
            vec![(
                "Takes",
                vec![tuple!["Alice", "DB"], tuple!["Alice", "PL"], tuple!["Bob", "DB"]],
            )],
        )
        .unwrap();
        let res = exchange(&m, &src).unwrap();
        // Three Assgn facts; Student facts: standard chase checks whether
        // ∃z Student(z, name) ∧ Assgn(name, course) already holds per
        // (name, course) pair, so Alice gets ids possibly shared.
        assert_eq!(res.target.relation("Assgn").unwrap().len(), 3);
        assert!(res.target.relation("Student").unwrap().len() >= 2);
        assert!(m.is_solution(&src, &res.target));
    }

    #[test]
    fn target_tgd_chases_to_fixpoint() {
        // R(x) -> S(x); target: S(x) -> T(x).
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a);
            R(x) -> S(x);
            S(x) -> T(x);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])])
            .unwrap();
        let res = exchange(&m, &src).unwrap();
        assert!(res.target.contains("S", &tuple!["v"]));
        assert!(res.target.contains("T", &tuple!["v"]));
    }

    #[test]
    fn egd_merges_nulls() {
        // Emp -> Manager with key(emp): two tgds give Alice two null
        // managers; the key merges them.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target Manager(emp, mgr);
            key Manager(emp);
            E1(x) -> Manager(x, y);
            E2(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["Alice"]).unwrap();
        src.insert("E2", tuple!["Alice"]).unwrap();
        // Oblivious chase to force two distinct nulls first.
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            res.target.relation("Manager").unwrap().len(),
            1,
            "egd merged the two null-managed facts"
        );
        assert!(m.is_solution(&src, &res.target));
    }

    #[test]
    fn egd_resolves_null_to_constant() {
        let m = parse_mapping(
            r#"
            source E(name);
            source Boss(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            E(x) -> Manager(x, y);
            Boss(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E", tuple!["Alice"]).unwrap();
        src.insert("Boss", tuple!["Alice", "Ted"]).unwrap();
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        let rel = res.target.relation("Manager").unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&tuple!["Alice", "Ted"]), "null resolved to Ted");
    }

    #[test]
    fn egd_failure_on_distinct_constants() {
        let m = parse_mapping(
            r#"
            source B1(name, boss);
            source B2(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            B1(x, b) -> Manager(x, b);
            B2(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("B1", tuple!["Alice", "Ted"]).unwrap();
        src.insert("B2", tuple!["Alice", "Bob"]).unwrap();
        let err = exchange(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::EgdFailure { .. }));
    }

    #[test]
    fn non_terminating_target_tgd_hits_limit() {
        // target: S(x) -> S(y) with fresh y each time — not weakly
        // acyclic, never reaches fixpoint under the standard chase?
        // (Standard chase: S(x) -> ∃y S(y) is satisfied once any S fact
        // exists, so it *does* terminate. Use a two-relation ping-pong
        // that keeps inventing values instead.)
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, y);
            S(x, y) -> S(y, z);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])])
            .unwrap();
        let err = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Standard,
                max_rounds: 25,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ChaseError::StepLimitExceeded { .. }));
    }

    #[test]
    fn source_nulls_do_not_collide_with_fresh_ones() {
        let m = example1_mapping();
        let mut src = Instance::empty(m.source().clone());
        src.insert("Emp", Tuple::new(vec![Value::null(0)])).unwrap();
        let res = exchange(&m, &src).unwrap();
        let mut nulls = BTreeSet::new();
        for (_, t) in res.target.facts() {
            t.collect_nulls(&mut nulls);
        }
        assert_eq!(nulls.len(), 2, "source null + one fresh manager null");
    }

    #[test]
    fn parallel_matching_agrees_with_sequential() {
        let m = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            target Child(c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            Father(x, y) -> Child(y);
            Mother(x, y) -> Child(y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        for i in 0..20i64 {
            src.insert("Father", tuple![format!("f{i}").as_str(), format!("c{i}").as_str()])
                .unwrap();
            src.insert("Mother", tuple![format!("m{i}").as_str(), format!("d{i}").as_str()])
                .unwrap();
        }
        let seq = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
        let par = exchange_with(
            &m,
            &src,
            ChaseOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.target, par.target, "parallel matching is deterministic");
        assert_eq!(seq.firings, par.firings);
    }

    #[test]
    fn empty_source_empty_target() {
        let m = example1_mapping();
        let res = exchange(&m, &Instance::empty(m.source().clone())).unwrap();
        assert!(res.target.is_empty());
        assert_eq!(res.nulls_created, 0);
    }

    #[test]
    fn constants_in_tgds_propagate() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, tag);
            R(x) -> S(x, 'imported');
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])])
            .unwrap();
        let res = exchange(&m, &src).unwrap();
        assert!(res.target.contains("S", &tuple!["v", "imported"]));
    }

    #[test]
    fn matches_with_reexport() {
        let _m = example1_mapping();
        let src = emp_instance(&["Alice"]);
        let ms = matches_with(
            &[Atom::vars("Emp", &["x"])],
            &src,
            &Valuation::new(),
        );
        assert_eq!(ms.len(), 1);
        let _ = Schema::with_relations(vec![RelSchema::untyped("X", vec!["a"]).unwrap()]);
    }
}
