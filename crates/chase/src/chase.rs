//! The chase: source instance → universal solution.

use crate::error::ChaseError;
use dex_logic::eval::{
    extend_matches, extend_matches_mode, has_match_mode, match_conjunction_mode, unify_with_tuple,
    MatchMode, Valuation,
};
use dex_logic::{Atom, Mapping, StTgd};
use dex_relational::{Instance, Name, NullGen, NullId, RelationalError, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Which chase to run for the source-to-target phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseVariant {
    /// The **standard** chase: fire a tgd only when its right-hand side
    /// has no satisfying extension yet. Produces fewer redundant nulls.
    #[default]
    Standard,
    /// The **oblivious** chase: fire once for every left-hand-side
    /// match, unconditionally. Simpler and order-insensitive; produces a
    /// canonical (possibly redundant) universal solution.
    Oblivious,
}

/// How tgd premises are matched against instances.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Matcher {
    /// Probe per-position hash indexes, and run the target chase
    /// semi-naively: each round only considers premise matches that
    /// touch at least one tuple inserted in the previous round. This
    /// is the default.
    #[default]
    Indexed,
    /// Full-scan matching with naive (re-match everything each round)
    /// target chase. Kept as the correctness oracle: it produces the
    /// *identical* instance — same tuples, same null allocation order
    /// — as [`Matcher::Indexed`].
    Scan,
}

impl Matcher {
    fn mode(self) -> MatchMode {
        match self {
            Matcher::Indexed => MatchMode::Indexed,
            Matcher::Scan => MatchMode::Scan,
        }
    }
}

/// Chase configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaseOptions {
    /// Source-to-target variant.
    pub variant: ChaseVariant,
    /// Maximum number of rule-firing rounds for the *target* chase
    /// (guards non-terminating target tgds).
    pub max_rounds: usize,
    /// Match the st-tgd premises in parallel (one task per tgd). Pays
    /// off for mappings with several expensive premises; firing stays
    /// sequential and deterministic either way.
    pub parallel: bool,
    /// Matching strategy (indexed semi-naive vs full-scan oracle).
    pub matcher: Matcher,
}

impl Default for ChaseOptions {
    fn default() -> Self {
        ChaseOptions {
            variant: ChaseVariant::Standard,
            max_rounds: 10_000,
            parallel: false,
            matcher: Matcher::default(),
        }
    }
}

/// Counters collected while chasing, for `--stats` style reporting.
#[derive(Clone, Debug, Default)]
pub struct ChaseStats {
    /// Source-to-target firings (phase 1).
    pub st_firings: usize,
    /// Completed target-chase rounds that changed the instance.
    pub rounds: usize,
    /// Target tgd firings in each round (one entry per round started,
    /// including the final no-op round that proves the fixpoint).
    pub firings_per_round: Vec<usize>,
    /// Size of the delta (new tuples since the previous round) seen at
    /// the start of each round. The first entry is the phase-1 output.
    pub delta_sizes: Vec<usize>,
    /// Index structures (re)built across source and target.
    pub index_builds: u64,
    /// Index probes served across source and target.
    pub index_probes: u64,
}

impl std::fmt::Display for ChaseStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "-- chase statistics --")?;
        writeln!(f, "  st-tgd firings:   {}", self.st_firings)?;
        writeln!(f, "  target rounds:    {}", self.rounds)?;
        if !self.firings_per_round.is_empty() {
            writeln!(f, "  firings/round:    {:?}", self.firings_per_round)?;
        }
        if !self.delta_sizes.is_empty() {
            writeln!(f, "  delta sizes:      {:?}", self.delta_sizes)?;
        }
        writeln!(f, "  index builds:     {}", self.index_builds)?;
        writeln!(f, "  index probes:     {}", self.index_probes)?;
        Ok(())
    }
}

/// The outcome of a successful exchange.
#[derive(Clone, Debug)]
pub struct ExchangeResult {
    /// The materialized universal solution.
    pub target: Instance,
    /// Number of labeled nulls invented.
    pub nulls_created: usize,
    /// Number of tgd firings (st + target).
    pub firings: usize,
    /// Counters collected along the way.
    pub stats: ChaseStats,
}

/// Materialize a universal solution for `src` under `mapping` with
/// default options. This is the paper's “how to materialize the best
/// solution for I under M”.
///
/// ```
/// use dex_chase::exchange;
/// use dex_logic::parse_mapping;
/// use dex_relational::{tuple, Instance};
///
/// let m = parse_mapping(r#"
///     source Emp(name);
///     target Manager(emp, mgr);
///     Emp(x) -> Manager(x, y);
/// "#).unwrap();
/// let src = Instance::with_facts(
///     m.source().clone(),
///     vec![("Emp", vec![tuple!["Alice"]])],
/// ).unwrap();
/// let result = exchange(&m, &src).unwrap();
/// assert_eq!(result.nulls_created, 1);    // Alice's unknown manager
/// assert!(m.is_solution(&src, &result.target));
/// ```
pub fn exchange(mapping: &Mapping, src: &Instance) -> Result<ExchangeResult, ChaseError> {
    exchange_with(mapping, src, ChaseOptions::default())
}

/// Materialize with explicit options.
///
/// Both matchers produce the identical result. The target chase runs
/// in *rounds*: every round matches all target tgds against the
/// instance as it stood at the start of the round, sorts the resulting
/// firing obligations canonically, then fires them (re-checking
/// satisfaction against the live instance). Under [`Matcher::Indexed`]
/// a round only re-matches premises against the tuples inserted in
/// the previous round (semi-naive): any older match was already fired
/// or satisfied in an earlier round, so re-deriving it is pure waste —
/// unless an egd substitution rewrote the instance, in which case the
/// next round falls back to a full re-match.
pub fn exchange_with(
    mapping: &Mapping,
    src: &Instance,
    opts: ChaseOptions,
) -> Result<ExchangeResult, ChaseError> {
    let mut target = Instance::empty(mapping.target().clone());
    // Fresh nulls must avoid any nulls already present in the source.
    let mut gen = src.null_gen();
    let mut firings = 0usize;
    let nulls_before = gen.clone();
    let mut stats = ChaseStats::default();
    let mode = opts.matcher.mode();
    let src_stats_before = src.index_stats();
    // Index counters from target snapshots discarded by egd
    // substitution (which rebuilds the instance).
    let mut lost: (u64, u64) = (0, 0);

    // Phase 1: source-to-target. The lhs only mentions source relations,
    // so a single pass over all (tgd, match) pairs suffices. Matching
    // is read-only over the source, so it can fan out across tgds;
    // firing is kept sequential for determinism.
    let all_matches: Vec<(usize, Vec<Valuation>)> = if opts.parallel && mapping.st_tgds().len() > 1
    {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = mapping
                .st_tgds()
                .iter()
                .enumerate()
                .map(|(i, tgd)| {
                    scope.spawn(move |_| (i, match_conjunction_mode(&tgd.lhs, src, mode)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("chase match threads panicked")
    } else {
        mapping
            .st_tgds()
            .iter()
            .enumerate()
            .map(|(i, tgd)| (i, match_conjunction_mode(&tgd.lhs, src, mode)))
            .collect()
    };
    for (i, matches) in all_matches {
        let tgd = &mapping.st_tgds()[i];
        let rhs_vars: BTreeSet<Name> = tgd.rhs_vars().into_iter().collect();
        for m in matches {
            let frontier: Valuation = m
                .into_iter()
                .filter(|(k, _)| rhs_vars.contains(k))
                .collect();
            if opts.variant == ChaseVariant::Standard
                && has_match_mode(&tgd.rhs, &target, &frontier, mode)
            {
                continue;
            }
            fire(tgd, &frontier, &mut target, &mut gen)?;
            firings += 1;
        }
    }
    stats.st_firings = firings;

    // Phase 2: target dependencies to fixpoint.
    let semi_naive = opts.matcher == Matcher::Indexed;
    let mut rounds = 0usize;
    // After an egd substitution the whole instance is effectively new,
    // so the next round must do a full re-match even under Indexed.
    let mut full_rematch = false;
    loop {
        // Tuples inserted since the previous round (round 1 sees the
        // phase-1 output). Drained in both modes so logs stay bounded.
        let delta: BTreeMap<Name, Vec<Tuple>> = target.drain_deltas().into_iter().collect();
        stats.delta_sizes.push(delta.values().map(Vec::len).sum());

        // Collect this round's firing obligations against the
        // round-start instance, then sort them canonically so the
        // firing (and hence null allocation) order is independent of
        // how the matches were enumerated.
        let use_delta = semi_naive && !full_rematch;
        full_rematch = false;
        let mut pending: Vec<(usize, Valuation)> = Vec::new();
        for (ti, tgd) in mapping.target_tgds().iter().enumerate() {
            let rhs_vars: BTreeSet<Name> = tgd.rhs_vars().into_iter().collect();
            let matches: Vec<Valuation> = if use_delta {
                delta_matches(&tgd.lhs, &target, &delta, mode)
            } else {
                match_conjunction_mode(&tgd.lhs, &target, mode)
            };
            for m in matches {
                let frontier: Valuation = m
                    .into_iter()
                    .filter(|(k, _)| rhs_vars.contains(k))
                    .collect();
                pending.push((ti, frontier));
            }
        }
        pending.sort();

        let mut round_firings = 0usize;
        for (ti, frontier) in pending {
            let tgd = &mapping.target_tgds()[ti];
            // Re-check against the live instance: an earlier firing
            // this round (or a semi-naive duplicate derivation of the
            // same match) may already satisfy this obligation.
            if has_match_mode(&tgd.rhs, &target, &frontier, mode) {
                continue;
            }
            fire(tgd, &frontier, &mut target, &mut gen)?;
            round_firings += 1;
        }
        stats.firings_per_round.push(round_firings);
        firings += round_firings;
        let mut changed = round_firings > 0;

        // Target egds: equate values, merging nulls or failing on
        // distinct constants.
        for egd in mapping.target_egds() {
            let (new_target, merges) = chase_one_egd(egd, target, mode, &mut lost)?;
            target = new_target;
            if merges > 0 {
                firings += merges;
                changed = true;
                full_rematch = true;
            }
        }

        if !changed {
            break;
        }
        rounds += 1;
        if rounds > opts.max_rounds {
            return Err(ChaseError::StepLimitExceeded {
                limit: opts.max_rounds,
            });
        }
    }
    stats.rounds = rounds;

    let (src_b, src_p) = src.index_stats();
    let (tgt_b, tgt_p) = target.index_stats();
    stats.index_builds = lost.0 + tgt_b + (src_b - src_stats_before.0);
    stats.index_probes = lost.1 + tgt_p + (src_p - src_stats_before.1);

    let nulls_created = count_new_nulls(&nulls_before, &gen);
    Ok(ExchangeResult {
        target,
        nulls_created,
        firings,
        stats,
    })
}

/// Semi-naive premise matching: every match of `atoms` over `inst`
/// that uses at least one delta tuple, found by pinning each atom
/// occurrence to each delta tuple of its relation and extending the
/// remaining atoms. Matches touching several delta tuples are derived
/// once per touch; the caller's satisfaction re-check deduplicates.
fn delta_matches(
    atoms: &[Atom],
    inst: &Instance,
    delta: &BTreeMap<Name, Vec<Tuple>>,
    mode: MatchMode,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        let Some(new_tuples) = delta.get(&atom.relation) else {
            continue;
        };
        let rest: Vec<Atom> = atoms
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a.clone())
            .collect();
        for t in new_tuples {
            if let Some(seed) = unify_with_tuple(atom, t, &Valuation::new()) {
                out.extend(extend_matches_mode(&rest, inst, &seed, mode));
            }
        }
    }
    out
}

/// Chase one egd to its local fixpoint: repeatedly merge a null with
/// the value it is equated to (one merge at a time, then re-match).
/// Returns the new instance and the number of merges applied. `lost`
/// accumulates the index counters of instance snapshots discarded by
/// substitution.
fn chase_one_egd(
    egd: &dex_logic::Egd,
    mut target: Instance,
    mode: MatchMode,
    lost: &mut (u64, u64),
) -> Result<(Instance, usize), ChaseError> {
    let mut merges = 0usize;
    loop {
        let mut subst: BTreeMap<NullId, Value> = BTreeMap::new();
        'find: for m in match_conjunction_mode(&egd.lhs, &target, mode) {
            for (a, b) in &egd.equalities {
                let va = a.eval(&m).expect("egd variables bound by body");
                let vb = b.eval(&m).expect("egd variables bound by body");
                if va == vb {
                    continue;
                }
                match (&va, &vb) {
                    (Value::Null(n), _) => {
                        subst.insert(*n, vb.clone());
                    }
                    (_, Value::Null(n)) => {
                        subst.insert(*n, va.clone());
                    }
                    _ => {
                        return Err(ChaseError::EgdFailure {
                            egd: egd.to_string(),
                            left: va.to_string(),
                            right: vb.to_string(),
                        });
                    }
                }
                break 'find; // apply one merge at a time
            }
        }
        if subst.is_empty() {
            return Ok((target, merges));
        }
        let (b, p) = target.index_stats();
        lost.0 += b;
        lost.1 += p;
        target = target.substitute_nulls(&subst);
        merges += 1;
    }
}

/// Chase a set of egds over an instance to fixpoint (merging nulls;
/// failing when two distinct constants are forced equal). This is the
/// standalone entry point used by the lens engine to enforce target
/// keys after a forward pass.
pub fn enforce_egds(inst: &Instance, egds: &[dex_logic::Egd]) -> Result<Instance, ChaseError> {
    Ok(enforce_egds_with(inst, egds)?.0)
}

/// Counters from one [`enforce_egds_with`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EgdStats {
    /// Fixpoint rounds taken (including the final no-op round).
    pub rounds: usize,
    /// Null merges applied across all rounds.
    pub merges: usize,
    /// Index structures (re)built while matching egd premises.
    pub index_builds: u64,
    /// Index probes served while matching egd premises.
    pub index_probes: u64,
}

/// Like [`enforce_egds`], but also reports fixpoint rounds, merges, and
/// index build/probe counters — the observability hook behind
/// `Engine::forward_with_stats`.
pub fn enforce_egds_with(
    inst: &Instance,
    egds: &[dex_logic::Egd],
) -> Result<(Instance, EgdStats), ChaseError> {
    // The clone starts with zeroed index counters, so the instance's
    // final counters (plus those lost to substitutions) are exactly
    // this run's work.
    let mut target = inst.clone();
    let mut stats = EgdStats::default();
    let mut lost = (0u64, 0u64);
    loop {
        let mut changed = false;
        for egd in egds {
            let (next, merges) = chase_one_egd(egd, target, MatchMode::default(), &mut lost)?;
            target = next;
            stats.merges += merges;
            changed |= merges > 0;
        }
        stats.rounds += 1;
        if !changed {
            let (builds, probes) = target.index_stats();
            stats.index_builds = lost.0 + builds;
            stats.index_probes = lost.1 + probes;
            return Ok((target, stats));
        }
    }
}

fn count_new_nulls(before: &NullGen, after: &NullGen) -> usize {
    // NullGen is a counter; expose the difference via fresh ids.
    let mut b = before.clone();
    let mut a = after.clone();
    (a.fresh_id().0 - b.fresh_id().0) as usize
}

/// Fire one tgd for one frontier valuation: extend the valuation with
/// fresh nulls for the existential variables and insert the rhs facts,
/// batched per relation and logged as deltas for the semi-naive
/// rounds.
fn fire(
    tgd: &StTgd,
    frontier: &Valuation,
    target: &mut Instance,
    gen: &mut NullGen,
) -> Result<(), ChaseError> {
    let mut v = frontier.clone();
    for y in tgd.existential_vars() {
        v.insert(y, gen.fresh());
    }
    let mut by_rel: BTreeMap<&Name, Vec<Tuple>> = BTreeMap::new();
    for atom in &tgd.rhs {
        let t = atom
            .instantiate(&v)
            .expect("all rhs variables bound after existential extension");
        by_rel.entry(&atom.relation).or_default().push(t);
    }
    for (rel, ts) in by_rel {
        target
            .relation_mut(rel.as_str())
            .ok_or_else(|| RelationalError::UnknownRelation(rel.clone()))?
            .extend_validated_delta(ts)?;
    }
    Ok(())
}

/// Check that `solution` is universal for `src` under `mapping` by
/// verifying (i) it is a solution, and (ii) it maps homomorphically into
/// `other` for each provided solution. (Used by tests; universality
/// against *all* solutions is a theorem about the chase, checked here
/// against sampled ones.)
pub fn maps_into_all<'a>(
    solution: &Instance,
    others: impl IntoIterator<Item = &'a Instance>,
) -> bool {
    others
        .into_iter()
        .all(|o| dex_relational::is_homomorphic_to(solution, o))
}

/// The set of valuations of `atoms` over `inst` extended by `partial` —
/// re-exported convenience for downstream crates building on chase
/// internals.
pub fn matches_with(
    atoms: &[dex_logic::Atom],
    inst: &Instance,
    partial: &Valuation,
) -> Vec<Valuation> {
    extend_matches(atoms, inst, partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_mapping, Atom};
    use dex_relational::{tuple, RelSchema, Schema, Tuple};

    fn example1_mapping() -> Mapping {
        parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap()
    }

    fn emp_instance(names: &[&str]) -> Instance {
        Instance::with_facts(
            example1_mapping().source().clone(),
            vec![("Emp", names.iter().map(|n| tuple![*n]).collect())],
        )
        .unwrap()
    }

    fn scan_opts() -> ChaseOptions {
        ChaseOptions {
            matcher: Matcher::Scan,
            ..Default::default()
        }
    }

    /// Paper Example 1: the chase produces J* with one fresh null per
    /// employee.
    #[test]
    fn example1_chase_produces_j_star() {
        let m = example1_mapping();
        let src = emp_instance(&["Alice", "Bob"]);
        let res = exchange(&m, &src).unwrap();
        assert_eq!(res.target.fact_count(), 2);
        assert_eq!(res.nulls_created, 2);
        assert_eq!(res.firings, 2);
        // Every tuple pairs a constant employee with a null manager.
        let rel = res.target.relation("Manager").unwrap();
        for t in rel.iter() {
            assert!(t[0].is_const());
            assert!(t[1].is_null());
        }
        // It is a solution and maps into the paper's J1 and J2.
        assert!(m.is_solution(&src, &res.target));
        let j1 = Instance::with_facts(
            m.target().clone(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
            )],
        )
        .unwrap();
        let j2 = Instance::with_facts(
            m.target().clone(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Bob"], tuple!["Bob", "Ted"]],
            )],
        )
        .unwrap();
        assert!(maps_into_all(&res.target, [&j1, &j2]));
    }

    #[test]
    fn standard_chase_skips_satisfied_matches() {
        // Two tgds with the same rhs requirement: the second pass adds
        // nothing under the standard chase.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target T(name, info);
            E1(x) -> T(x, y);
            E2(x) -> T(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["a"]).unwrap();
        src.insert("E2", tuple!["a"]).unwrap();
        let std = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
        assert_eq!(std.target.fact_count(), 1, "second firing suppressed");
        let obl = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(obl.target.fact_count(), 2, "oblivious fires twice");
        // Both are universal solutions: homomorphically equivalent.
        assert!(dex_relational::homomorphism::homomorphically_equivalent(
            &std.target,
            &obl.target
        ));
    }

    #[test]
    fn figure1_university_exchange() {
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(
            m.source().clone(),
            vec![(
                "Takes",
                vec![
                    tuple!["Alice", "DB"],
                    tuple!["Alice", "PL"],
                    tuple!["Bob", "DB"],
                ],
            )],
        )
        .unwrap();
        let res = exchange(&m, &src).unwrap();
        // Three Assgn facts; Student facts: standard chase checks whether
        // ∃z Student(z, name) ∧ Assgn(name, course) already holds per
        // (name, course) pair, so Alice gets ids possibly shared.
        assert_eq!(res.target.relation("Assgn").unwrap().len(), 3);
        assert!(res.target.relation("Student").unwrap().len() >= 2);
        assert!(m.is_solution(&src, &res.target));
    }

    #[test]
    fn target_tgd_chases_to_fixpoint() {
        // R(x) -> S(x); target: S(x) -> T(x).
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a);
            R(x) -> S(x);
            S(x) -> T(x);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        let res = exchange(&m, &src).unwrap();
        assert!(res.target.contains("S", &tuple!["v"]));
        assert!(res.target.contains("T", &tuple!["v"]));
    }

    #[test]
    fn egd_merges_nulls() {
        // Emp -> Manager with key(emp): two tgds give Alice two null
        // managers; the key merges them.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target Manager(emp, mgr);
            key Manager(emp);
            E1(x) -> Manager(x, y);
            E2(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["Alice"]).unwrap();
        src.insert("E2", tuple!["Alice"]).unwrap();
        // Oblivious chase to force two distinct nulls first.
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            res.target.relation("Manager").unwrap().len(),
            1,
            "egd merged the two null-managed facts"
        );
        assert!(m.is_solution(&src, &res.target));
    }

    #[test]
    fn egd_resolves_null_to_constant() {
        let m = parse_mapping(
            r#"
            source E(name);
            source Boss(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            E(x) -> Manager(x, y);
            Boss(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E", tuple!["Alice"]).unwrap();
        src.insert("Boss", tuple!["Alice", "Ted"]).unwrap();
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        let rel = res.target.relation("Manager").unwrap();
        assert_eq!(rel.len(), 1);
        assert!(
            rel.contains(&tuple!["Alice", "Ted"]),
            "null resolved to Ted"
        );
    }

    #[test]
    fn egd_failure_on_distinct_constants() {
        let m = parse_mapping(
            r#"
            source B1(name, boss);
            source B2(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            B1(x, b) -> Manager(x, b);
            B2(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("B1", tuple!["Alice", "Ted"]).unwrap();
        src.insert("B2", tuple!["Alice", "Bob"]).unwrap();
        let err = exchange(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::EgdFailure { .. }));
    }

    #[test]
    fn non_terminating_target_tgd_hits_limit() {
        // target: S(x) -> S(y) with fresh y each time — not weakly
        // acyclic, never reaches fixpoint under the standard chase?
        // (Standard chase: S(x) -> ∃y S(y) is satisfied once any S fact
        // exists, so it *does* terminate. Use a two-relation ping-pong
        // that keeps inventing values instead.)
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, y);
            S(x, y) -> S(y, z);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        for matcher in [Matcher::Indexed, Matcher::Scan] {
            let err = exchange_with(
                &m,
                &src,
                ChaseOptions {
                    variant: ChaseVariant::Standard,
                    max_rounds: 25,
                    matcher,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(matches!(err, ChaseError::StepLimitExceeded { .. }));
        }
    }

    #[test]
    fn source_nulls_do_not_collide_with_fresh_ones() {
        let m = example1_mapping();
        let mut src = Instance::empty(m.source().clone());
        src.insert("Emp", Tuple::new(vec![Value::null(0)])).unwrap();
        let res = exchange(&m, &src).unwrap();
        let mut nulls = BTreeSet::new();
        for (_, t) in res.target.facts() {
            t.collect_nulls(&mut nulls);
        }
        assert_eq!(nulls.len(), 2, "source null + one fresh manager null");
    }

    #[test]
    fn parallel_matching_agrees_with_sequential() {
        let m = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            target Child(c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            Father(x, y) -> Child(y);
            Mother(x, y) -> Child(y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        for i in 0..20i64 {
            src.insert(
                "Father",
                tuple![format!("f{i}").as_str(), format!("c{i}").as_str()],
            )
            .unwrap();
            src.insert(
                "Mother",
                tuple![format!("m{i}").as_str(), format!("d{i}").as_str()],
            )
            .unwrap();
        }
        let seq = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
        for matcher in [Matcher::Indexed, Matcher::Scan] {
            let par = exchange_with(
                &m,
                &src,
                ChaseOptions {
                    parallel: true,
                    matcher,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq.target, par.target, "parallel matching is deterministic");
            assert_eq!(seq.firings, par.firings);
        }
    }

    /// The acceptance property of the refactor: the indexed semi-naive
    /// chase produces the literal instance (same tuples, same null
    /// allocation order) as the full-scan naive oracle.
    #[test]
    fn indexed_semi_naive_equals_scan_oracle() {
        let cases = [
            // Chained target tgds.
            (
                r#"
                source R(a);
                target S(a);
                target T(a, b);
                target U(b);
                R(x) -> S(x);
                S(x) -> T(x, y);
                T(x, y) -> U(y);
                "#,
                vec![("R", vec![tuple!["a"], tuple!["b"], tuple!["c"]])],
            ),
            // Target join premise.
            (
                r#"
                source E(p, c);
                target P(p, c);
                target G(a, c);
                E(x, y) -> P(x, y);
                P(x, y) & P(y, z) -> G(x, z);
                "#,
                vec![(
                    "E",
                    vec![tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]],
                )],
            ),
            // Egds interleaved with target tgds.
            (
                r#"
                source E1(name);
                source E2(name);
                target Manager(emp, mgr);
                target Peer(mgr);
                key Manager(emp);
                E1(x) -> Manager(x, y);
                E2(x) -> Manager(x, y);
                Manager(x, y) -> Peer(y);
                "#,
                vec![
                    ("E1", vec![tuple!["Alice"], tuple!["Bob"]]),
                    ("E2", vec![tuple!["Alice"], tuple!["Carol"]]),
                ],
            ),
        ];
        for (text, facts) in cases {
            let m = parse_mapping(text).unwrap();
            for variant in [ChaseVariant::Standard, ChaseVariant::Oblivious] {
                let src = Instance::with_facts(m.source().clone(), facts.clone()).unwrap();
                let indexed = exchange_with(
                    &m,
                    &src,
                    ChaseOptions {
                        variant,
                        ..Default::default()
                    },
                )
                .unwrap();
                let scan = exchange_with(
                    &m,
                    &src,
                    ChaseOptions {
                        variant,
                        matcher: Matcher::Scan,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    indexed.target, scan.target,
                    "literal equality, {variant:?}: {text}"
                );
                assert_eq!(indexed.firings, scan.firings);
                assert_eq!(indexed.nulls_created, scan.nulls_created);
            }
        }
    }

    /// Regression: once the delta runs dry the semi-naive loop exits
    /// without another full re-match, and the recorded delta sizes
    /// shrink to zero.
    #[test]
    fn empty_delta_exits_fixpoint() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a);
            R(x) -> S(x);
            S(x) -> T(x);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("R", vec![tuple!["u"], tuple!["v"]])],
        )
        .unwrap();
        let res = exchange(&m, &src).unwrap();
        let stats = &res.stats;
        assert_eq!(stats.st_firings, 2);
        // Round 1: delta = 2 S-facts, fires 2 T-facts. Round 2: delta =
        // 2 T-facts, nothing left to fire — the fixpoint round.
        assert_eq!(stats.delta_sizes, vec![2, 2]);
        assert_eq!(stats.firings_per_round, vec![2, 0]);
        assert_eq!(stats.rounds, 1);
        assert!(stats.index_probes > 0, "indexed mode probed");
        // Scan oracle: same instance, no probes.
        let scan = exchange_with(&m, &src, scan_opts()).unwrap();
        assert_eq!(scan.target, res.target);
        assert_eq!(scan.stats.index_probes, 0);
    }

    #[test]
    fn empty_source_empty_target() {
        let m = example1_mapping();
        let res = exchange(&m, &Instance::empty(m.source().clone())).unwrap();
        assert!(res.target.is_empty());
        assert_eq!(res.nulls_created, 0);
    }

    #[test]
    fn constants_in_tgds_propagate() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, tag);
            R(x) -> S(x, 'imported');
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        let res = exchange(&m, &src).unwrap();
        assert!(res.target.contains("S", &tuple!["v", "imported"]));
    }

    #[test]
    fn matches_with_reexport() {
        let _m = example1_mapping();
        let src = emp_instance(&["Alice"]);
        let ms = matches_with(&[Atom::vars("Emp", &["x"])], &src, &Valuation::new());
        assert_eq!(ms.len(), 1);
        let _ = Schema::with_relations(vec![RelSchema::untyped("X", vec!["a"]).unwrap()]);
    }
}
