//! The chase: source instance → universal solution.

use crate::error::ChaseError;
use dex_logic::eval::{
    extend_matches, extend_matches_mode, has_match_mode, match_conjunction_mode, seed_conjunction,
    unify_with_tuple, MatchMode, Valuation,
};
use dex_logic::{Atom, Mapping, StTgd, Term};
use dex_relational::{
    hash_values, ExhaustionReport, Governor, Instance, Name, NullGen, NullId, RelationalError,
    TripReason, Tuple, Value,
};
use serde::{Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet};

/// Which chase to run for the source-to-target phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseVariant {
    /// The **standard** chase: fire a tgd only when its right-hand side
    /// has no satisfying extension yet. Produces fewer redundant nulls.
    #[default]
    Standard,
    /// The **oblivious** chase: fire once for every left-hand-side
    /// match, unconditionally. Simpler and order-insensitive; produces a
    /// canonical (possibly redundant) universal solution.
    Oblivious,
}

/// How tgd premises are matched against instances.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Matcher {
    /// Probe per-position hash indexes, and run the target chase
    /// semi-naively: each round only considers premise matches that
    /// touch at least one tuple inserted in the previous round. This
    /// is the default.
    #[default]
    Indexed,
    /// Full-scan matching with naive (re-match everything each round)
    /// target chase. Kept as the correctness oracle: it produces the
    /// *identical* instance — same tuples, same null allocation order
    /// — as [`Matcher::Indexed`].
    Scan,
}

impl Matcher {
    fn mode(self) -> MatchMode {
        match self {
            Matcher::Indexed => MatchMode::Indexed,
            Matcher::Scan => MatchMode::Scan,
        }
    }
}

/// Chase configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaseOptions {
    /// Source-to-target variant.
    pub variant: ChaseVariant,
    /// Maximum number of rule-firing rounds for the *target* chase
    /// (guards non-terminating target tgds).
    pub max_rounds: usize,
    /// Match the st-tgd premises in parallel (one task per tgd). Pays
    /// off for mappings with several expensive premises; firing stays
    /// sequential and deterministic either way.
    pub parallel: bool,
    /// Matching strategy (indexed semi-naive vs full-scan oracle).
    pub matcher: Matcher,
    /// Worker threads for sharded premise matching. `1` (the default)
    /// matches on the calling thread; `0` resolves to the machine's
    /// available parallelism. With more than one thread, each round's
    /// matching work is partitioned across scoped worker threads over
    /// the shared read-only columnar snapshot — firing and null
    /// invention stay sequential, so every thread count produces the
    /// identical instance (same tuples, same null allocation order).
    /// The `DEX_TEST_THREADS` environment variable overrides the
    /// default; CI uses it to push the whole suite through the
    /// parallel matcher.
    pub threads: usize,
}

impl Default for ChaseOptions {
    fn default() -> Self {
        ChaseOptions {
            variant: ChaseVariant::Standard,
            max_rounds: 10_000,
            parallel: false,
            matcher: Matcher::default(),
            threads: default_threads(),
        }
    }
}

static DEFAULT_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// The default matcher thread count: the value installed by
/// [`set_default_threads`], else `DEX_TEST_THREADS` when set and
/// parseable, else 1 (sequential).
fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var("DEX_TEST_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1)
    })
}

/// Install the process-wide default for [`ChaseOptions::threads`]
/// (takes precedence over `DEX_TEST_THREADS`). Only the first caller
/// wins, and only if no `ChaseOptions::default()` has been built yet;
/// returns whether the value was applied. This is the hook behind
/// `dexcli --threads N`.
pub fn set_default_threads(n: usize) -> bool {
    DEFAULT_THREADS.set(n).is_ok()
}

impl ChaseOptions {
    /// The concrete matcher thread count: [`ChaseOptions::threads`],
    /// with `0` resolved to the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Counters collected while chasing, for `--stats` style reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Source-to-target firings (phase 1).
    pub st_firings: usize,
    /// Completed target-chase rounds that changed the instance.
    pub rounds: usize,
    /// Target tgd firings in each round (one entry per round started,
    /// including the final no-op round that proves the fixpoint).
    pub firings_per_round: Vec<usize>,
    /// Size of the delta (new tuples since the previous round) seen at
    /// the start of each round. The first entry is the phase-1 output.
    pub delta_sizes: Vec<usize>,
    /// Index structures (re)built across source and target.
    pub index_builds: u64,
    /// Index probes served across source and target.
    pub index_probes: u64,
}

/// Version tag of the [`ChaseStats`] JSON wire format. The stats
/// object rides the `dexcli --stats --format json` stderr channel and
/// `dexd` chase responses; bump this on any incompatible reshaping so
/// clients can dispatch on `"v"`.
pub const CHASE_STATS_WIRE_V: u64 = 1;

// Stable versioned wire shape: a leading `"v"` tag, counts widened to
// u64 so the format is independent of the host's `usize`. Field names
// are load-bearing; goldens pin them.
#[derive(Serialize)]
struct ChaseStatsWire {
    v: u64,
    st_firings: u64,
    rounds: u64,
    firings_per_round: Vec<u64>,
    delta_sizes: Vec<u64>,
    index_builds: u64,
    index_probes: u64,
}

impl Serialize for ChaseStats {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let widen = |v: &[usize]| v.iter().map(|&n| n as u64).collect();
        ChaseStatsWire {
            v: CHASE_STATS_WIRE_V,
            st_firings: self.st_firings as u64,
            rounds: self.rounds as u64,
            firings_per_round: widen(&self.firings_per_round),
            delta_sizes: widen(&self.delta_sizes),
            index_builds: self.index_builds,
            index_probes: self.index_probes,
        }
        .serialize(s)
    }
}

impl std::fmt::Display for ChaseStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "-- chase statistics --")?;
        writeln!(f, "  st-tgd firings:   {}", self.st_firings)?;
        writeln!(f, "  target rounds:    {}", self.rounds)?;
        if !self.firings_per_round.is_empty() {
            writeln!(f, "  firings/round:    {:?}", self.firings_per_round)?;
        }
        if !self.delta_sizes.is_empty() {
            writeln!(f, "  delta sizes:      {:?}", self.delta_sizes)?;
        }
        writeln!(f, "  index builds:     {}", self.index_builds)?;
        writeln!(f, "  index probes:     {}", self.index_probes)?;
        Ok(())
    }
}

/// The outcome of a successful exchange.
#[derive(Clone, Debug)]
pub struct ExchangeResult {
    /// The materialized universal solution.
    pub target: Instance,
    /// Number of labeled nulls invented.
    pub nulls_created: usize,
    /// Number of tgd firings (st + target).
    pub firings: usize,
    /// Counters collected along the way.
    pub stats: ChaseStats,
}

/// A governed run that stopped early: the consistent prefix computed
/// so far plus a report of which budget tripped and what was consumed.
///
/// The partial instance is always a **valid chase prefix**. Phase-1
/// trips happen between whole firings. Phase-2 trips either happen at
/// a round boundary (after that round's egds were enforced) or roll
/// the uncommitted round back to its start via the delta log, so the
/// instance is exactly the state after some number of complete,
/// committed, egd-enforced rounds — never a torn write, never a
/// silently truncated firing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exhausted {
    /// The consistent prefix instance.
    pub partial: Instance,
    /// Which budget tripped and the consumption so far.
    pub report: ExhaustionReport,
    /// Chase counters up to the trip.
    pub stats: ChaseStats,
}

/// The outcome of a governed exchange: either a fixpoint or a
/// consistent prefix with an exhaustion report.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ChaseOutcome {
    /// The chase reached a fixpoint within budget.
    Complete(ExchangeResult),
    /// A budget or cancellation stopped the chase early.
    Exhausted(Exhausted),
}

impl ChaseOutcome {
    /// Collapse into a plain `Result`, turning exhaustion into
    /// [`ChaseError::Exhausted`] (the partial instance rides along in
    /// the boxed payload).
    pub fn into_result(self) -> Result<ExchangeResult, ChaseError> {
        match self {
            ChaseOutcome::Complete(r) => Ok(r),
            ChaseOutcome::Exhausted(e) => Err(ChaseError::Exhausted(Box::new(e))),
        }
    }
}

/// A committed chase boundary, handed to a [`CheckpointSink`] while the
/// instance is still borrowed by the running chase.
///
/// Round 0 is the phase-1 output (the base state before any target
/// round); round `r ≥ 1` is the state after `r` committed, egd-enforced
/// target rounds. When `delta` is `Some`, the round's entire effect was
/// the listed insertions (a WAL can log just those); `None` means the
/// round rewrote the instance wholesale (an egd substitution merged
/// nulls), so durable sinks must record the full `target`.
#[derive(Debug)]
pub struct Checkpoint<'a> {
    /// Committed round number (0 = phase-1 output).
    pub round: u64,
    /// Null-generator position: the id the next fresh null will take.
    /// Restoring it is what makes a resumed run allocate the exact
    /// same nulls as an uninterrupted one.
    pub next_null: u64,
    /// The instance as of this boundary.
    pub target: &'a Instance,
    /// The round's insertions per relation (name order), or `None`
    /// when the round is not representable as insertions.
    pub delta: Option<Vec<(Name, Vec<Tuple>)>>,
    /// True on the final checkpoint of a run that reached fixpoint.
    pub complete: bool,
}

/// Receives every committed chase boundary from
/// [`exchange_checkpointed`] / [`resume_exchange`]. An error return
/// aborts the chase with [`ChaseError::Checkpoint`]: a run that cannot
/// persist its progress must not pretend it did.
pub trait CheckpointSink {
    /// Called once per committed boundary, in round order.
    fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String>;
}

/// A chase boundary loaded back from durable storage, from which
/// [`resume_exchange`] continues phase 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeState {
    /// The instance at the checkpointed boundary.
    pub target: Instance,
    /// Null-generator position at the boundary.
    pub next_null: u64,
    /// Committed rounds up to the boundary (0 = phase-1 output).
    pub rounds: u64,
}

/// Materialize a universal solution for `src` under `mapping` with
/// default options. This is the paper's “how to materialize the best
/// solution for I under M”.
///
/// ```
/// use dex_chase::exchange;
/// use dex_logic::parse_mapping;
/// use dex_relational::{tuple, Instance};
///
/// let m = parse_mapping(r#"
///     source Emp(name);
///     target Manager(emp, mgr);
///     Emp(x) -> Manager(x, y);
/// "#).unwrap();
/// let src = Instance::with_facts(
///     m.source().clone(),
///     vec![("Emp", vec![tuple!["Alice"]])],
/// ).unwrap();
/// let result = exchange(&m, &src).unwrap();
/// assert_eq!(result.nulls_created, 1);    // Alice's unknown manager
/// assert!(m.is_solution(&src, &result.target));
/// ```
pub fn exchange(mapping: &Mapping, src: &Instance) -> Result<ExchangeResult, ChaseError> {
    exchange_with(mapping, src, ChaseOptions::default())
}

/// Materialize with explicit options.
///
/// Both matchers produce the identical result. The target chase runs
/// in *rounds*: every round matches all target tgds against the
/// instance as it stood at the start of the round, sorts the resulting
/// firing obligations canonically, then fires them (re-checking
/// satisfaction against the live instance). Under [`Matcher::Indexed`]
/// a round only re-matches premises against the tuples inserted in
/// the previous round (semi-naive): any older match was already fired
/// or satisfied in an earlier round, so re-deriving it is pure waste —
/// unless an egd substitution rewrote the instance, in which case the
/// next round falls back to a full re-match.
pub fn exchange_with(
    mapping: &Mapping,
    src: &Instance,
    opts: ChaseOptions,
) -> Result<ExchangeResult, ChaseError> {
    exchange_governed(mapping, src, opts, &Governor::unlimited())?.into_result()
}

/// Materialize under a resource budget and/or a cancellation token.
///
/// Identical to [`exchange_with`] on the untripped path (same tuples,
/// same null order, same stats), but checks the governor at every step
/// boundary: between phase-1 firings, between phase-2 match batches and
/// firings, and at committed round boundaries. On a trip it returns
/// [`ChaseOutcome::Exhausted`] carrying a valid chase-prefix instance
/// (see [`Exhausted`] for the atomicity argument) instead of an error.
///
/// `opts.max_rounds` is enforced in addition to any round cap in the
/// governor's budget, with the same semantics either way.
pub fn exchange_governed(
    mapping: &Mapping,
    src: &Instance,
    opts: ChaseOptions,
    gov: &Governor,
) -> Result<ChaseOutcome, ChaseError> {
    run_exchange(mapping, Start::Fresh(src), opts, gov, None)
}

/// Like [`exchange_governed`], but reports every committed chase
/// boundary (phase-1 output, then each egd-enforced target round, then
/// the fixpoint) to `sink`, so the run's progress can be persisted and
/// later continued with [`resume_exchange`]. With a sink that does
/// nothing the result is identical to [`exchange_governed`] — same
/// tuples, same null order, same stats.
pub fn exchange_checkpointed(
    mapping: &Mapping,
    src: &Instance,
    opts: ChaseOptions,
    gov: &Governor,
    sink: &mut dyn CheckpointSink,
) -> Result<ChaseOutcome, ChaseError> {
    run_exchange(mapping, Start::Fresh(src), opts, gov, Some(sink))
}

/// Continue phase 2 of a chase from a committed boundary previously
/// captured through a [`CheckpointSink`] (possibly in another process).
///
/// The resumed run needs no source instance: phase 1 is already folded
/// into `state.target`, and target tgds/egds mention only target
/// relations. Its first round does a full re-match (the semi-naive
/// delta died with the original process), after which the
/// indexed-equals-scan theorem guarantees the continuation fires the
/// same obligations in the same order as the uninterrupted run — so
/// the final instance is literally identical, nulls included.
///
/// `state.rounds` is preloaded into `gov` and into the `max_rounds`
/// accounting: round caps bound *total* rounds across the original and
/// resumed runs. Stats and the exhaustion report likewise count total
/// rounds, but firings/index counters cover only the resumed process.
pub fn resume_exchange(
    mapping: &Mapping,
    state: ResumeState,
    opts: ChaseOptions,
    gov: &Governor,
    sink: Option<&mut dyn CheckpointSink>,
) -> Result<ChaseOutcome, ChaseError> {
    run_exchange(mapping, Start::Resume(state), opts, gov, sink)
}

/// Where [`run_exchange`] begins: a fresh source-to-target exchange, or
/// the middle of phase 2 restored from a checkpoint.
enum Start<'a> {
    Fresh(&'a Instance),
    Resume(ResumeState),
}

fn run_exchange(
    mapping: &Mapping,
    start: Start<'_>,
    opts: ChaseOptions,
    gov: &Governor,
    mut sink: Option<&mut dyn CheckpointSink>,
) -> Result<ChaseOutcome, ChaseError> {
    // Fresh runs start phase 1 below; resumed runs restore the target,
    // the null generator, and the round count, and force their first
    // round to re-match in full (the delta log is process-local).
    let (src_opt, mut target, mut gen, mut rounds, mut full_rematch) = match start {
        Start::Fresh(src) => {
            // Fresh nulls must avoid nulls already in the source.
            let gen = src.null_gen();
            (
                Some(src),
                Instance::empty(mapping.target().clone()),
                gen,
                0usize,
                false,
            )
        }
        Start::Resume(state) => {
            gov.note_rounds(state.rounds);
            (
                None,
                state.target,
                NullGen::starting_at(state.next_null),
                state.rounds as usize,
                true,
            )
        }
    };
    let mut firings = 0usize;
    let nulls_before = gen.clone();
    let mut stats = ChaseStats::default();
    let mode = opts.matcher.mode();
    let src_stats_before = src_opt.map(Instance::index_stats).unwrap_or((0, 0));
    // Index counters from target snapshots discarded by egd
    // substitution (which rebuilds the instance).
    let mut lost: (u64, u64) = (0, 0);

    // On a budget trip: finalize the stats counters and hand back the
    // prefix instance with the governor's report.
    macro_rules! exhaust {
        ($reason:expr, $target:expr) => {{
            let target = $target;
            stats.rounds = rounds;
            let (src_b, src_p) = src_opt.map(Instance::index_stats).unwrap_or((0, 0));
            let (tgt_b, tgt_p) = target.index_stats();
            stats.index_builds = lost.0 + tgt_b + (src_b - src_stats_before.0);
            stats.index_probes = lost.1 + tgt_p + (src_p - src_stats_before.1);
            return Ok(ChaseOutcome::Exhausted(Exhausted {
                partial: target,
                report: gov.report($reason),
                stats,
            }));
        }};
    }

    // Report a committed boundary to the sink, if one is attached. A
    // sink failure aborts the run: the chase must not outrun what it
    // claims to have persisted.
    macro_rules! checkpoint {
        ($round:expr, $delta:expr, $complete:expr) => {
            if let Some(s) = sink.as_deref_mut() {
                s.on_checkpoint(Checkpoint {
                    round: $round,
                    next_null: gen.peek_next(),
                    target: &target,
                    delta: $delta,
                    complete: $complete,
                })
                .map_err(ChaseError::Checkpoint)?;
            }
        };
    }

    // Phase 1: source-to-target (skipped when resuming — its output is
    // already folded into the restored target). The lhs only mentions
    // source relations, so a single pass over all (tgd, match) pairs
    // suffices. Matching is read-only over the source, so it can fan
    // out across tgds; firing is kept sequential for determinism.
    let nthreads = opts.effective_threads();
    if let Some(src) = src_opt {
        // `crossbeam::scope` / `join` only err when a worker panicked;
        // re-raising that panic is the contract — matching has no
        // partial-result recovery at this level.
        #[allow(clippy::expect_used)]
        let all_matches: Vec<(usize, Vec<Valuation>)> = if nthreads > 1 {
            // Shard each tgd's premise matching across worker threads.
            // The seed-order merge inside `match_conjunction_sharded`
            // reproduces the sequential enumeration exactly, so the
            // firing (and null) order below is thread-count-invariant.
            mapping
                .st_tgds()
                .iter()
                .enumerate()
                .map(|(i, tgd)| (i, match_conjunction_sharded(&tgd.lhs, src, mode, nthreads)))
                .collect()
        } else if opts.parallel && mapping.st_tgds().len() > 1 {
            crossbeam::scope(|scope| {
                let handles: Vec<_> = mapping
                    .st_tgds()
                    .iter()
                    .enumerate()
                    .map(|(i, tgd)| {
                        scope.spawn(move |_| (i, match_conjunction_mode(&tgd.lhs, src, mode)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chase match thread panicked"))
                    .collect()
            })
            .expect("chase match threads panicked")
        } else {
            mapping
                .st_tgds()
                .iter()
                .enumerate()
                .map(|(i, tgd)| (i, match_conjunction_mode(&tgd.lhs, src, mode)))
                .collect()
        };
        for (i, matches) in all_matches {
            let tgd = &mapping.st_tgds()[i];
            let rhs_vars: BTreeSet<Name> = tgd.rhs_vars().into_iter().collect();
            for m in matches {
                // Each firing is an atomic step: a trip between firings
                // hands back a prefix of whole phase-1 chase steps.
                if let Err(reason) = gov.check() {
                    exhaust!(reason, target);
                }
                let frontier: Valuation = m
                    .into_iter()
                    .filter(|(k, _)| rhs_vars.contains(k))
                    .collect();
                if opts.variant == ChaseVariant::Standard
                    && has_match_mode(&tgd.rhs, &target, &frontier, mode)
                {
                    continue;
                }
                fire(tgd, &frontier, &mut target, &mut gen, gov)?;
                firings += 1;
            }
        }
        stats.st_firings = firings;
        // Round 0: the phase-1 output is the base state every later
        // delta record builds on, so it goes to the sink in full.
        checkpoint!(0, None, false);
    }

    // Phase 2: target dependencies to fixpoint.
    let semi_naive = opts.matcher == Matcher::Indexed;
    loop {
        // Tuples inserted since the previous round (round 1 sees the
        // phase-1 output). Drained in both modes so logs stay bounded.
        let delta: BTreeMap<Name, Vec<Tuple>> = target.drain_deltas().into_iter().collect();
        stats.delta_sizes.push(delta.values().map(Vec::len).sum());

        // Collect this round's firing obligations against the
        // round-start instance, then sort them canonically so the
        // firing (and hence null allocation) order is independent of
        // how the matches were enumerated.
        let use_delta = semi_naive && !full_rematch;
        full_rematch = false;
        let mut pending: Vec<(usize, Valuation)> = Vec::new();
        for (ti, tgd) in mapping.target_tgds().iter().enumerate() {
            // Matching is read-only, so a trip here returns the intact
            // round-start instance (the last committed boundary).
            if let Err(reason) = gov.check() {
                exhaust!(reason, target);
            }
            let rhs_vars: BTreeSet<Name> = tgd.rhs_vars().into_iter().collect();
            let matches: Vec<Valuation> = if use_delta {
                delta_matches_sharded(&tgd.lhs, &target, &delta, mode, nthreads)
            } else {
                match_conjunction_sharded(&tgd.lhs, &target, mode, nthreads)
            };
            for m in matches {
                let frontier: Valuation = m
                    .into_iter()
                    .filter(|(k, _)| rhs_vars.contains(k))
                    .collect();
                pending.push((ti, frontier));
            }
        }
        pending.sort();

        let mut round_firings = 0usize;
        for (ti, frontier) in pending {
            // A trip mid-round rolls the round back to its start: the
            // delta log holds exactly this round's insertions, so the
            // rollback restores the last committed boundary.
            if let Err(reason) = gov.check() {
                rollback_round(&mut target);
                exhaust!(reason, target);
            }
            let tgd = &mapping.target_tgds()[ti];
            // Re-check against the live instance: an earlier firing
            // this round (or a semi-naive duplicate derivation of the
            // same match) may already satisfy this obligation.
            if has_match_mode(&tgd.rhs, &target, &frontier, mode) {
                continue;
            }
            fire(tgd, &frontier, &mut target, &mut gen, gov)?;
            round_firings += 1;
        }
        stats.firings_per_round.push(round_firings);
        firings += round_firings;
        let mut changed = round_firings > 0;

        // Target egds: equate values, merging nulls or failing on
        // distinct constants. No budget checks inside this block: egd
        // enforcement provably terminates (each merge eliminates a
        // labeled null), and skipping checks here is what guarantees
        // every phase-2 partial is a fully egd-enforced boundary. The
        // deadline overshoot is bounded by one round's egd work.
        let mut round_merged = false;
        for egd in mapping.target_egds() {
            let (new_target, merges) = chase_one_egd(egd, target, mode, &mut lost)?;
            target = new_target;
            if merges > 0 {
                firings += merges;
                changed = true;
                full_rematch = true;
                round_merged = true;
            }
        }

        if !changed {
            // Fixpoint: mark the last committed boundary complete so a
            // durable sink can distinguish "done" from "interrupted".
            checkpoint!(rounds as u64, Some(Vec::new()), true);
            break;
        }
        rounds += 1;
        gov.note_round();
        // The round is committed (firings + egds): hand it to the sink
        // *before* the budget checks below, so even a round that trips
        // the governor is durably resumable. Substitution wiped the
        // delta logs on merge rounds, so those checkpoint in full.
        let cp_delta = if round_merged {
            None
        } else {
            Some(target.peek_deltas())
        };
        checkpoint!(rounds as u64, cp_delta, false);
        if rounds > opts.max_rounds || gov.round_limit_hit() {
            exhaust!(TripReason::Rounds, target);
        }
        if let Err(reason) = gov.check() {
            exhaust!(reason, target);
        }
    }
    stats.rounds = rounds;

    let (src_b, src_p) = src_opt.map(Instance::index_stats).unwrap_or((0, 0));
    let (tgt_b, tgt_p) = target.index_stats();
    stats.index_builds = lost.0 + tgt_b + (src_b - src_stats_before.0);
    stats.index_probes = lost.1 + tgt_p + (src_p - src_stats_before.1);

    let nulls_created = count_new_nulls(&nulls_before, &gen);
    Ok(ChaseOutcome::Complete(ExchangeResult {
        target,
        nulls_created,
        firings,
        stats,
    }))
}

/// Match a conjunction with its seeds sharded across `nthreads`
/// crossbeam worker threads (sequentially when `nthreads <= 1`).
///
/// [`seed_conjunction`] pins the search's first atom to each candidate
/// row; seeds are dealt round-robin to shards, each worker extends its
/// seeds against the shared read-only columnar snapshot, and the
/// per-seed blocks are merged back in seed order. The output is
/// therefore identical — same matches, same order — to
/// [`match_conjunction_mode`] on one thread, which keeps phase-1
/// firing order (and hence null invention) thread-count-invariant.
fn match_conjunction_sharded(
    atoms: &[Atom],
    inst: &Instance,
    mode: MatchMode,
    nthreads: usize,
) -> Vec<Valuation> {
    let seeded = match seed_conjunction(atoms, inst, mode) {
        Some(s) if nthreads > 1 => s,
        _ => return match_conjunction_mode(atoms, inst, mode),
    };
    let rest = &seeded.rest;
    let seeds = &seeded.seeds;
    if seeds.len() <= 1 {
        return seeds
            .iter()
            .flat_map(|s| extend_matches_mode(rest, inst, s, mode))
            .collect();
    }
    let shards = nthreads.min(seeds.len());
    // `crossbeam::scope` / `join` only err when a worker panicked;
    // re-raising that panic is the contract — matching has no
    // partial-result recovery at this level.
    #[allow(clippy::expect_used)]
    let mut blocks: Vec<(usize, Vec<Valuation>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut k = s;
                    while k < seeds.len() {
                        out.push((k, extend_matches_mode(rest, inst, &seeds[k], mode)));
                        k += shards;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chase match thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("chase match threads panicked");
    blocks.sort_unstable_by_key(|(k, _)| *k);
    blocks.into_iter().flat_map(|(_, ms)| ms).collect()
}

/// Semi-naive matching with the round's delta partitioned by row hash
/// across `nthreads` crossbeam worker threads (sequentially when
/// `nthreads <= 1`). Each worker runs [`delta_matches`] over its
/// sub-delta against the shared read-only snapshot; sub-deltas keep
/// per-relation delta order, and shard outputs are concatenated in
/// (shard, delta-order) order. The union is the same match multiset as
/// the sequential pass — the caller's canonical sort of the firing
/// list then pins the same firing (and null invention) order.
///
/// `crossbeam::scope` / `join` only err when a worker panicked;
/// re-raising that panic is the contract — matching has no
/// partial-result recovery at this level.
#[allow(clippy::expect_used)]
fn delta_matches_sharded(
    atoms: &[Atom],
    inst: &Instance,
    delta: &BTreeMap<Name, Vec<Tuple>>,
    mode: MatchMode,
    nthreads: usize,
) -> Vec<Valuation> {
    let total: usize = delta.values().map(Vec::len).sum();
    if nthreads <= 1 || total < 2 {
        return delta_matches(atoms, inst, delta, mode);
    }
    let shards = nthreads.min(total);
    let mut sub: Vec<BTreeMap<Name, Vec<Tuple>>> = vec![BTreeMap::new(); shards];
    for (name, tuples) in delta {
        for t in tuples {
            let s = (hash_values(t.iter()) as usize) % shards;
            sub[s].entry(name.clone()).or_default().push(t.clone());
        }
    }
    crossbeam::scope(|scope| {
        let handles: Vec<_> = sub
            .iter()
            .map(|shard| scope.spawn(move |_| delta_matches(atoms, inst, shard, mode)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chase match thread panicked"))
            .collect()
    })
    .expect("chase match threads panicked")
}

/// Semi-naive premise matching: every match of `atoms` over `inst`
/// that uses at least one delta tuple, found by pinning each atom
/// occurrence to each delta tuple of its relation and extending the
/// remaining atoms. Matches touching several delta tuples are derived
/// once per touch; the caller's satisfaction re-check deduplicates.
fn delta_matches(
    atoms: &[Atom],
    inst: &Instance,
    delta: &BTreeMap<Name, Vec<Tuple>>,
    mode: MatchMode,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        let Some(new_tuples) = delta.get(&atom.relation) else {
            continue;
        };
        let rest: Vec<Atom> = atoms
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a.clone())
            .collect();
        for t in new_tuples {
            if let Some(seed) = unify_with_tuple(atom, t, &Valuation::new()) {
                out.extend(extend_matches_mode(&rest, inst, &seed, mode));
            }
        }
    }
    out
}

/// Chase one egd to its local fixpoint: repeatedly merge a null with
/// the value it is equated to (one merge at a time, then re-match).
/// Returns the new instance and the number of merges applied. `lost`
/// accumulates the index counters of instance snapshots discarded by
/// substitution.
fn chase_one_egd(
    egd: &dex_logic::Egd,
    mut target: Instance,
    mode: MatchMode,
    lost: &mut (u64, u64),
) -> Result<(Instance, usize), ChaseError> {
    let mut merges = 0usize;
    loop {
        let mut subst: BTreeMap<NullId, Value> = BTreeMap::new();
        'find: for m in match_conjunction_mode(&egd.lhs, &target, mode) {
            for (a, b) in &egd.equalities {
                let va = term_value(a, &m, egd)?;
                let vb = term_value(b, &m, egd)?;
                if va == vb {
                    continue;
                }
                match (&va, &vb) {
                    (Value::Null(n), _) => {
                        subst.insert(*n, vb.clone());
                    }
                    (_, Value::Null(n)) => {
                        subst.insert(*n, va.clone());
                    }
                    _ => {
                        return Err(ChaseError::EgdFailure {
                            egd: egd.to_string(),
                            left: va.to_string(),
                            right: vb.to_string(),
                        });
                    }
                }
                break 'find; // apply one merge at a time
            }
        }
        if subst.is_empty() {
            return Ok((target, merges));
        }
        let (b, p) = target.index_stats();
        lost.0 += b;
        lost.1 += p;
        target = target.substitute_nulls(&subst);
        merges += 1;
    }
}

/// Chase a set of egds over an instance to fixpoint (merging nulls;
/// failing when two distinct constants are forced equal). This is the
/// standalone entry point used by the lens engine to enforce target
/// keys after a forward pass.
pub fn enforce_egds(inst: &Instance, egds: &[dex_logic::Egd]) -> Result<Instance, ChaseError> {
    Ok(enforce_egds_with(inst, egds)?.0)
}

/// Counters from one [`enforce_egds_with`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EgdStats {
    /// Fixpoint rounds taken (including the final no-op round).
    pub rounds: usize,
    /// Null merges applied across all rounds.
    pub merges: usize,
    /// Index structures (re)built while matching egd premises.
    pub index_builds: u64,
    /// Index probes served while matching egd premises.
    pub index_probes: u64,
}

/// Like [`enforce_egds`], but also reports fixpoint rounds, merges, and
/// index build/probe counters — the observability hook behind
/// `Engine::forward_with_stats`.
pub fn enforce_egds_with(
    inst: &Instance,
    egds: &[dex_logic::Egd],
) -> Result<(Instance, EgdStats), ChaseError> {
    match enforce_egds_governed(inst, egds, &Governor::unlimited())? {
        EgdOutcome::Complete { instance, stats } => Ok((instance, stats)),
        // Unreachable with an unlimited governor; collapse defensively.
        EgdOutcome::Exhausted(e) => Err(ChaseError::Exhausted(Box::new(e))),
    }
}

/// The outcome of a governed egd-enforcement run.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum EgdOutcome {
    /// Reached the egd fixpoint within budget.
    Complete {
        /// The enforced instance.
        instance: Instance,
        /// Counters for the run.
        stats: EgdStats,
    },
    /// A budget or cancellation stopped enforcement early. The partial
    /// instance is a prefix of whole egd-enforcement steps (each step
    /// chases one egd to its local fixpoint); its `stats` carry the
    /// committed rounds and index counters.
    Exhausted(Exhausted),
}

impl EgdOutcome {
    /// Collapse into a plain `Result`, turning exhaustion into
    /// [`ChaseError::Exhausted`].
    pub fn into_result(self) -> Result<(Instance, EgdStats), ChaseError> {
        match self {
            EgdOutcome::Complete { instance, stats } => Ok((instance, stats)),
            EgdOutcome::Exhausted(e) => Err(ChaseError::Exhausted(Box::new(e))),
        }
    }
}

/// Enforce egds under a resource budget and/or cancellation token.
///
/// Identical to [`enforce_egds_with`] on the untripped path. The
/// governor is checked between egd steps (each step chases one egd to
/// its local fixpoint, which always terminates: every merge eliminates
/// a labeled null), so an exhausted run hands back an instance that is
/// a valid prefix of the egd chase — some egds enforced, none applied
/// halfway.
pub fn enforce_egds_governed(
    inst: &Instance,
    egds: &[dex_logic::Egd],
    gov: &Governor,
) -> Result<EgdOutcome, ChaseError> {
    // The clone starts with zeroed index counters, so the instance's
    // final counters (plus those lost to substitutions) are exactly
    // this run's work.
    let mut target = inst.clone();
    let mut stats = EgdStats::default();
    let mut lost = (0u64, 0u64);
    macro_rules! exhaust {
        ($reason:expr) => {{
            let (builds, probes) = target.index_stats();
            return Ok(EgdOutcome::Exhausted(Exhausted {
                report: gov.report($reason),
                stats: ChaseStats {
                    rounds: stats.rounds,
                    index_builds: lost.0 + builds,
                    index_probes: lost.1 + probes,
                    ..ChaseStats::default()
                },
                partial: target,
            }));
        }};
    }
    loop {
        let mut changed = false;
        for egd in egds {
            if let Err(reason) = gov.check() {
                exhaust!(reason);
            }
            let (next, merges) = chase_one_egd(egd, target, MatchMode::default(), &mut lost)?;
            target = next;
            stats.merges += merges;
            changed |= merges > 0;
        }
        if !changed {
            stats.rounds += 1;
            let (builds, probes) = target.index_stats();
            stats.index_builds = lost.0 + builds;
            stats.index_probes = lost.1 + probes;
            return Ok(EgdOutcome::Complete {
                instance: target,
                stats,
            });
        }
        stats.rounds += 1;
        gov.note_round();
        if gov.round_limit_hit() {
            exhaust!(TripReason::Rounds);
        }
    }
}

fn count_new_nulls(before: &NullGen, after: &NullGen) -> usize {
    // NullGen is a counter; expose the difference via fresh ids.
    let mut b = before.clone();
    let mut a = after.clone();
    (a.fresh_id().0 - b.fresh_id().0) as usize
}

/// Undo an uncommitted phase-2 round: the delta log holds exactly the
/// tuples this round genuinely inserted (it was drained at round
/// start), so removing them restores the round-start instance.
fn rollback_round(target: &mut Instance) {
    for (rel, tuples) in target.drain_deltas() {
        for t in &tuples {
            // The tuple was inserted this round into a known relation,
            // so removal cannot fail; ignore the yes/no result.
            let _ = target.remove(rel.as_str(), t);
        }
    }
}

/// Typed error for an rhs atom whose instantiation failed: name the
/// first variable the (existential-extended) valuation does not bind.
fn unbound_in_atom(atom: &Atom, v: &Valuation, tgd: &StTgd) -> ChaseError {
    let var = atom
        .variables()
        .into_iter()
        .find(|x| !v.contains_key(x))
        .unwrap_or_else(|| Name::new("?"));
    ChaseError::UnboundVariable {
        var,
        dependency: tgd.to_string(),
    }
}

/// Evaluate one side of an egd equality under a premise match,
/// surfacing a typed error (not a panic) when the equality mentions a
/// variable the egd's premise never binds. Parse-time validation
/// rejects such egds in `.dex` sources; this guards programmatically
/// constructed ones.
fn term_value(t: &Term, m: &Valuation, egd: &dex_logic::Egd) -> Result<Value, ChaseError> {
    t.eval(m).ok_or_else(|| {
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        let var = vars
            .into_iter()
            .find(|x| !m.contains_key(x))
            .unwrap_or_else(|| Name::new("?"));
        ChaseError::UnboundVariable {
            var,
            dependency: egd.to_string(),
        }
    })
}

/// Fire one tgd for one frontier valuation: extend the valuation with
/// fresh nulls for the existential variables and insert the rhs facts,
/// batched per relation and logged as deltas for the semi-naive
/// rounds. Consumption (fresh nulls, new tuples, approximate bytes) is
/// accounted against `gov`; the budget itself is checked by the caller
/// between firings, never mid-firing.
fn fire(
    tgd: &StTgd,
    frontier: &Valuation,
    target: &mut Instance,
    gen: &mut NullGen,
    gov: &Governor,
) -> Result<(), ChaseError> {
    let mut v = frontier.clone();
    let existentials = tgd.existential_vars();
    gov.note_nulls(existentials.len());
    for y in existentials {
        v.insert(y, gen.fresh());
    }
    let mut by_rel: BTreeMap<&Name, Vec<Tuple>> = BTreeMap::new();
    for atom in &tgd.rhs {
        let t = atom
            .instantiate(&v)
            .ok_or_else(|| unbound_in_atom(atom, &v, tgd))?;
        by_rel.entry(&atom.relation).or_default().push(t);
    }
    // Fault-injection site: placed before any insertion, so an
    // injected fault leaves the target instance unmodified.
    dex_relational::fail_point!("chase.fire");
    if gov.tracks_memory() {
        let bytes: usize = by_rel.values().flatten().map(Tuple::approx_bytes).sum();
        gov.note_bytes(bytes);
    }
    for (rel, ts) in by_rel {
        let added = target
            .relation_mut(rel.as_str())
            .ok_or_else(|| RelationalError::UnknownRelation(rel.clone()))?
            .extend_validated_delta(ts)?;
        gov.note_tuples(added);
    }
    Ok(())
}

/// Check that `solution` is universal for `src` under `mapping` by
/// verifying (i) it is a solution, and (ii) it maps homomorphically into
/// `other` for each provided solution. (Used by tests; universality
/// against *all* solutions is a theorem about the chase, checked here
/// against sampled ones.)
pub fn maps_into_all<'a>(
    solution: &Instance,
    others: impl IntoIterator<Item = &'a Instance>,
) -> bool {
    others
        .into_iter()
        .all(|o| dex_relational::is_homomorphic_to(solution, o))
}

/// The set of valuations of `atoms` over `inst` extended by `partial` —
/// re-exported convenience for downstream crates building on chase
/// internals.
pub fn matches_with(
    atoms: &[dex_logic::Atom],
    inst: &Instance,
    partial: &Valuation,
) -> Vec<Valuation> {
    extend_matches(atoms, inst, partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::{parse_mapping, Atom};
    use dex_relational::{tuple, RelSchema, Schema, Tuple};

    fn example1_mapping() -> Mapping {
        parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap()
    }

    fn emp_instance(names: &[&str]) -> Instance {
        Instance::with_facts(
            example1_mapping().source().clone(),
            vec![("Emp", names.iter().map(|n| tuple![*n]).collect())],
        )
        .unwrap()
    }

    fn scan_opts() -> ChaseOptions {
        ChaseOptions {
            matcher: Matcher::Scan,
            ..Default::default()
        }
    }

    /// Paper Example 1: the chase produces J* with one fresh null per
    /// employee.
    #[test]
    fn example1_chase_produces_j_star() {
        let m = example1_mapping();
        let src = emp_instance(&["Alice", "Bob"]);
        let res = exchange(&m, &src).unwrap();
        assert_eq!(res.target.fact_count(), 2);
        assert_eq!(res.nulls_created, 2);
        assert_eq!(res.firings, 2);
        // Every tuple pairs a constant employee with a null manager.
        let rel = res.target.relation("Manager").unwrap();
        for t in rel.iter() {
            assert!(t[0].is_const());
            assert!(t[1].is_null());
        }
        // It is a solution and maps into the paper's J1 and J2.
        assert!(m.is_solution(&src, &res.target));
        let j1 = Instance::with_facts(
            m.target().clone(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
            )],
        )
        .unwrap();
        let j2 = Instance::with_facts(
            m.target().clone(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Bob"], tuple!["Bob", "Ted"]],
            )],
        )
        .unwrap();
        assert!(maps_into_all(&res.target, [&j1, &j2]));
    }

    #[test]
    fn standard_chase_skips_satisfied_matches() {
        // Two tgds with the same rhs requirement: the second pass adds
        // nothing under the standard chase.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target T(name, info);
            E1(x) -> T(x, y);
            E2(x) -> T(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["a"]).unwrap();
        src.insert("E2", tuple!["a"]).unwrap();
        let std = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
        assert_eq!(std.target.fact_count(), 1, "second firing suppressed");
        let obl = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(obl.target.fact_count(), 2, "oblivious fires twice");
        // Both are universal solutions: homomorphically equivalent.
        assert!(dex_relational::homomorphism::homomorphically_equivalent(
            &std.target,
            &obl.target
        ));
    }

    #[test]
    fn figure1_university_exchange() {
        let m = parse_mapping(
            r#"
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);
            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(
            m.source().clone(),
            vec![(
                "Takes",
                vec![
                    tuple!["Alice", "DB"],
                    tuple!["Alice", "PL"],
                    tuple!["Bob", "DB"],
                ],
            )],
        )
        .unwrap();
        let res = exchange(&m, &src).unwrap();
        // Three Assgn facts; Student facts: standard chase checks whether
        // ∃z Student(z, name) ∧ Assgn(name, course) already holds per
        // (name, course) pair, so Alice gets ids possibly shared.
        assert_eq!(res.target.relation("Assgn").unwrap().len(), 3);
        assert!(res.target.relation("Student").unwrap().len() >= 2);
        assert!(m.is_solution(&src, &res.target));
    }

    #[test]
    fn target_tgd_chases_to_fixpoint() {
        // R(x) -> S(x); target: S(x) -> T(x).
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a);
            R(x) -> S(x);
            S(x) -> T(x);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        let res = exchange(&m, &src).unwrap();
        assert!(res.target.contains("S", &tuple!["v"]));
        assert!(res.target.contains("T", &tuple!["v"]));
    }

    #[test]
    fn egd_merges_nulls() {
        // Emp -> Manager with key(emp): two tgds give Alice two null
        // managers; the key merges them.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target Manager(emp, mgr);
            key Manager(emp);
            E1(x) -> Manager(x, y);
            E2(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["Alice"]).unwrap();
        src.insert("E2", tuple!["Alice"]).unwrap();
        // Oblivious chase to force two distinct nulls first.
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            res.target.relation("Manager").unwrap().len(),
            1,
            "egd merged the two null-managed facts"
        );
        assert!(m.is_solution(&src, &res.target));
    }

    #[test]
    fn egd_resolves_null_to_constant() {
        let m = parse_mapping(
            r#"
            source E(name);
            source Boss(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            E(x) -> Manager(x, y);
            Boss(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E", tuple!["Alice"]).unwrap();
        src.insert("Boss", tuple!["Alice", "Ted"]).unwrap();
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();
        let rel = res.target.relation("Manager").unwrap();
        assert_eq!(rel.len(), 1);
        assert!(
            rel.contains(&tuple!["Alice", "Ted"]),
            "null resolved to Ted"
        );
    }

    #[test]
    fn egd_failure_on_distinct_constants() {
        let m = parse_mapping(
            r#"
            source B1(name, boss);
            source B2(name, boss);
            target Manager(emp, mgr);
            key Manager(emp);
            B1(x, b) -> Manager(x, b);
            B2(x, b) -> Manager(x, b);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("B1", tuple!["Alice", "Ted"]).unwrap();
        src.insert("B2", tuple!["Alice", "Bob"]).unwrap();
        let err = exchange(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::EgdFailure { .. }));
    }

    #[test]
    fn non_terminating_target_tgd_hits_limit() {
        // target: S(x) -> S(y) with fresh y each time — not weakly
        // acyclic, never reaches fixpoint under the standard chase?
        // (Standard chase: S(x) -> ∃y S(y) is satisfied once any S fact
        // exists, so it *does* terminate. Use a two-relation ping-pong
        // that keeps inventing values instead.)
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, y);
            S(x, y) -> S(y, z);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        for matcher in [Matcher::Indexed, Matcher::Scan] {
            let err = exchange_with(
                &m,
                &src,
                ChaseOptions {
                    variant: ChaseVariant::Standard,
                    max_rounds: 25,
                    matcher,
                    ..Default::default()
                },
            )
            .unwrap_err();
            // The round limit no longer discards the work: the error
            // carries the partial prefix and a consumption report.
            match err {
                ChaseError::Exhausted(e) => {
                    assert_eq!(e.report.reason, TripReason::Rounds);
                    assert_eq!(e.report.rounds_committed, 26, "trips past max_rounds");
                    assert!(!e.partial.is_empty(), "partial prefix survives");
                }
                other => panic!("expected Exhausted, got {other:?}"),
            }
        }
    }

    #[test]
    fn source_nulls_do_not_collide_with_fresh_ones() {
        let m = example1_mapping();
        let mut src = Instance::empty(m.source().clone());
        src.insert("Emp", Tuple::new(vec![Value::null(0)])).unwrap();
        let res = exchange(&m, &src).unwrap();
        let mut nulls = BTreeSet::new();
        for (_, t) in res.target.facts() {
            t.collect_nulls(&mut nulls);
        }
        assert_eq!(nulls.len(), 2, "source null + one fresh manager null");
    }

    #[test]
    fn parallel_matching_agrees_with_sequential() {
        let m = parse_mapping(
            r#"
            source Father(p, c);
            source Mother(p, c);
            target Parent(p, c);
            target Child(c);
            Father(x, y) -> Parent(x, y);
            Mother(x, y) -> Parent(x, y);
            Father(x, y) -> Child(y);
            Mother(x, y) -> Child(y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        for i in 0..20i64 {
            src.insert(
                "Father",
                tuple![format!("f{i}").as_str(), format!("c{i}").as_str()],
            )
            .unwrap();
            src.insert(
                "Mother",
                tuple![format!("m{i}").as_str(), format!("d{i}").as_str()],
            )
            .unwrap();
        }
        let seq = exchange_with(&m, &src, ChaseOptions::default()).unwrap();
        for matcher in [Matcher::Indexed, Matcher::Scan] {
            let par = exchange_with(
                &m,
                &src,
                ChaseOptions {
                    parallel: true,
                    matcher,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq.target, par.target, "parallel matching is deterministic");
            assert_eq!(seq.firings, par.firings);
        }
    }

    /// The acceptance property of the refactor: the indexed semi-naive
    /// chase produces the literal instance (same tuples, same null
    /// allocation order) as the full-scan naive oracle.
    #[test]
    fn indexed_semi_naive_equals_scan_oracle() {
        let cases = [
            // Chained target tgds.
            (
                r#"
                source R(a);
                target S(a);
                target T(a, b);
                target U(b);
                R(x) -> S(x);
                S(x) -> T(x, y);
                T(x, y) -> U(y);
                "#,
                vec![("R", vec![tuple!["a"], tuple!["b"], tuple!["c"]])],
            ),
            // Target join premise.
            (
                r#"
                source E(p, c);
                target P(p, c);
                target G(a, c);
                E(x, y) -> P(x, y);
                P(x, y) & P(y, z) -> G(x, z);
                "#,
                vec![(
                    "E",
                    vec![tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]],
                )],
            ),
            // Egds interleaved with target tgds.
            (
                r#"
                source E1(name);
                source E2(name);
                target Manager(emp, mgr);
                target Peer(mgr);
                key Manager(emp);
                E1(x) -> Manager(x, y);
                E2(x) -> Manager(x, y);
                Manager(x, y) -> Peer(y);
                "#,
                vec![
                    ("E1", vec![tuple!["Alice"], tuple!["Bob"]]),
                    ("E2", vec![tuple!["Alice"], tuple!["Carol"]]),
                ],
            ),
        ];
        for (text, facts) in cases {
            let m = parse_mapping(text).unwrap();
            for variant in [ChaseVariant::Standard, ChaseVariant::Oblivious] {
                let src = Instance::with_facts(m.source().clone(), facts.clone()).unwrap();
                let indexed = exchange_with(
                    &m,
                    &src,
                    ChaseOptions {
                        variant,
                        ..Default::default()
                    },
                )
                .unwrap();
                let scan = exchange_with(
                    &m,
                    &src,
                    ChaseOptions {
                        variant,
                        matcher: Matcher::Scan,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    indexed.target, scan.target,
                    "literal equality, {variant:?}: {text}"
                );
                assert_eq!(indexed.firings, scan.firings);
                assert_eq!(indexed.nulls_created, scan.nulls_created);
            }
        }
    }

    /// Regression: once the delta runs dry the semi-naive loop exits
    /// without another full re-match, and the recorded delta sizes
    /// shrink to zero.
    #[test]
    fn empty_delta_exits_fixpoint() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a);
            R(x) -> S(x);
            S(x) -> T(x);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(
            m.source().clone(),
            vec![("R", vec![tuple!["u"], tuple!["v"]])],
        )
        .unwrap();
        let res = exchange(&m, &src).unwrap();
        let stats = &res.stats;
        assert_eq!(stats.st_firings, 2);
        // Round 1: delta = 2 S-facts, fires 2 T-facts. Round 2: delta =
        // 2 T-facts, nothing left to fire — the fixpoint round.
        assert_eq!(stats.delta_sizes, vec![2, 2]);
        assert_eq!(stats.firings_per_round, vec![2, 0]);
        assert_eq!(stats.rounds, 1);
        assert!(stats.index_probes > 0, "indexed mode probed");
        // Scan oracle: same instance, no probes.
        let scan = exchange_with(&m, &src, scan_opts()).unwrap();
        assert_eq!(scan.target, res.target);
        assert_eq!(scan.stats.index_probes, 0);
    }

    #[test]
    fn empty_source_empty_target() {
        let m = example1_mapping();
        let res = exchange(&m, &Instance::empty(m.source().clone())).unwrap();
        assert!(res.target.is_empty());
        assert_eq!(res.nulls_created, 0);
    }

    #[test]
    fn constants_in_tgds_propagate() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, tag);
            R(x) -> S(x, 'imported');
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        let res = exchange(&m, &src).unwrap();
        assert!(res.target.contains("S", &tuple!["v", "imported"]));
    }

    #[test]
    fn matches_with_reexport() {
        let _m = example1_mapping();
        let src = emp_instance(&["Alice"]);
        let ms = matches_with(&[Atom::vars("Emp", &["x"])], &src, &Valuation::new());
        assert_eq!(ms.len(), 1);
        let _ = Schema::with_relations(vec![RelSchema::untyped("X", vec!["a"]).unwrap()]);
    }

    // ---- resource governance ----

    use dex_relational::{Budget, CancelToken};

    /// A mapping whose target chase never terminates: each round keeps
    /// inventing one fresh null (S ping-pongs into itself).
    fn ping_pong() -> (Mapping, Instance) {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x) -> S(x, y);
            S(x, y) -> S(y, z);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(m.source().clone(), vec![("R", vec![tuple!["v"]])]).unwrap();
        (m, src)
    }

    fn expect_exhausted(outcome: ChaseOutcome) -> Exhausted {
        match outcome {
            ChaseOutcome::Exhausted(e) => e,
            ChaseOutcome::Complete(_) => panic!("expected an exhausted outcome"),
        }
    }

    #[test]
    fn untripped_governed_run_equals_ungoverned() {
        let m = example1_mapping();
        let src = emp_instance(&["Alice", "Bob", "Carol"]);
        let plain = exchange(&m, &src).unwrap();
        let gov = Governor::new(
            Budget::unlimited()
                .with_max_rounds(1_000)
                .with_max_tuples(1_000)
                .with_max_nulls(1_000)
                .with_deadline(std::time::Duration::from_secs(60)),
        );
        let governed = match exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap() {
            ChaseOutcome::Complete(r) => r,
            ChaseOutcome::Exhausted(e) => panic!("generous budget tripped: {}", e.report),
        };
        assert_eq!(plain.target, governed.target);
        assert_eq!(plain.firings, governed.firings);
        assert_eq!(plain.nulls_created, governed.nulls_created);
        assert_eq!(plain.stats, governed.stats);
    }

    /// Each single budget dimension stops the non-terminating chase
    /// with its own trip reason and a non-empty, well-formed partial.
    #[test]
    fn every_budget_dimension_trips_ping_pong() {
        let budgets = [
            (
                Budget::unlimited().with_deadline(std::time::Duration::from_millis(30)),
                TripReason::Deadline,
            ),
            (Budget::unlimited().with_max_rounds(8), TripReason::Rounds),
            (Budget::unlimited().with_max_tuples(7), TripReason::Tuples),
            (Budget::unlimited().with_max_nulls(5), TripReason::Nulls),
            (Budget::unlimited().with_max_memory(600), TripReason::Memory),
        ];
        let (m, src) = ping_pong();
        for (budget, want) in budgets {
            let gov = Governor::new(budget);
            let e = expect_exhausted(
                exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap(),
            );
            assert_eq!(e.report.reason, want);
            assert!(!e.partial.is_empty(), "{want:?}: partial survives");
            // Well-formed: every fact chains off the original source
            // value through labeled nulls (arity checked on insert).
            assert!(!e.partial.relation("S").unwrap().is_empty());
            assert_eq!(e.stats.rounds as u64, e.report.rounds_committed);
        }
    }

    /// The replay property pinning down "valid chase prefix": a run
    /// tripped mid-flight by a tuple budget at R committed rounds
    /// hands back *exactly* the instance a rounds-budget run capped at
    /// R-1 produces — i.e. the partial is a genuine round boundary.
    #[test]
    fn tripped_partial_replays_as_round_boundary() {
        let (m, src) = ping_pong();
        let gov = Governor::new(Budget::unlimited().with_max_tuples(7));
        let e =
            expect_exhausted(exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap());
        assert_eq!(e.report.reason, TripReason::Tuples);
        let r = e.report.rounds_committed;
        assert!(r >= 1, "budget chosen to survive past round 1");

        let replay_gov = Governor::new(Budget::unlimited().with_max_rounds(r - 1));
        let replay = expect_exhausted(
            exchange_governed(&m, &src, ChaseOptions::default(), &replay_gov).unwrap(),
        );
        assert_eq!(replay.report.reason, TripReason::Rounds);
        assert_eq!(replay.report.rounds_committed, r);
        assert_eq!(replay.partial, e.partial, "same committed boundary");

        // And the legacy options-based round limit agrees too.
        let opts = ChaseOptions {
            max_rounds: (r - 1) as usize,
            ..Default::default()
        };
        match exchange_with(&m, &src, opts).unwrap_err() {
            ChaseError::Exhausted(legacy) => assert_eq!(legacy.partial, e.partial),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    /// A phase-1 trip hands back a strict prefix of the full phase-1
    /// output: a subinstance of the untripped target.
    #[test]
    fn phase1_trip_partial_is_subinstance() {
        let m = example1_mapping();
        let src = emp_instance(&["Alice", "Bob", "Carol", "Dave"]);
        let full = exchange(&m, &src).unwrap();
        let gov = Governor::new(Budget::unlimited().with_max_tuples(1));
        let e =
            expect_exhausted(exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap());
        assert_eq!(e.report.reason, TripReason::Tuples);
        assert_eq!(e.report.rounds_committed, 0);
        assert!(e.partial.fact_count() < full.target.fact_count());
        assert!(
            e.partial.is_subinstance_of(&full.target),
            "phase-1 prefix: same firing order, same null allocation"
        );
    }

    /// Phase-2 partials are egd-enforced: trips happen only at round
    /// boundaries (after that round's egds), so target keys hold on
    /// the partial even though the chase was cut short.
    #[test]
    fn tripped_partial_satisfies_target_egds() {
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target Manager(emp, mgr);
            target Peer(mgr);
            key Manager(emp);
            E1(x) -> Manager(x, y);
            E2(x) -> Manager(x, y);
            Manager(x, y) -> Peer(y);
            "#,
        )
        .unwrap();
        let src = Instance::with_facts(
            m.source().clone(),
            vec![
                ("E1", vec![tuple!["Alice"], tuple!["Bob"]]),
                ("E2", vec![tuple!["Alice"], tuple!["Carol"]]),
            ],
        )
        .unwrap();
        let opts = ChaseOptions {
            variant: ChaseVariant::Oblivious,
            ..Default::default()
        };
        let gov = Governor::new(Budget::unlimited().with_max_rounds(1));
        match exchange_governed(&m, &src, opts, &gov).unwrap() {
            ChaseOutcome::Exhausted(e) => {
                for egd in m.target_egds() {
                    assert!(egd.satisfied_by(&e.partial), "partial violates {egd}");
                }
            }
            // The mapping terminates quickly; if it fits in the budget
            // the complete result trivially satisfies the egds.
            ChaseOutcome::Complete(r) => {
                assert!(m.target_egds().iter().all(|e| e.satisfied_by(&r.target)));
            }
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let (m, src) = ping_pong();
        let token = CancelToken::new();
        token.cancel();
        let gov = Governor::unlimited().with_cancel(token);
        let e =
            expect_exhausted(exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap());
        assert_eq!(e.report.reason, TripReason::Cancelled);
        assert!(e.partial.is_empty(), "cancelled before the first firing");
        assert_eq!(e.report.tuples_derived, 0);
    }

    #[test]
    fn cancellation_from_another_thread_stops_the_chase() {
        let (m, src) = ping_pong();
        let token = CancelToken::new();
        let gov = Governor::unlimited().with_cancel(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            token.cancel();
        });
        // Without the token this chase never terminates.
        let e =
            expect_exhausted(exchange_governed(&m, &src, ChaseOptions::default(), &gov).unwrap());
        canceller.join().expect("canceller thread panicked");
        assert_eq!(e.report.reason, TripReason::Cancelled);
        assert!(!e.partial.is_empty());
    }

    #[test]
    fn governed_egd_enforcement_trips_on_rounds() {
        // Chain of keyed relations so enforcement takes several merges.
        let m = parse_mapping(
            r#"
            source E1(name);
            source E2(name);
            target Manager(emp, mgr);
            key Manager(emp);
            E1(x) -> Manager(x, y);
            E2(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        let mut src = Instance::empty(m.source().clone());
        src.insert("E1", tuple!["Alice"]).unwrap();
        src.insert("E2", tuple!["Alice"]).unwrap();
        let res = exchange_with(
            &m,
            &src,
            ChaseOptions {
                variant: ChaseVariant::Oblivious,
                ..Default::default()
            },
        )
        .unwrap();

        // Re-enforcing on the solved instance completes in one round.
        let gov = Governor::new(Budget::unlimited().with_max_rounds(5));
        match enforce_egds_governed(&res.target, mapping_egds(&m), &gov).unwrap() {
            EgdOutcome::Complete { instance, .. } => assert_eq!(instance, res.target),
            EgdOutcome::Exhausted(e) => panic!("unexpected trip: {}", e.report),
        }

        // A pre-cancelled token exhausts before touching anything.
        let token = CancelToken::new();
        token.cancel();
        let gov = Governor::unlimited().with_cancel(token);
        match enforce_egds_governed(&res.target, mapping_egds(&m), &gov).unwrap() {
            EgdOutcome::Exhausted(e) => {
                assert_eq!(e.report.reason, TripReason::Cancelled);
                assert_eq!(e.partial, res.target, "inputs untouched");
            }
            EgdOutcome::Complete { .. } => panic!("cancelled run completed"),
        }
    }

    fn mapping_egds(m: &Mapping) -> &[dex_logic::Egd] {
        m.target_egds()
    }

    // ---- checkpointing & resume ----

    /// One recorded boundary: round, null-generator position, owned
    /// state, whether the round came as a delta, completion flag.
    struct Boundary {
        round: u64,
        next_null: u64,
        state: Instance,
        as_delta: bool,
        complete: bool,
    }

    /// A sink that keeps every boundary and verifies on the fly that
    /// each delta record replays the previous boundary into this one —
    /// the exact contract a WAL depends on.
    #[derive(Default)]
    struct Recorder {
        boundaries: Vec<Boundary>,
    }

    impl CheckpointSink for Recorder {
        fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String> {
            if let (Some(delta), Some(prev)) = (&cp.delta, self.boundaries.last()) {
                let mut replayed = prev.state.clone();
                for (rel, ts) in delta {
                    for t in ts {
                        replayed
                            .insert(rel.as_str(), t.clone())
                            .map_err(|e| e.to_string())?;
                    }
                }
                if &replayed != cp.target {
                    return Err(format!("round {} delta does not replay", cp.round));
                }
            }
            self.boundaries.push(Boundary {
                round: cp.round,
                next_null: cp.next_null,
                state: cp.target.clone(),
                as_delta: cp.delta.is_some(),
                complete: cp.complete,
            });
            Ok(())
        }
    }

    /// Mappings exercising multi-round target chases, joins, and egd
    /// merges — the shapes resume must reproduce exactly.
    fn resume_cases() -> Vec<(Mapping, Instance)> {
        type Facts = Vec<(&'static str, Vec<Tuple>)>;
        let cases: [(&str, Facts); 3] = [
            (
                r#"
                source R(a);
                target S(a);
                target T(a, b);
                target U(b);
                R(x) -> S(x);
                S(x) -> T(x, y);
                T(x, y) -> U(y);
                "#,
                vec![("R", vec![tuple!["a"], tuple!["b"]])],
            ),
            (
                r#"
                source E(p, c);
                target P(p, c);
                target G(a, c);
                E(x, y) -> P(x, y);
                P(x, y) & P(y, z) -> G(x, z);
                "#,
                vec![(
                    "E",
                    vec![tuple!["a", "b"], tuple!["b", "c"], tuple!["c", "d"]],
                )],
            ),
            (
                r#"
                source E1(name);
                source E2(name);
                target Manager(emp, mgr);
                target Peer(mgr);
                key Manager(emp);
                E1(x) -> Manager(x, y);
                E2(x) -> Manager(x, y);
                Manager(x, y) -> Peer(y);
                "#,
                vec![
                    ("E1", vec![tuple!["Alice"], tuple!["Bob"]]),
                    ("E2", vec![tuple!["Alice"], tuple!["Carol"]]),
                ],
            ),
        ];
        cases
            .into_iter()
            .map(|(text, facts)| {
                let m = parse_mapping(text).unwrap();
                let src = Instance::with_facts(m.source().clone(), facts).unwrap();
                (m, src)
            })
            .collect()
    }

    /// Attaching a sink changes nothing about the run itself, the
    /// boundaries replay as deltas, and the last one is the complete
    /// final instance.
    #[test]
    fn checkpointed_run_is_identical_and_boundaries_replay() {
        for (m, src) in resume_cases() {
            let plain = exchange(&m, &src).unwrap();
            let mut rec = Recorder::default();
            let gov = Governor::unlimited();
            let res = exchange_checkpointed(&m, &src, ChaseOptions::default(), &gov, &mut rec)
                .unwrap()
                .into_result()
                .unwrap();
            assert_eq!(res.target, plain.target, "sink must not perturb the chase");
            assert_eq!(res.stats, plain.stats);
            let last = rec.boundaries.last().expect("at least round 0 + fixpoint");
            assert!(last.complete);
            assert_eq!(last.state, plain.target);
            assert_eq!(rec.boundaries[0].round, 0, "base boundary is phase-1");
            assert!(!rec.boundaries[0].as_delta, "base boundary is a full state");
        }
    }

    /// The tentpole property: resuming from *every* recorded boundary
    /// reproduces the uninterrupted final instance literally — same
    /// tuples, same null ids — including across egd-merge rounds.
    #[test]
    fn resume_from_every_boundary_equals_uninterrupted() {
        for (m, src) in resume_cases() {
            for variant in [ChaseVariant::Standard, ChaseVariant::Oblivious] {
                let opts = ChaseOptions {
                    variant,
                    ..Default::default()
                };
                let mut rec = Recorder::default();
                let gov = Governor::unlimited();
                let full = exchange_checkpointed(&m, &src, opts, &gov, &mut rec)
                    .unwrap()
                    .into_result()
                    .unwrap();
                let merged_rounds = rec.boundaries.iter().filter(|b| !b.as_delta).count();
                for b in rec.boundaries.iter().filter(|b| !b.complete) {
                    let state = ResumeState {
                        target: b.state.clone(),
                        next_null: b.next_null,
                        rounds: b.round,
                    };
                    let resumed = resume_exchange(&m, state, opts, &Governor::unlimited(), None)
                        .unwrap()
                        .into_result()
                        .unwrap();
                    assert_eq!(
                        resumed.target, full.target,
                        "resume from round {} diverged ({variant:?})",
                        b.round
                    );
                }
                // Under the oblivious chase the keyed case derives
                // duplicate null managers, so an egd-merge round must
                // have produced a full (non-delta) checkpoint beyond
                // the base one.
                if !m.target_egds().is_empty() && variant == ChaseVariant::Oblivious {
                    assert!(merged_rounds > 1, "expected an egd-merge boundary");
                }
            }
        }
    }

    /// Round caps count total rounds across the original and resumed
    /// processes: resuming under the same budget lands on the same
    /// boundary (and the same report) as a never-interrupted run.
    #[test]
    fn resumed_round_cap_counts_total_rounds() {
        let (m, src) = ping_pong();
        let cap = 6u64;
        let fresh_gov = Governor::new(Budget::unlimited().with_max_rounds(cap));
        let mut rec = Recorder::default();
        let fresh = expect_exhausted(
            exchange_checkpointed(&m, &src, ChaseOptions::default(), &fresh_gov, &mut rec).unwrap(),
        );
        assert_eq!(fresh.report.rounds_committed, cap + 1);

        let mid = &rec.boundaries[3]; // some boundary strictly inside the run
        assert!(mid.round >= 1 && mid.round < cap);
        let resume_gov = Governor::new(Budget::unlimited().with_max_rounds(cap));
        let resumed = expect_exhausted(
            resume_exchange(
                &m,
                ResumeState {
                    target: mid.state.clone(),
                    next_null: mid.next_null,
                    rounds: mid.round,
                },
                ChaseOptions::default(),
                &resume_gov,
                None,
            )
            .unwrap(),
        );
        assert_eq!(resumed.report.reason, TripReason::Rounds);
        assert_eq!(resumed.report.rounds_committed, cap + 1, "total rounds");
        assert_eq!(resumed.partial, fresh.partial, "same committed boundary");
    }

    /// A failing sink aborts the chase with the typed checkpoint error.
    #[test]
    fn failing_sink_aborts_with_typed_error() {
        struct Failing;
        impl CheckpointSink for Failing {
            fn on_checkpoint(&mut self, _cp: Checkpoint<'_>) -> Result<(), String> {
                Err("disk full".into())
            }
        }
        let (m, src) = ping_pong();
        let err = exchange_checkpointed(
            &m,
            &src,
            ChaseOptions::default(),
            &Governor::unlimited(),
            &mut Failing,
        )
        .unwrap_err();
        match err {
            ChaseError::Checkpoint(msg) => assert!(msg.contains("disk full")),
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }
}
