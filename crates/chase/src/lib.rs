//! # dex-chase — materializing data exchange
//!
//! The operational heart of classical data exchange (paper §2): given a
//! mapping and a source instance, **chase** the source through the
//! st-tgds to materialize a *universal solution* — the preferred,
//! most-general solution `J*` of the paper's Example 1 — then chase the
//! target dependencies (tgds and egds) to fixpoint.
//!
//! Also here:
//! * the **SO-tgd chase** (Skolem-term nulls), needed to execute
//!   composed mappings (Example 2),
//! * **termination analysis** — weak acyclicity with special-edge
//!   cycle witnesses, plus joint acyclicity as a strictly larger
//!   sufficient condition,
//! * **core** computation — minimizing a universal solution,
//! * conjunctive queries and **certain answers** over universal
//!   solutions.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chase;
pub mod core_min;
pub mod critical;
pub mod error;
pub mod query;
pub mod sochase;
pub mod termination;

pub use chase::{
    enforce_egds, enforce_egds_governed, enforce_egds_with, exchange, exchange_checkpointed,
    exchange_governed, exchange_with, resume_exchange, set_default_threads, ChaseOptions,
    ChaseOutcome, ChaseStats, ChaseVariant, Checkpoint, CheckpointSink, EgdOutcome, EgdStats,
    ExchangeResult, Exhausted, Matcher, ResumeState, CHASE_STATS_WIRE_V,
};
pub use core_min::{core_of, core_of_governed};
pub use critical::{critical_instance, CriticalInstance};
pub use error::ChaseError;
pub use query::{certain_answers, certain_answers_governed, ConjunctiveQuery, UnionQuery};
pub use sochase::{so_exchange, so_exchange_governed, SoOutcome};
// Governance vocabulary, re-exported so downstream crates can build
// budgets without depending on dex-relational directly.
pub use dex_relational::{Budget, CancelToken, ExhaustionReport, Governor, TripReason};
pub use termination::{
    classify_termination, existential_depth, is_jointly_acyclic, is_weakly_acyclic, position_ranks,
    verify_witness, weak_acyclicity_witness, CycleWitness, DepEdge, Position, TerminationClass,
    TerminationReport,
};
