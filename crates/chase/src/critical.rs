//! Critical ("frozen") instances for chase-based implication checks.
//!
//! To decide whether a set of dependencies Σ implies a dependency σ,
//! freeze σ's premise into a canonical instance — each distinct
//! variable becomes a distinct **labeled null** — then chase it with Σ
//! and test whether σ already holds in the result (Beeri–Vardi; the
//! containment construction of *Containment of Schema Mappings for
//! Data Exchange*).
//!
//! Freezing with labeled nulls rather than rigid constants is the load-
//! bearing choice: an egd in Σ may legitimately equate two premise
//! variables, and labeled nulls are exactly the values the chase is
//! allowed to merge. Frozen constants would turn such merges into
//! spurious hard failures (or, worse, silently decide implication for
//! only the all-distinct valuations). The canonical instance built here
//! is *universal* for the premise: any instance satisfying the premise
//! under some valuation is a homomorphic image of it, which is what
//! makes "chase the frozen premise, check σ" a sound implication test.

use dex_logic::{Atom, Term};
use dex_relational::{Instance, Name, NullId, Schema, Tuple, Value};
use std::collections::BTreeMap;

/// A frozen premise: the canonical instance plus the valuation that
/// sent each premise variable to its labeled null.
#[derive(Clone, Debug)]
pub struct CriticalInstance {
    /// The canonical instance over the premise's schema.
    pub instance: Instance,
    /// Variable → labeled null, numbered from `⊥0` in first-occurrence
    /// order (deterministic, so downstream output is byte-stable).
    pub valuation: BTreeMap<Name, Value>,
}

/// Freeze a premise conjunction over `schema`. `None` when the premise
/// contains function (Skolem) terms or does not fit the schema — the
/// caller must treat such dependencies as *undecidable*, never as
/// implied.
pub fn critical_instance(premise: &[Atom], schema: &Schema) -> Option<CriticalInstance> {
    let mut valuation: BTreeMap<Name, Value> = BTreeMap::new();
    let mut next = 0u64;
    let mut facts: BTreeMap<Name, Vec<Tuple>> = BTreeMap::new();
    for atom in premise {
        let mut vals = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Var(v) => {
                    let val = valuation.entry(v.clone()).or_insert_with(|| {
                        let val = Value::Null(NullId(next));
                        next += 1;
                        val
                    });
                    vals.push(val.clone());
                }
                Term::Const(c) => vals.push(Value::Const(c.clone())),
                Term::Func(..) => return None,
            }
        }
        facts
            .entry(atom.relation.clone())
            .or_default()
            .push(Tuple::new(vals));
    }
    let instance = Instance::with_facts(
        schema.clone(),
        facts
            .iter()
            .map(|(rel, tuples)| (rel.as_str(), tuples.clone()))
            .collect(),
    )
    .ok()?;
    Some(CriticalInstance {
        instance,
        valuation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping;

    #[test]
    fn variables_freeze_to_distinct_nulls_in_order() {
        let m = parse_mapping(
            "source Emp(name, dept);\ntarget T(a, b);\nEmp(x, y) & Emp(y, z) -> T(x, z);",
        )
        .unwrap();
        let crit = critical_instance(&m.st_tgds()[0].lhs, m.source()).unwrap();
        assert_eq!(crit.valuation.len(), 3);
        assert_eq!(crit.valuation[&Name::new("x")], Value::Null(NullId(0)));
        assert_eq!(crit.valuation[&Name::new("y")], Value::Null(NullId(1)));
        assert_eq!(crit.valuation[&Name::new("z")], Value::Null(NullId(2)));
        let emp = crit.instance.relation("Emp").unwrap();
        assert_eq!(emp.len(), 2);
    }

    #[test]
    fn repeated_variable_freezes_to_one_null() {
        let m = parse_mapping("source Emp(a, b);\ntarget T(a);\nEmp(x, x) -> T(x);").unwrap();
        let crit = critical_instance(&m.st_tgds()[0].lhs, m.source()).unwrap();
        assert_eq!(crit.valuation.len(), 1);
        let emp = crit.instance.relation("Emp").unwrap();
        let row: Vec<Value> = emp.iter().next().unwrap().iter().cloned().collect();
        assert_eq!(row[0], row[1]);
    }

    #[test]
    fn constants_stay_rigid() {
        let m = parse_mapping("source R(a, tag);\ntarget T(a);\nR(x, 'v') -> T(x);").unwrap();
        let crit = critical_instance(&m.st_tgds()[0].lhs, m.source()).unwrap();
        let r = crit.instance.relation("R").unwrap();
        let row: Vec<Value> = r.iter().next().unwrap().iter().cloned().collect();
        assert!(matches!(row[1], Value::Const(_)));
    }

    #[test]
    fn function_terms_refuse() {
        use dex_logic::StTgd;
        let m = parse_mapping("source R(a);\ntarget T(a);\nR(x) -> T(x);").unwrap();
        let lhs = vec![Atom::new(
            "R",
            vec![Term::Func(Name::new("f"), vec![Term::Var(Name::new("x"))])],
        )];
        let tgd = StTgd::new(lhs, vec![Atom::vars("T", &["x"])]);
        assert!(critical_instance(&tgd.lhs, m.source()).is_none());
    }
}
