//! Core computation: minimizing a universal solution.
//!
//! Among universal solutions the **core** is the smallest — the unique
//! (up to isomorphism) solution with no proper endomorphism. The paper's
//! `J*` in Example 1 is already a core; chases of messier mappings leave
//! redundant null-blocks that this module folds away.
//!
//! Algorithm: repeatedly search for a *proper* endomorphism — a
//! homomorphism `h : J → J` whose image has strictly fewer facts — by
//! seeding the homomorphism search with `n ↦ v` for each null `n` and
//! candidate value `v`. Worst-case exponential (core identification is
//! NP-hard), but the per-null seeding folds the common block structure
//! of chase results efficiently.

use dex_relational::homomorphism::Homomorphism;
use dex_relational::{ExhaustionReport, Governor, Instance, TripReason, Tuple, Value};
use std::collections::BTreeSet;

/// Compute the core of `inst`.
pub fn core_of(inst: &Instance) -> Instance {
    core_of_governed(inst, &Governor::unlimited()).0
}

/// Core computation under a resource budget. Returns the minimized
/// instance plus `Some(report)` when a budget or cancellation stopped
/// minimization early.
///
/// Every intermediate state is the image of the input under an
/// endomorphism, so a tripped run still hands back an instance
/// homomorphically equivalent to the input — a universal solution that
/// is merely not yet minimal (an "anytime" result). Checks happen
/// between endomorphism probes; each accepted fold counts as one
/// committed round against the budget's `max_rounds`.
pub fn core_of_governed(inst: &Instance, gov: &Governor) -> (Instance, Option<ExhaustionReport>) {
    let mut current = inst.clone();
    loop {
        match find_proper_endomorphism_governed(&current, gov) {
            Ok(Some(image)) => {
                current = image;
                gov.note_round();
                if gov.round_limit_hit() {
                    return (current, Some(gov.report(TripReason::Rounds)));
                }
            }
            Ok(None) => return (current, None),
            Err(reason) => return (current, Some(gov.report(reason))),
        }
    }
}

/// The image instance of `inst` under `h`.
///
/// `apply_tuple` preserves arity, so re-inserting into a copy of the
/// same schema cannot fail; a miss is a bug, not a recoverable state.
#[allow(clippy::expect_used)]
fn image_of(inst: &Instance, h: &Homomorphism) -> Instance {
    let mut out = Instance::empty(inst.schema().clone());
    for (rel, t) in inst.facts() {
        let mapped = h.apply_tuple(&t);
        out.insert(rel.as_str(), mapped)
            .expect("image tuple has same arity");
    }
    out
}

/// Search for an endomorphism whose image has strictly fewer facts,
/// checking the governor between seeded probes (each probe is a
/// worst-case exponential backtracking search, but an atomic read-only
/// step — trips between probes leave the instance untouched).
fn find_proper_endomorphism_governed(
    inst: &Instance,
    gov: &Governor,
) -> Result<Option<Instance>, TripReason> {
    let nulls = inst.nulls();
    if nulls.is_empty() {
        return Ok(None); // ground instances are their own core
    }
    // Candidate images for a null: every value of the instance.
    let mut values: BTreeSet<Value> = BTreeSet::new();
    for (_, t) in inst.facts() {
        for v in t.iter() {
            values.insert(v.clone());
        }
    }
    let total = inst.fact_count();
    for n in &nulls {
        let nv = Value::Null(*n);
        for v in &values {
            if v == &nv {
                continue;
            }
            gov.check()?;
            let mut seed = Homomorphism::new();
            seed.bind(&nv, v);
            if let Some(h) = extend_endomorphism(inst, seed) {
                let img = image_of(inst, &h);
                if img.fact_count() < total {
                    return Ok(Some(img));
                }
            }
        }
    }
    Ok(None)
}

/// Extend a seeded partial mapping to a full endomorphism `inst → inst`,
/// if possible.
fn extend_endomorphism(inst: &Instance, seed: Homomorphism) -> Option<Homomorphism> {
    let facts: Vec<(&dex_relational::Name, Tuple)> = inst.facts().collect();
    fn search(
        facts: &[(&dex_relational::Name, Tuple)],
        idx: usize,
        inst: &Instance,
        h: &mut Homomorphism,
    ) -> bool {
        if idx == facts.len() {
            return true;
        }
        let (rel, t) = &facts[idx];
        // `facts` was enumerated from `inst` itself, so every relation
        // name resolves; an endomorphism search never crosses schemas.
        let Some(target) = inst.relation(rel.as_str()) else {
            return false;
        };
        // Bind against candidate rows by reading columns in place.
        for &cand in target.row_ids().iter() {
            let saved = h.clone();
            let mut ok = true;
            for (col, v) in t.iter().enumerate() {
                if !h.bind(v, target.value_at(cand, col)) {
                    ok = false;
                    break;
                }
            }
            if ok && search(facts, idx + 1, inst, h) {
                return true;
            }
            *h = saved;
        }
        false
    }
    let mut h = seed;
    if search(&facts, 0, inst, &mut h) {
        Some(h)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::homomorphism::homomorphically_equivalent;
    use dex_relational::{tuple, RelSchema, Schema};

    fn mgr_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap()
        ])
        .unwrap()
    }

    #[test]
    fn ground_instance_is_its_own_core() {
        let i = Instance::with_facts(
            mgr_schema(),
            vec![("Manager", vec![tuple!["a", "b"], tuple!["b", "c"]])],
        )
        .unwrap();
        assert_eq!(core_of(&i), i);
    }

    #[test]
    fn j_star_is_its_own_core() {
        // Example 1's J*: distinct nulls in distinct facts — no folding
        // possible (folding ⊥1 into ⊥2 does not reduce fact count
        // because the employee constants differ).
        let mut i = Instance::empty(mgr_schema());
        i.insert(
            "Manager",
            Tuple::new(vec![Value::str("Alice"), Value::null(1)]),
        )
        .unwrap();
        i.insert(
            "Manager",
            Tuple::new(vec![Value::str("Bob"), Value::null(2)]),
        )
        .unwrap();
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 2);
    }

    #[test]
    fn redundant_null_fact_folds_into_ground_fact() {
        // {Manager(Alice, Ted), Manager(Alice, ⊥0)}: the null fact is
        // dominated — core is the ground fact alone.
        let mut i = Instance::empty(mgr_schema());
        i.insert("Manager", tuple!["Alice", "Ted"]).unwrap();
        i.insert(
            "Manager",
            Tuple::new(vec![Value::str("Alice"), Value::null(0)]),
        )
        .unwrap();
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 1);
        assert!(c.contains("Manager", &tuple!["Alice", "Ted"]));
        assert!(homomorphically_equivalent(&c, &i));
    }

    #[test]
    fn null_block_folds_into_another_block() {
        // Two parallel null chains over the same constant: one folds
        // into the other.
        let mut i = Instance::empty(mgr_schema());
        i.insert("Manager", Tuple::new(vec![Value::str("a"), Value::null(0)]))
            .unwrap();
        i.insert("Manager", Tuple::new(vec![Value::null(0), Value::null(1)]))
            .unwrap();
        i.insert("Manager", Tuple::new(vec![Value::str("a"), Value::null(2)]))
            .unwrap();
        i.insert("Manager", Tuple::new(vec![Value::null(2), Value::null(3)]))
            .unwrap();
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 2, "one chain folds onto the other");
        assert!(homomorphically_equivalent(&c, &i));
    }

    #[test]
    fn connected_nulls_fold_consistently() {
        // {R(⊥0, ⊥0), R(a, a)}: ⊥0 can map to a, folding to one fact.
        let mut i = Instance::empty(mgr_schema());
        i.insert("Manager", Tuple::new(vec![Value::null(0), Value::null(0)]))
            .unwrap();
        i.insert("Manager", tuple!["a", "a"]).unwrap();
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 1);
    }

    #[test]
    fn non_foldable_null_kept() {
        // {R(⊥0, ⊥0)} alone: ⊥0 has nowhere to go (only value is
        // itself); core unchanged.
        let mut i = Instance::empty(mgr_schema());
        i.insert("Manager", Tuple::new(vec![Value::null(0), Value::null(0)]))
            .unwrap();
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 1);
        assert!(!c.is_ground());
    }

    #[test]
    fn core_is_homomorphically_equivalent_to_input() {
        let mut i = Instance::empty(mgr_schema());
        for k in 0..4 {
            i.insert(
                "Manager",
                Tuple::new(vec![Value::str("hub"), Value::null(k)]),
            )
            .unwrap();
        }
        i.insert("Manager", tuple!["hub", "spoke"]).unwrap();
        let c = core_of(&i);
        assert_eq!(
            c.fact_count(),
            1,
            "all null spokes fold into the ground one"
        );
        assert!(homomorphically_equivalent(&c, &i));
    }
}
