//! Weak acyclicity: the standard sufficient condition for chase
//! termination (Fagin, Kolaitis, Miller, Popa — the paper's [11]).
//!
//! Build the *dependency graph* over positions `(relation, index)`:
//! for every tgd, every universal variable `x` occurring at lhs position
//! `p` and rhs position `q` contributes a **regular edge** `p → q`; and
//! for every existential variable at rhs position `q'`, a **special
//! edge** `p → q'` from each lhs position `p` of every universal
//! variable exported to the rhs. The set is weakly acyclic iff no cycle
//! passes through a special edge — then the chase terminates in
//! polynomial time.

use dex_logic::{StTgd, Term};
use dex_relational::Name;
use std::collections::{BTreeMap, BTreeSet};

type Position = (Name, usize);

/// Is this set of (target) tgds weakly acyclic?
pub fn is_weakly_acyclic(tgds: &[StTgd]) -> bool {
    // Edges: (from, to, special?).
    let mut edges: BTreeSet<(Position, Position, bool)> = BTreeSet::new();

    for tgd in tgds {
        // Positions of each universal variable on the lhs.
        let mut lhs_positions: BTreeMap<Name, Vec<Position>> = BTreeMap::new();
        for atom in &tgd.lhs {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    lhs_positions
                        .entry(v.clone())
                        .or_default()
                        .push((atom.relation.clone(), i));
                }
            }
        }
        let existentials: BTreeSet<Name> = tgd.existential_vars().into_iter().collect();
        // Universal variables exported to the rhs.
        let exported: BTreeSet<Name> = tgd
            .rhs_vars()
            .into_iter()
            .filter(|v| lhs_positions.contains_key(v.as_str()))
            .collect();

        for atom in &tgd.rhs {
            for (i, t) in atom.args.iter().enumerate() {
                let q = (atom.relation.clone(), i);
                match t {
                    Term::Var(v) if existentials.contains(v.as_str()) => {
                        // Special edge from every lhs position of every
                        // exported universal variable.
                        for u in &exported {
                            for p in &lhs_positions[u] {
                                edges.insert((p.clone(), q.clone(), true));
                            }
                        }
                    }
                    Term::Var(v) => {
                        if let Some(ps) = lhs_positions.get(v.as_str()) {
                            for p in ps {
                                edges.insert((p.clone(), q.clone(), false));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Weakly acyclic iff no special edge lies on a cycle: i.e. for every
    // special edge (p, q), q must not reach p.
    let mut adj: BTreeMap<Position, Vec<Position>> = BTreeMap::new();
    for (p, q, _) in &edges {
        adj.entry(p.clone()).or_default().push(q.clone());
    }
    let reaches = |from: &Position, to: &Position| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.clone()];
        while let Some(n) = stack.pop() {
            if &n == to {
                return true;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(next) = adj.get(&n) {
                stack.extend(next.iter().cloned());
            }
        }
        false
    };
    for (p, q, special) in &edges {
        if *special && (q == p || reaches(q, p)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parser::parse_tgd;

    #[test]
    fn empty_set_is_weakly_acyclic() {
        assert!(is_weakly_acyclic(&[]));
    }

    #[test]
    fn full_tgds_always_weakly_acyclic() {
        let tgds = vec![
            parse_tgd("S(x, y) -> T(x, y)").unwrap(),
            parse_tgd("T(x, y) -> S(y, x)").unwrap(),
        ];
        assert!(
            is_weakly_acyclic(&tgds),
            "no existentials, no special edges"
        );
    }

    #[test]
    fn self_feeding_existential_cycle_detected() {
        // S(x, y) -> ∃z S(y, z): special edge into S.2 which feeds back.
        let tgds = vec![parse_tgd("S(x, y) -> S(y, z)").unwrap()];
        assert!(!is_weakly_acyclic(&tgds));
    }

    #[test]
    fn acyclic_existentials_are_fine() {
        // S(x) -> ∃z T(x, z): special edge S.0 -> T.1, no cycle back.
        let tgds = vec![parse_tgd("S(x) -> T(x, z)").unwrap()];
        assert!(is_weakly_acyclic(&tgds));
    }

    #[test]
    fn two_rule_ping_pong_cycle_detected() {
        // S(x) -> ∃z T(x, z); T(x, y) -> S(y): special edge S.0→T.1,
        // regular T.1→S.0 — cycle through special edge.
        let tgds = vec![
            parse_tgd("S(x) -> T(x, z)").unwrap(),
            parse_tgd("T(x, y) -> S(y)").unwrap(),
        ];
        assert!(!is_weakly_acyclic(&tgds));
    }

    #[test]
    fn regular_cycle_without_specials_is_fine() {
        // Copy cycles are fine: S(x) -> T(x); T(x) -> S(x).
        let tgds = vec![
            parse_tgd("S(x) -> T(x)").unwrap(),
            parse_tgd("T(x) -> S(x)").unwrap(),
        ];
        assert!(is_weakly_acyclic(&tgds));
    }

    #[test]
    fn inclusion_dependency_chain_ok() {
        // Emp(e, d) -> ∃m Dept(d, m); Dept(d, m) -> Mgr(m): no path back
        // into Emp positions.
        let tgds = vec![
            parse_tgd("Emp(e, d) -> Dept(d, m)").unwrap(),
            parse_tgd("Dept(d, m) -> Mgr(m)").unwrap(),
        ];
        assert!(is_weakly_acyclic(&tgds));
    }
}
