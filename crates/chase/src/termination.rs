//! Chase-termination analysis: weak acyclicity (Fagin, Kolaitis,
//! Miller, Popa — the paper's \[11\]) upgraded from a bare bool to a
//! classifier with machine-checkable witnesses, plus **joint
//! acyclicity** (Krötzsch & Rudolph, IJCAI'11) — a strictly larger
//! sufficient condition that certifies more rule sets terminating.
//!
//! Weak acyclicity builds the *dependency graph* over positions
//! `(relation, index)`: for every tgd, every universal variable `x`
//! occurring at lhs position `p` and rhs position `q` contributes a
//! **regular edge** `p → q`; and for every existential variable at rhs
//! position `q'`, a **special edge** `p → q'` from each lhs position
//! `p` of every universal variable exported to the rhs. The set is
//! weakly acyclic iff no cycle passes through a special edge — then the
//! chase terminates in polynomial time. When a special-edge cycle
//! exists, [`weak_acyclicity_witness`] returns it as a [`CycleWitness`]
//! that names every edge, its kind, and the tgds that contributed it.
//!
//! Joint acyclicity tracks *existential variables* instead of
//! positions: `Mov(y)` is the closure of the positions a fresh null
//! invented for `y` can propagate to, and `y → y'` whenever that null
//! can bind a frontier variable of `y'`'s rule (triggering another
//! fresh null). Acyclicity of this graph certifies termination of the
//! Skolem chase — and hence the standard chase — for rule sets that
//! weak acyclicity rejects, because `Mov` only grows through variables
//! whose *every* body position is already reachable; a rule whose body
//! also joins against a null-free relation breaks the spurious cycle.

use dex_logic::{StTgd, Term};
use dex_relational::Name;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A position `(relation, argument index)` in a schema.
pub type Position = (Name, usize);

/// One edge of the weak-acyclicity dependency graph.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DepEdge {
    /// Source position.
    pub from: Position,
    /// Destination position.
    pub to: Position,
    /// Is this a special (existential-creating) edge?
    pub special: bool,
    /// Indices (into the analyzed tgd slice) of the tgds contributing
    /// this edge.
    pub tgds: Vec<usize>,
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} {} {}.{}",
            self.from.0,
            self.from.1,
            if self.special { "—∃→" } else { "→" },
            self.to.0,
            self.to.1
        )
    }
}

/// A cycle through a special edge: the machine-checkable refutation of
/// weak acyclicity. The edges form a closed walk — each edge's `to` is
/// the next edge's `from`, the last wraps to the first — and the first
/// edge is special.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CycleWitness {
    /// The edges of the cycle, special edge first.
    pub edges: Vec<DepEdge>,
}

impl CycleWitness {
    /// Indices of every tgd participating in the cycle, deduplicated.
    pub fn tgd_indices(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.edges.iter().flat_map(|e| e.tgds.clone()).collect();
        set.into_iter().collect()
    }
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// How (and whether) termination of the chase is certified.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TerminationClass {
    /// Weakly acyclic: the classical guarantee holds.
    WeaklyAcyclic,
    /// Not weakly acyclic, but jointly acyclic — the strictly larger
    /// condition still certifies termination.
    JointlyAcyclic,
    /// Neither condition holds; the chase may diverge.
    Unknown,
}

/// The classifier's full answer: the certified class plus, when weak
/// acyclicity fails, the offending special-edge cycle.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TerminationReport {
    /// The strongest certificate found.
    pub class: TerminationClass,
    /// A special-edge cycle refuting weak acyclicity (present iff the
    /// class is not [`TerminationClass::WeaklyAcyclic`] and the tgd set
    /// is non-empty).
    pub witness: Option<CycleWitness>,
}

impl TerminationReport {
    /// Is termination certified by either condition?
    pub fn terminates(&self) -> bool {
        !matches!(self.class, TerminationClass::Unknown)
    }
}

/// Build the weak-acyclicity dependency graph, with edge provenance.
fn dependency_edges(tgds: &[StTgd]) -> BTreeMap<(Position, Position, bool), BTreeSet<usize>> {
    let mut edges: BTreeMap<(Position, Position, bool), BTreeSet<usize>> = BTreeMap::new();

    for (ti, tgd) in tgds.iter().enumerate() {
        // Positions of each universal variable on the lhs.
        let mut lhs_positions: BTreeMap<Name, Vec<Position>> = BTreeMap::new();
        for atom in &tgd.lhs {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    lhs_positions
                        .entry(v.clone())
                        .or_default()
                        .push((atom.relation.clone(), i));
                }
            }
        }
        let existentials: BTreeSet<Name> = tgd.existential_vars().into_iter().collect();
        // Universal variables exported to the rhs.
        let exported: BTreeSet<Name> = tgd
            .rhs_vars()
            .into_iter()
            .filter(|v| lhs_positions.contains_key(v.as_str()))
            .collect();

        for atom in &tgd.rhs {
            for (i, t) in atom.args.iter().enumerate() {
                let q = (atom.relation.clone(), i);
                match t {
                    Term::Var(v) if existentials.contains(v.as_str()) => {
                        // Special edge from every lhs position of every
                        // exported universal variable.
                        for u in &exported {
                            for p in &lhs_positions[u] {
                                edges
                                    .entry((p.clone(), q.clone(), true))
                                    .or_default()
                                    .insert(ti);
                            }
                        }
                    }
                    Term::Var(v) => {
                        if let Some(ps) = lhs_positions.get(v.as_str()) {
                            for p in ps {
                                edges
                                    .entry((p.clone(), q.clone(), false))
                                    .or_default()
                                    .insert(ti);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    edges
}

/// Is this set of (target) tgds weakly acyclic?
pub fn is_weakly_acyclic(tgds: &[StTgd]) -> bool {
    weak_acyclicity_witness(tgds).is_none()
}

/// Decide weak acyclicity; on failure return the special-edge cycle.
///
/// `None` means weakly acyclic. `Some(w)` is a closed walk through the
/// dependency graph whose first edge is special — verify it against the
/// same tgds with [`verify_witness`].
pub fn weak_acyclicity_witness(tgds: &[StTgd]) -> Option<CycleWitness> {
    let edges = dependency_edges(tgds);

    // Adjacency with edge kinds, for path reconstruction.
    let mut adj: BTreeMap<Position, Vec<(Position, bool)>> = BTreeMap::new();
    for (p, q, special) in edges.keys() {
        adj.entry(p.clone())
            .or_default()
            .push((q.clone(), *special));
    }

    let edge = |from: &Position, to: &Position, special: bool| -> DepEdge {
        DepEdge {
            from: from.clone(),
            to: to.clone(),
            special,
            tgds: edges[&(from.clone(), to.clone(), special)]
                .iter()
                .copied()
                .collect(),
        }
    };

    for (p, q, special) in edges.keys() {
        if !special {
            continue;
        }
        if q == p {
            return Some(CycleWitness {
                edges: vec![edge(p, q, true)],
            });
        }
        // BFS from q back to p, tracking parents for reconstruction.
        let mut parent: BTreeMap<Position, (Position, bool)> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([q.clone()]);
        let mut seen: BTreeSet<Position> = BTreeSet::from([q.clone()]);
        let mut found = false;
        while let Some(n) = queue.pop_front() {
            if &n == p {
                found = true;
                break;
            }
            if let Some(next) = adj.get(&n) {
                for (m, sp) in next {
                    if seen.insert(m.clone()) {
                        parent.insert(m.clone(), (n.clone(), *sp));
                        queue.push_back(m.clone());
                    }
                }
            }
        }
        if found {
            // Reconstruct q → … → p, then prepend the special edge.
            let mut path: Vec<DepEdge> = Vec::new();
            let mut cur = p.clone();
            while &cur != q {
                let (prev, sp) = parent[&cur].clone();
                path.push(edge(&prev, &cur, sp));
                cur = prev;
            }
            path.reverse();
            let mut cycle = vec![edge(p, q, true)];
            cycle.extend(path);
            return Some(CycleWitness { edges: cycle });
        }
    }
    None
}

/// Check a [`CycleWitness`] against a tgd set: every edge must exist in
/// the dependency graph with the claimed kind and provenance, the edges
/// must form a closed walk, and at least one must be special. This is
/// the machine-checkable side of the diagnostic contract.
pub fn verify_witness(tgds: &[StTgd], witness: &CycleWitness) -> bool {
    if witness.edges.is_empty() {
        return false;
    }
    let edges = dependency_edges(tgds);
    for e in &witness.edges {
        match edges.get(&(e.from.clone(), e.to.clone(), e.special)) {
            Some(tis) => {
                let claimed: BTreeSet<usize> = e.tgds.iter().copied().collect();
                if !claimed.is_subset(tis) || claimed.is_empty() {
                    return false;
                }
            }
            None => return false,
        }
    }
    let closed = witness.edges.windows(2).all(|w| w[0].to == w[1].from)
        && witness
            .edges
            .first()
            .zip(witness.edges.last())
            .is_some_and(|(first, last)| last.to == first.from);
    closed && witness.edges.iter().any(|e| e.special)
}

/// Position *ranks* from the weak-acyclicity dependency graph: the
/// maximum number of **special** edges on any path ending at each
/// position. `None` when the tgd set is not weakly acyclic (ranks are
/// only well defined when no cycle crosses a special edge).
///
/// Ranks drive the classical FKMP size bound: a chase over a weakly
/// acyclic set invents nulls in at most `max rank` "generations", so
/// the derived instance is polynomial in the source with the maximum
/// rank as the driver of the degree. Positions that appear in no
/// dependency edge (constants-only, or never written) are absent from
/// the map — treat them as rank 0.
pub fn position_ranks(tgds: &[StTgd]) -> Option<BTreeMap<Position, usize>> {
    if !is_weakly_acyclic(tgds) {
        return None;
    }
    let edges = dependency_edges(tgds);
    let mut rank: BTreeMap<Position, usize> = BTreeMap::new();
    for (p, q, _) in edges.keys() {
        rank.entry(p.clone()).or_insert(0);
        rank.entry(q.clone()).or_insert(0);
    }
    // Bellman-Ford-style fixpoint. Regular cycles propagate equal ranks
    // and stabilize; special edges only occur on acyclic portions of
    // the graph (weak acyclicity), so the iteration terminates.
    loop {
        let mut changed = false;
        for (p, q, special) in edges.keys() {
            let cand = rank.get(p).copied().unwrap_or(0) + usize::from(*special);
            let r = rank.entry(q.clone()).or_insert(0);
            if cand > *r {
                *r = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some(rank)
}

struct RuleInfo {
    body_pos: BTreeMap<Name, BTreeSet<Position>>,
    head_pos: BTreeMap<Name, BTreeSet<Position>>,
    /// Universal variables exported to the head.
    frontier: Vec<Name>,
    /// Head-only variables.
    existentials: Vec<Name>,
}

/// Build the existential-dependency graph of joint acyclicity: one node
/// per (rule, existential variable), an edge `y → y'` whenever a null
/// invented for `y` can reach *every* body position of some frontier
/// variable of `y'`'s rule (so firing `y` can trigger a fresh `y'`).
fn existential_graph(tgds: &[StTgd]) -> (Vec<(usize, Name)>, Vec<Vec<usize>>) {
    let rules: Vec<RuleInfo> = tgds
        .iter()
        .map(|tgd| {
            let mut body_pos: BTreeMap<Name, BTreeSet<Position>> = BTreeMap::new();
            for atom in &tgd.lhs {
                for (i, t) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        body_pos
                            .entry(v.clone())
                            .or_default()
                            .insert((atom.relation.clone(), i));
                    }
                }
            }
            let mut head_pos: BTreeMap<Name, BTreeSet<Position>> = BTreeMap::new();
            for atom in &tgd.rhs {
                for (i, t) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        head_pos
                            .entry(v.clone())
                            .or_default()
                            .insert((atom.relation.clone(), i));
                    }
                }
            }
            let frontier: Vec<Name> = head_pos
                .keys()
                .filter(|v| body_pos.contains_key(v.as_str()))
                .cloned()
                .collect();
            let existentials: Vec<Name> = head_pos
                .keys()
                .filter(|v| !body_pos.contains_key(v.as_str()))
                .cloned()
                .collect();
            RuleInfo {
                body_pos,
                head_pos,
                frontier,
                existentials,
            }
        })
        .collect();

    // Mov(y) per existential variable, to fixpoint.
    let mut nodes: Vec<(usize, Name)> = Vec::new();
    for (ri, r) in rules.iter().enumerate() {
        for y in &r.existentials {
            nodes.push((ri, y.clone()));
        }
    }
    let movs: Vec<BTreeSet<Position>> = nodes
        .iter()
        .map(|(ri, y)| {
            let mut mov = rules[*ri].head_pos[y].clone();
            loop {
                let mut grew = false;
                for r in &rules {
                    for x in &r.frontier {
                        if r.body_pos[x].is_subset(&mov) && !r.head_pos[x].is_subset(&mov) {
                            mov.extend(r.head_pos[x].iter().cloned());
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            mov
        })
        .collect();

    // Edges y → y' between existential variables.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (yi, mov) in movs.iter().enumerate() {
        for (yj, (rj, _)) in nodes.iter().enumerate() {
            let triggered = rules[*rj]
                .frontier
                .iter()
                .any(|x| rules[*rj].body_pos[x].is_subset(mov));
            if triggered {
                adj[yi].push(yj);
            }
        }
    }
    (nodes, adj)
}

/// Longest path (counted in *nodes*) through the existential-dependency
/// graph — the number of null "generations" a jointly acyclic chase can
/// cascade through. `Some(0)` for a full tgd set (no existentials);
/// `None` when the graph is cyclic (not jointly acyclic).
pub fn existential_depth(tgds: &[StTgd]) -> Option<usize> {
    let (nodes, adj) = existential_graph(tgds);
    // Memoized longest path; Grey marks an in-progress node, so seeing
    // one again means a cycle.
    fn longest(
        n: usize,
        adj: &[Vec<usize>],
        memo: &mut [Option<usize>],
        on_stack: &mut [bool],
    ) -> Option<usize> {
        if let Some(d) = memo[n] {
            return Some(d);
        }
        if on_stack[n] {
            return None;
        }
        on_stack[n] = true;
        let mut best = 0usize;
        for &m in &adj[n] {
            best = best.max(longest(m, adj, memo, on_stack)?);
        }
        on_stack[n] = false;
        memo[n] = Some(best + 1);
        Some(best + 1)
    }
    let mut memo = vec![None; nodes.len()];
    let mut on_stack = vec![false; nodes.len()];
    let mut depth = 0usize;
    for n in 0..nodes.len() {
        depth = depth.max(longest(n, &adj, &mut memo, &mut on_stack)?);
    }
    Some(depth)
}

/// Is this set of tgds **jointly acyclic** (Krötzsch & Rudolph)?
///
/// Per existential variable `y` (variables are considered per-rule, so
/// no renaming-apart is needed), `Mov(y)` is the least set of positions
/// containing `y`'s head positions and closed under: if a frontier
/// variable `x` of any rule occurs in that rule's body *only* at
/// positions in `Mov(y)`, then `x`'s head positions are in `Mov(y)`.
/// The existential-dependency graph has an edge `y → y'` iff some
/// frontier variable of `y'`'s rule has all its body positions in
/// `Mov(y)`. The set is jointly acyclic iff this graph is acyclic —
/// a strictly weaker requirement than weak acyclicity.
pub fn is_jointly_acyclic(tgds: &[StTgd]) -> bool {
    let (nodes, adj) = existential_graph(tgds);

    // Acyclicity via three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    fn dfs(n: usize, adj: &[Vec<usize>], color: &mut [Color]) -> bool {
        color[n] = Color::Grey;
        for &m in &adj[n] {
            match color[m] {
                Color::Grey => return false,
                Color::White => {
                    if !dfs(m, adj, color) {
                        return false;
                    }
                }
                Color::Black => {}
            }
        }
        color[n] = Color::Black;
        true
    }
    let mut color = vec![Color::White; nodes.len()];
    for n in 0..nodes.len() {
        if color[n] == Color::White && !dfs(n, &adj, &mut color) {
            return false;
        }
    }
    true
}

/// Classify a tgd set's termination guarantee: weak acyclicity first,
/// then joint acyclicity, with a [`CycleWitness`] whenever weak
/// acyclicity fails.
pub fn classify_termination(tgds: &[StTgd]) -> TerminationReport {
    match weak_acyclicity_witness(tgds) {
        None => TerminationReport {
            class: TerminationClass::WeaklyAcyclic,
            witness: None,
        },
        Some(w) => TerminationReport {
            class: if is_jointly_acyclic(tgds) {
                TerminationClass::JointlyAcyclic
            } else {
                TerminationClass::Unknown
            },
            witness: Some(w),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parser::parse_tgd;

    #[test]
    fn empty_set_is_weakly_acyclic() {
        assert!(is_weakly_acyclic(&[]));
        assert!(is_jointly_acyclic(&[]));
        let r = classify_termination(&[]);
        assert_eq!(r.class, TerminationClass::WeaklyAcyclic);
        assert!(r.witness.is_none());
    }

    #[test]
    fn full_tgds_always_weakly_acyclic() {
        let tgds = vec![
            parse_tgd("S(x, y) -> T(x, y)").unwrap(),
            parse_tgd("T(x, y) -> S(y, x)").unwrap(),
        ];
        assert!(
            is_weakly_acyclic(&tgds),
            "no existentials, no special edges"
        );
    }

    #[test]
    fn self_feeding_existential_cycle_detected() {
        // S(x, y) -> ∃z S(y, z): special edge into S.2 which feeds back.
        let tgds = vec![parse_tgd("S(x, y) -> S(y, z)").unwrap()];
        assert!(!is_weakly_acyclic(&tgds));
        let w = weak_acyclicity_witness(&tgds).unwrap();
        assert!(verify_witness(&tgds, &w));
        assert!(w.edges[0].special);
        assert_eq!(w.tgd_indices(), vec![0]);
        // And joint acyclicity agrees it may diverge.
        assert!(!is_jointly_acyclic(&tgds));
        assert_eq!(classify_termination(&tgds).class, TerminationClass::Unknown);
    }

    #[test]
    fn acyclic_existentials_are_fine() {
        // S(x) -> ∃z T(x, z): special edge S.0 -> T.1, no cycle back.
        let tgds = vec![parse_tgd("S(x) -> T(x, z)").unwrap()];
        assert!(is_weakly_acyclic(&tgds));
        assert!(is_jointly_acyclic(&tgds));
    }

    #[test]
    fn two_rule_ping_pong_cycle_detected() {
        // S(x) -> ∃z T(x, z); T(x, y) -> S(y): special edge S.0→T.1,
        // regular T.1→S.0 — cycle through special edge.
        let tgds = vec![
            parse_tgd("S(x) -> T(x, z)").unwrap(),
            parse_tgd("T(x, y) -> S(y)").unwrap(),
        ];
        assert!(!is_weakly_acyclic(&tgds));
        let w = weak_acyclicity_witness(&tgds).unwrap();
        assert!(verify_witness(&tgds, &w));
        // The cycle names both rules.
        assert_eq!(w.tgd_indices(), vec![0, 1]);
        // The walk is closed and starts with the special edge.
        assert_eq!(w.edges.len(), 2);
        assert!(w.edges[0].special);
        assert!(!is_jointly_acyclic(&tgds));
    }

    #[test]
    fn regular_cycle_without_specials_is_fine() {
        // Copy cycles are fine: S(x) -> T(x); T(x) -> S(x).
        let tgds = vec![
            parse_tgd("S(x) -> T(x)").unwrap(),
            parse_tgd("T(x) -> S(x)").unwrap(),
        ];
        assert!(is_weakly_acyclic(&tgds));
        assert!(is_jointly_acyclic(&tgds));
    }

    #[test]
    fn inclusion_dependency_chain_ok() {
        // Emp(e, d) -> ∃m Dept(d, m); Dept(d, m) -> Mgr(m): no path back
        // into Emp positions.
        let tgds = vec![
            parse_tgd("Emp(e, d) -> Dept(d, m)").unwrap(),
            parse_tgd("Dept(d, m) -> Mgr(m)").unwrap(),
        ];
        assert!(is_weakly_acyclic(&tgds));
    }

    #[test]
    fn joint_acyclicity_certifies_guarded_feedback() {
        // S(x, y) -> ∃z T(y, z); T(x, y) & U(y) -> S(x, y).
        // Weak acyclicity sees the position cycle S.1 —∃→ T.1 → S.1 and
        // rejects. Joint acyclicity notices the feedback rule also
        // requires U(y) — and no rule ever produces U, so the invented
        // null can never re-trigger rule 0: Mov(z) stays {T.1}, the
        // dependency graph has no edge, the chase terminates.
        let tgds = vec![
            parse_tgd("S(x, y) -> T(y, z)").unwrap(),
            parse_tgd("T(x, y) & U(y) -> S(x, y)").unwrap(),
        ];
        assert!(!is_weakly_acyclic(&tgds), "WA rejects the position cycle");
        let w = weak_acyclicity_witness(&tgds).unwrap();
        assert!(verify_witness(&tgds, &w));
        assert!(is_jointly_acyclic(&tgds), "JA certifies termination anyway");
        let r = classify_termination(&tgds);
        assert_eq!(r.class, TerminationClass::JointlyAcyclic);
        assert!(r.witness.is_some(), "the spurious WA cycle is reported");
    }

    #[test]
    fn tampered_witness_rejected() {
        let tgds = vec![parse_tgd("S(x, y) -> S(y, z)").unwrap()];
        let mut w = weak_acyclicity_witness(&tgds).unwrap();
        assert!(verify_witness(&tgds, &w));
        // Claim the edge is regular: no longer verifies.
        w.edges[0].special = false;
        assert!(!verify_witness(&tgds, &w));
        // Empty witness never verifies.
        assert!(!verify_witness(&tgds, &CycleWitness { edges: vec![] }));
        // A witness against the wrong rule set fails too.
        let other = vec![parse_tgd("A(x) -> B(x)").unwrap()];
        let w2 = weak_acyclicity_witness(&tgds).unwrap();
        assert!(!verify_witness(&other, &w2));
    }

    #[test]
    fn ranks_none_unless_weakly_acyclic() {
        let tgds = vec![parse_tgd("S(x, y) -> S(y, z)").unwrap()];
        assert!(position_ranks(&tgds).is_none());
        assert!(existential_depth(&tgds).is_none());
    }

    #[test]
    fn ranks_count_special_edges_on_paths() {
        // S(x) -> ∃z T(x, z); T(x, y) -> ∃w U(y, w).
        // T.1 takes one special edge; U.1 takes a path with two.
        let tgds = vec![
            parse_tgd("S(x) -> T(x, z)").unwrap(),
            parse_tgd("T(x, y) -> U(y, w)").unwrap(),
        ];
        let ranks = position_ranks(&tgds).unwrap();
        assert_eq!(ranks[&(Name::new("T"), 1)], 1);
        assert_eq!(ranks[&(Name::new("U"), 1)], 2);
        assert_eq!(ranks[&(Name::new("T"), 0)], 0);
        assert_eq!(ranks.values().copied().max(), Some(2));
        // Two existential generations: z then w.
        assert_eq!(existential_depth(&tgds), Some(2));
    }

    #[test]
    fn full_tgds_have_rank_zero_and_depth_zero() {
        let tgds = vec![
            parse_tgd("S(x, y) -> T(x, y)").unwrap(),
            parse_tgd("T(x, y) -> S(y, x)").unwrap(),
        ];
        let ranks = position_ranks(&tgds).unwrap();
        assert!(ranks.values().all(|&r| r == 0));
        assert_eq!(existential_depth(&tgds), Some(0));
    }

    #[test]
    fn jointly_acyclic_set_has_depth_but_no_ranks() {
        // The guarded-feedback set: WA rejects, JA certifies.
        let tgds = vec![
            parse_tgd("S(x, y) -> T(y, z)").unwrap(),
            parse_tgd("T(x, y) & U(y) -> S(x, y)").unwrap(),
        ];
        assert!(position_ranks(&tgds).is_none());
        assert_eq!(existential_depth(&tgds), Some(1));
    }

    #[test]
    fn witness_serde_round_trip() {
        let tgds = vec![
            parse_tgd("S(x) -> T(x, z)").unwrap(),
            parse_tgd("T(x, y) -> S(y)").unwrap(),
        ];
        let w = weak_acyclicity_witness(&tgds).unwrap();
        let json = serde_json::to_string(&w).unwrap();
        let back: CycleWitness = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
        assert!(verify_witness(&tgds, &back));
    }
}
