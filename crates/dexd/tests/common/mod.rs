//! Minimal blocking HTTP client for driving a live `dexd` from
//! integration tests — the same role curl would play in a shell-based
//! CI job, kept in Rust so the `serve` CI job needs no external tools.
#![allow(dead_code)] // each test binary uses a subset of the helpers

use serde_json::Value as Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct Reply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Json,
    pub raw_body: String,
}

impl Reply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Dig a dotted path out of the JSON body.
    pub fn field(&self, path: &str) -> Option<&Json> {
        let mut cur = &self.body;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }
}

/// Send one request; `None` when the server closed the connection
/// without a complete response (what an injected `server.accept` fault
/// looks like from outside).
pub fn try_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<Reply> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: dexd-test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).ok()?;
    stream.write_all(body.as_bytes()).ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    parse_response(&raw)
}

/// Send one request, panicking on connection-level failure (the normal
/// path for tests that expect the daemon to be healthy).
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    match try_request(addr, method, path, body) {
        Some(r) => r,
        None => panic!("no response from {method} {path}"),
    }
}

fn parse_response(raw: &[u8]) -> Option<Reply> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| {
            l.split_once(':')
                .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let parsed = serde_json::from_str(body).unwrap_or(Json::Null);
    Some(Reply {
        status,
        headers,
        body: parsed,
        raw_body: body.to_string(),
    })
}

/// The employees example: a two-relation join with a key — compiles,
/// lints clean, terminates.
pub const EMPLOYEES: &str = "source Emp(name, dept);\n\
     source Dept(dept, mgr);\n\
     target Worker(name, dept, mgr);\n\
     key Worker(name);\n\
     Emp(n, d) & Dept(d, m) -> Worker(n, d, m);";

/// A plain copy mapping — cheap, deterministic output.
pub const COPY: &str = "source A(x);\ntarget B(x);\nA(v) -> B(v);";

/// A non-terminating mapping (value invention feeding itself): chases
/// until whatever budget trips — the tool for exercising 206 partials
/// and deadline-bound work.
pub const RUNAWAY: &str = "source S(a);\ntarget T(a, b);\nS(x) -> T(x, y);\nT(x, y) -> T(y, z);";
