//! Chaos matrix: every `server.*` fail-point site × {Error, Panic},
//! injected into a *single* long-lived daemon. After each injection
//! the contract is the same three-part check: the client that hit the
//! fault got either a well-formed 4xx/5xx or a clean connection drop
//! (never a half-written response), the very next request succeeds,
//! and the daemon's health endpoint still answers. A final persisted
//! chase plus drain proves the store layer survived the whole storm
//! fsck-clean.
//!
//! Run with `cargo test -p dexd --features failpoints --test chaos`.
#![cfg(feature = "failpoints")]

mod common;

use common::{request, try_request, COPY};
use dex_relational::fail::{arm, clear, exclusive, FailAction, SERVER_SITES};
use dexd::{Catalog, ServerConfig, ServerHandle};

const CHASE_BODY: &str = r#"{"source": {"A": [["x"]]}}"#;

/// What the faulted client is allowed to observe at each site.
fn check_faulted_reply(site: &str, action: FailAction, reply: Option<common::Reply>) {
    match (site, reply) {
        // The acceptor drops the connection before any response can
        // exist — the client sees a clean close, nothing torn.
        ("server.accept", reply) => assert!(
            reply.is_none(),
            "{site}/{action:?}: accept faults drop the connection"
        ),
        (_, None) => panic!("{site}/{action:?}: no response from a live worker"),
        (_, Some(reply)) => {
            let expect = match (site, action) {
                // An injected read error is indistinguishable from a
                // malformed request → 400; everything else lands
                // behind the panic barrier / dispatch guard → 500.
                ("server.read_request", FailAction::Error) => 400,
                _ => 500,
            };
            assert_eq!(
                reply.status, expect,
                "{site}/{action:?}: {}",
                reply.raw_body
            );
            assert!(
                reply.field("error.kind").is_some() || reply.status == 500,
                "{site}/{action:?}: error responses are typed JSON: {}",
                reply.raw_body
            );
        }
    }
}

#[test]
fn server_fail_matrix_leaves_the_daemon_serving() {
    let _gate = exclusive();
    clear();
    let root = std::env::temp_dir().join(format!("dexd-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let config = ServerConfig {
        workers: 2,
        store_root: Some(root.clone()),
        ..ServerConfig::default()
    };
    let catalog = Catalog::from_texts(&[("copy", COPY)]).expect("catalog");
    let srv = ServerHandle::spawn(config, catalog).expect("spawn");
    let addr = srv.addr();

    for &site in SERVER_SITES {
        for action in [FailAction::Error, FailAction::Panic] {
            arm(site, action, 1);
            let reply = try_request(addr, "POST", "/v1/mappings/copy/chase", CHASE_BODY);
            clear();
            check_faulted_reply(site, action, reply);

            // The daemon is unharmed: health answers and the very
            // next real request completes.
            let h = request(addr, "GET", "/healthz", "");
            assert_eq!(h.status, 200, "{site}/{action:?}: daemon stayed up");
            let ok = request(addr, "POST", "/v1/mappings/copy/chase", CHASE_BODY);
            assert_eq!(
                ok.status, 200,
                "{site}/{action:?}: next request serves: {}",
                ok.raw_body
            );
        }
    }

    // The storm is over; the injected panics were per-request faults,
    // not mapping bugs, so nothing is quarantined.
    let s = request(addr, "GET", "/statz", "");
    assert_eq!(
        s.field("mappings.copy.poisoned").and_then(|v| v.as_bool()),
        Some(false),
        "injected faults never poison the mapping: {}",
        s.raw_body
    );
    let panics = s.field("server.panics").and_then(|v| v.as_u64());
    assert!(
        panics.is_some_and(|n| n >= 3),
        "panic injections are counted: {}",
        s.raw_body
    );

    // Persist one chase through the battle-worn daemon, drain, and
    // fsck what it wrote: zero lost rounds, clean store.
    let persisted = request(
        addr,
        "POST",
        "/v1/mappings/copy/chase",
        r#"{"source": {"A": [["x"], ["y"]]}, "persist": true}"#,
    );
    assert_eq!(persisted.status, 200, "{}", persisted.raw_body);
    let dir = persisted
        .field("store")
        .and_then(|v| v.as_str())
        .expect("store dir in response")
        .to_string();
    srv.shutdown();
    let report = dex_store::fsck::fsck(std::path::Path::new(&dir)).expect("fsck runs");
    assert!(report.is_clean(), "store survives the chaos run: {report}");
    let _ = std::fs::remove_dir_all(&root);
}
