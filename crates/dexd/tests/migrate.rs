//! Live schema migration through the daemon: the
//! `POST /v1/mappings/{name}/migrate` contract, the migration
//! quarantine (503 for other operations while a migration holds the
//! slot), the `/readyz` availability body, and — the crash-safety
//! core — a drain-cancelled migration suspending at a durable,
//! resumable checkpoint that a later process finishes.

mod common;

use common::{request, COPY};
use dex_store::{fsck, MigrateStatus, Migration, StoreOptions};
use dexd::{Catalog, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(stem: &str) -> PathBuf {
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dexd-migrate-{stem}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn(specs: &[(&str, &str)], tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::default();
    tweak(&mut config);
    let catalog = Catalog::from_texts(specs).expect("catalog");
    ServerHandle::spawn(config, catalog).expect("spawn")
}

/// Persist one completed run for `emp` and return its store directory.
fn persist_run(srv: &ServerHandle, root: &Path) -> PathBuf {
    let body = r#"{"source": {"A": [["one"], ["two"]]}, "persist": true}"#;
    let r = request(srv.addr(), "POST", "/v1/mappings/emp/chase", body);
    assert_eq!(r.status, 200, "{}", r.raw_body);
    root.join("emp").join("run-0")
}

#[test]
fn migrate_endpoint_commits_and_shows_in_statz() {
    let root = scratch("commit");
    let srv = spawn(&[("emp", COPY)], |c| c.store_root = Some(root.clone()));
    let dir = persist_run(&srv, &root);

    let body = r#"{"run": "run-0", "schema": "target B(x, y);\n"}"#;
    let r = request(srv.addr(), "POST", "/v1/mappings/emp/migrate", body);
    assert_eq!(r.status, 200, "{}", r.raw_body);
    assert_eq!(r.field("committed").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(r.field("tuples").and_then(|v| v.as_u64()), Some(2));
    let smos = r.field("smos").and_then(|v| v.as_array()).unwrap();
    assert!(
        smos[0].as_str().unwrap().contains("ADD COLUMN B.y"),
        "{}",
        r.raw_body
    );

    // Staging is gone, the store is clean, the slot is released.
    assert!(!dir.join("migrate").exists());
    assert!(fsck(&dir).unwrap().is_clean());
    let s = request(srv.addr(), "GET", "/statz", "");
    assert_eq!(
        s.field("mappings.emp.migrating").and_then(|v| v.as_bool()),
        Some(false)
    );
    assert!(
        s.field("latency.migrate.count").and_then(|v| v.as_u64()) >= Some(1),
        "{}",
        s.raw_body
    );
    assert!(
        s.field("latency.chase.p99_us").and_then(|v| v.as_u64()) >= Some(1),
        "{}",
        s.raw_body
    );
    srv.shutdown();
}

#[test]
fn migrate_refusals_are_typed() {
    // No store root: nothing to migrate against.
    let srv = spawn(&[("emp", COPY)], |_| {});
    let r = request(
        srv.addr(),
        "POST",
        "/v1/mappings/emp/migrate",
        r#"{"run": "run-0", "schema": "target B(x);"}"#,
    );
    assert_eq!(r.status, 400, "{}", r.raw_body);
    srv.shutdown();

    let root = scratch("refuse");
    let srv = spawn(&[("emp", COPY)], |c| c.store_root = Some(root.clone()));
    persist_run(&srv, &root);
    let addr = srv.addr();
    let post = |body: &str| request(addr, "POST", "/v1/mappings/emp/migrate", body);

    assert_eq!(post(r#"{"schema": "target B(x);"}"#).status, 400, "no run");
    assert_eq!(
        post(r#"{"run": "../emp/run-0", "schema": "target B(x);"}"#).status,
        400,
        "path traversal refused"
    );
    assert_eq!(
        post(r#"{"run": "run-9", "schema": "target B(x);"}"#).status,
        404,
        "unknown run"
    );
    assert_eq!(
        post(r#"{"run": "run-0"}"#).status,
        400,
        "schema required without resume"
    );
    assert_eq!(
        post(r#"{"run": "run-0", "schema": "source A(x);\ntarget B(x);\nA(v) -> B(v);"}"#).status,
        400,
        "rules in the schema file refused"
    );
    // B(x) could be a rename of either same-shape table: ambiguous,
    // refused before any byte of the store is touched.
    let r = post(r#"{"run": "run-0", "schema": "target C(x);\ntarget D(x);"}"#);
    assert_eq!(r.status, 422, "{}", r.raw_body);
    assert_eq!(
        post(r#"{"run": "run-0", "resume": true}"#).status,
        409,
        "nothing staged to resume"
    );
    assert!(!root.join("emp").join("run-0").join("migrate").exists());
    srv.shutdown();
}

#[test]
fn migration_slot_quarantines_other_operations_and_readyz_reports_it() {
    let srv = spawn(&[("emp", COPY), ("emp2", COPY)], |_| {});
    let addr = srv.addr();
    let emp = srv.ctx().catalog.get("emp").unwrap().clone();
    assert!(emp.try_begin_migration());

    // Other operations on the migrating mapping: 503. Other tenants
    // and a second migration attempt: unaffected / 409.
    let r = request(
        addr,
        "POST",
        "/v1/mappings/emp/chase",
        r#"{"source": {"A": []}}"#,
    );
    assert_eq!(r.status, 503, "{}", r.raw_body);
    let r = request(
        addr,
        "POST",
        "/v1/mappings/emp/migrate",
        r#"{"run": "run-0", "schema": "target B(x);"}"#,
    );
    assert_eq!(r.status, 409, "{}", r.raw_body);
    let r = request(
        addr,
        "POST",
        "/v1/mappings/emp2/chase",
        r#"{"source": {"A": []}}"#,
    );
    assert_eq!(r.status, 200, "other tenants keep serving: {}", r.raw_body);

    // readyz: still ready (one of two available), but lists the
    // migrating mapping.
    let r = request(addr, "GET", "/readyz", "");
    assert_eq!(r.status, 200, "{}", r.raw_body);
    assert_eq!(
        r.field("migrating")
            .and_then(|v| v.as_array())
            .map(Vec::len),
        Some(1)
    );

    // Quarantine the second mapping too: now every mapping is
    // unavailable and readyz flips to 503.
    srv.ctx().catalog.get("emp2").unwrap().poison();
    let r = request(addr, "GET", "/readyz", "");
    assert_eq!(r.status, 503, "{}", r.raw_body);
    assert_eq!(
        r.field("status").and_then(|v| v.as_str()),
        Some("unavailable")
    );
    assert_eq!(
        r.field("quarantined")
            .and_then(|v| v.as_array())
            .map(Vec::len),
        Some(1)
    );

    emp.end_migration();
    let r = request(addr, "GET", "/readyz", "");
    assert_eq!(r.status, 200, "slot released: ready again");
    srv.shutdown();
}

#[test]
fn drain_cancellation_suspends_migration_at_a_resumable_checkpoint() {
    let root = scratch("drain");
    let srv = spawn(&[("emp", COPY)], |c| c.store_root = Some(root.clone()));
    let dir = persist_run(&srv, &root);

    // Trip the drain token before the migration starts: every governed
    // step sees the cancellation immediately, which is exactly what a
    // SIGTERM landing mid-migration looks like to the chase.
    srv.ctx().drain_cancel.cancel();
    let body = r#"{"run": "run-0", "schema": "target B(x, y);\n"}"#;
    let r = request(srv.addr(), "POST", "/v1/mappings/emp/migrate", body);
    assert_eq!(r.status, 206, "{}", r.raw_body);
    assert_eq!(r.field("resumable").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        r.field("exhausted.reason").and_then(|v| v.as_str()),
        Some("cancelled"),
        "{}",
        r.raw_body
    );
    srv.shutdown();

    // The staging checkpoint is durable, the live store untouched and
    // authoritative (fsck: a note, not a problem).
    assert!(matches!(
        dex_store::migrate::status(&dir).unwrap(),
        MigrateStatus::InProgress { .. }
    ));
    let report = fsck(&dir).unwrap();
    assert!(report.is_clean(), "{report}");
    assert!(
        format!("{report}").contains("migration in progress"),
        "{report}"
    );

    // "The next process": resume the staged migration directly against
    // the store — the daemon is gone, the directory carries everything.
    let mut mig = Migration::resume(&dir, StoreOptions::default()).unwrap();
    let gov = dex_chase::Governor::unlimited();
    match mig.run(dex_chase::ChaseOptions::default(), &gov).unwrap() {
        dex_store::MigrateRun::Done(state) => {
            assert_eq!(state.instance.fact_count(), 2);
            mig.finalize().unwrap();
        }
        dex_store::MigrateRun::Suspended(r) => panic!("resume suspended: {r:?}"),
    }
    assert!(matches!(
        dex_store::migrate::status(&dir).unwrap(),
        MigrateStatus::None
    ));
    assert!(fsck(&dir).unwrap().is_clean());
}
