//! End-to-end endpoint contract: every route and every status code in
//! the README table, driven against a live in-process daemon over real
//! sockets. This file is also the CI `serve` job's driver — it plays
//! the role a curl script would, without needing curl.

mod common;

use common::{request, try_request, COPY, EMPLOYEES, RUNAWAY};
use dexd::{Catalog, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::time::Duration;

fn spawn(specs: &[(&str, &str)], tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::default();
    tweak(&mut config);
    let catalog = Catalog::from_texts(specs).expect("catalog");
    ServerHandle::spawn(config, catalog).expect("spawn")
}

#[test]
fn health_ready_statz_roundtrip() {
    let srv = spawn(&[("emp", EMPLOYEES)], |_| {});
    let addr = srv.addr();
    let h = request(addr, "GET", "/healthz", "");
    assert_eq!(h.status, 200);
    assert_eq!(h.field("status").and_then(|s| s.as_str()), Some("ok"));
    let r = request(addr, "GET", "/readyz", "");
    assert_eq!(r.status, 200);
    let s = request(addr, "GET", "/statz", "");
    assert_eq!(s.status, 200);
    assert_eq!(s.field("v").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        s.field("mappings.emp.compiles").and_then(|v| v.as_bool()),
        Some(true)
    );
    srv.shutdown();
}

#[test]
fn compile_lint_explain_surfaces() {
    let srv = spawn(&[("emp", EMPLOYEES)], |_| {});
    let addr = srv.addr();
    let c = request(addr, "POST", "/v1/mappings/emp/compile", "{}");
    assert_eq!(c.status, 200);
    assert_eq!(c.field("compiled").and_then(|v| v.as_bool()), Some(true));
    let l = request(addr, "POST", "/v1/mappings/emp/lint", "{}");
    assert_eq!(l.status, 200, "employees lints clean: {}", l.raw_body);
    assert_eq!(l.field("errors").and_then(|v| v.as_bool()), Some(false));
    let e = request(addr, "POST", "/v1/mappings/emp/explain", "{}");
    assert_eq!(e.status, 200);
    assert!(e.field("plan").is_some(), "explain returns a plan object");
    srv.shutdown();
}

#[test]
fn lint_and_compile_accept_optimize_flag() {
    // A mapping with a redundant rule: the second st-tgd is subsumed
    // by the first, so the verified optimizer can delete it.
    const REDUNDANT: &str = "source Emp(name, dept);\n\
                             target T(name, dept);\n\
                             Emp(x, y) -> T(x, y);\n\
                             Emp(x, x) -> T(x, x);\n";
    let srv = spawn(&[("red", REDUNDANT)], |_| {});
    let addr = srv.addr();
    let l = request(
        addr,
        "POST",
        "/v1/mappings/red/lint",
        r#"{"optimize": true}"#,
    );
    assert_eq!(l.status, 200, "{}", l.raw_body);
    assert!(
        l.field("optimized.refused")
            .is_some_and(|v| matches!(v, serde_json::Value::Null)),
        "terminating mapping must not be refused: {}",
        l.raw_body
    );
    assert_eq!(
        l.field("optimized.optimized_size.deps")
            .and_then(|v| v.as_u64()),
        Some(1),
        "the subsumed rule is deleted: {}",
        l.raw_body
    );
    let rendered = l
        .field("optimized.mapping")
        .and_then(|v| v.as_str())
        .expect("optimized mapping text");
    assert!(rendered.contains("Emp(x, y) -> T(x, y);"));
    assert!(!rendered.contains("Emp(x, x)"));

    // compile with optimize:true compiles the optimized mapping.
    let c = request(
        addr,
        "POST",
        "/v1/mappings/red/compile",
        r#"{"optimize": true}"#,
    );
    assert_eq!(c.status, 200, "{}", c.raw_body);
    assert_eq!(c.field("compiled").and_then(|v| v.as_bool()), Some(true));
    assert!(c.field("optimized.rewrites").is_some());

    // Without the flag the response shape is unchanged.
    let plain = request(addr, "POST", "/v1/mappings/red/lint", "{}");
    assert!(plain.field("optimized").is_none());
    srv.shutdown();
}

#[test]
fn chase_exchange_put_happy_paths() {
    let srv = spawn(&[("emp", EMPLOYEES)], |_| {});
    let addr = srv.addr();
    let body = r#"{"source":{"Emp":[["ann","eng"]],"Dept":[["eng","bob"]]}}"#;
    let chase = request(addr, "POST", "/v1/mappings/emp/chase", body);
    assert_eq!(chase.status, 200, "{}", chase.raw_body);
    assert_eq!(
        chase.field("stats.v").and_then(|v| v.as_u64()),
        Some(1),
        "stats carry the wire version"
    );
    let rows = chase.field("target.Worker").and_then(|v| v.as_array());
    assert_eq!(rows.map(|r| r.len()), Some(1));

    let exch = request(addr, "POST", "/v1/mappings/emp/exchange", body);
    assert_eq!(exch.status, 200, "{}", exch.raw_body);
    assert_eq!(
        exch.field("target.Worker")
            .and_then(|v| v.as_array())
            .map(|r| r.len()),
        Some(1)
    );

    // Backward: rename ann's manager in the target, put it back.
    let put_body = r#"{
        "target": {"Worker": [["ann", "eng", "carol"]]},
        "source": {"Emp": [["ann", "eng"]], "Dept": [["eng", "bob"]]}
    }"#;
    let put = request(addr, "POST", "/v1/mappings/emp/put", put_body);
    assert_eq!(put.status, 200, "{}", put.raw_body);
    assert!(put.field("source").is_some());
    srv.shutdown();
}

#[test]
fn budget_exhaustion_answers_206_with_versioned_report() {
    let srv = spawn(&[("copy", COPY)], |_| {});
    let addr = srv.addr();
    // Three rows to copy, budget of one derived tuple: must trip.
    let body = r#"{
        "source": {"A": [["p"], ["q"], ["r"]]},
        "budget": {"max-tuples": 1}
    }"#;
    let resp = request(addr, "POST", "/v1/mappings/copy/chase", body);
    assert_eq!(resp.status, 206, "exhaustion is 206: {}", resp.raw_body);
    assert_eq!(
        resp.field("exhausted.v").and_then(|v| v.as_u64()),
        Some(1),
        "report carries the wire version: {}",
        resp.raw_body
    );
    assert_eq!(
        resp.field("exhausted.reason").and_then(|v| v.as_str()),
        Some("tuples")
    );
    assert!(resp.field("partial").is_some(), "partial result included");
    srv.shutdown();
}

#[test]
fn client_errors_are_typed_400_404_405_413() {
    let srv = spawn(&[("emp", EMPLOYEES)], |_| {});
    let addr = srv.addr();
    let bad_json = request(addr, "POST", "/v1/mappings/emp/chase", "{nope");
    assert_eq!(bad_json.status, 400);
    assert_eq!(
        bad_json.field("error.kind").and_then(|v| v.as_str()),
        Some("bad_json")
    );
    let bad_inst = request(
        addr,
        "POST",
        "/v1/mappings/emp/chase",
        r#"{"source": {"Nope": [["x"]]}}"#,
    );
    assert_eq!(bad_inst.status, 400);
    let missing = request(addr, "POST", "/v1/mappings/ghost/chase", "{}");
    assert_eq!(missing.status, 404);
    let badop = request(addr, "POST", "/v1/mappings/emp/frobnicate", "{}");
    assert_eq!(badop.status, 404);
    let badmethod = request(addr, "GET", "/v1/mappings/emp/chase", "");
    assert_eq!(badmethod.status, 405);
    let noroute = request(addr, "GET", "/nope", "");
    assert_eq!(noroute.status, 404);

    // Declared body over the cap: refused from the headers alone.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let huge = dexd::MAX_BODY_BYTES + 1;
    stream
        .write_all(
            format!("POST /v1/mappings/emp/chase HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n")
                .as_bytes(),
        )
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 413"), "{text}");
    srv.shutdown();
}

#[test]
fn bad_budget_overrides_are_400_with_the_shared_grammar() {
    let srv = spawn(&[("copy", COPY)], |_| {});
    let addr = srv.addr();
    let resp = request(
        addr,
        "POST",
        "/v1/mappings/copy/chase",
        r#"{"source": {"A": [["x"]]}, "budget": {"timeout": "soon"}}"#,
    );
    assert_eq!(resp.status, 400, "{}", resp.raw_body);
    let msg = resp
        .field("error.message")
        .and_then(|v| v.as_str())
        .unwrap_or("");
    // The same wording BudgetArgs gives the CLI — one parser, both
    // surfaces.
    assert!(msg.contains("500ms"), "shared grammar in message: {msg}");
    let unknown = request(
        addr,
        "POST",
        "/v1/mappings/copy/chase",
        r#"{"source": {"A": [["x"]]}, "budget": {"frobs": 3}}"#,
    );
    assert_eq!(unknown.status, 400);
    srv.shutdown();
}

#[test]
fn admission_control_refuses_422_before_chasing() {
    let srv = spawn(&[("copy", COPY)], |c| c.deny_cost = Some(1));
    let addr = srv.addr();
    // Predicted tuples for 3 source rows exceed a ceiling of 1.
    let resp = request(
        addr,
        "POST",
        "/v1/mappings/copy/chase",
        r#"{"source": {"A": [["p"], ["q"], ["r"]]}}"#,
    );
    assert_eq!(resp.status, 422, "{}", resp.raw_body);
    assert_eq!(
        resp.field("error.kind").and_then(|v| v.as_str()),
        Some("admission_refused")
    );
    assert!(
        resp.field("predicted").is_some(),
        "the refusal shows its evidence"
    );
    let statz = request(addr, "GET", "/statz", "");
    assert_eq!(
        statz.field("server.refused").and_then(|v| v.as_u64()),
        Some(1)
    );
    srv.shutdown();
}

#[test]
fn full_queue_sheds_429_with_retry_after() {
    // One worker, one queue slot. Two connections that send only a
    // partial request each pin the worker and fill the queue
    // deterministically; the third must be shed by the acceptor.
    let srv = spawn(&[("emp", EMPLOYEES)], |c| {
        c.workers = 1;
        c.queue_capacity = 1;
    });
    let addr = srv.addr();
    let hold = |n: &str| {
        let mut s = std::net::TcpStream::connect(addr).expect(n);
        s.write_all(b"POST /v1/mappings/emp/chase HTTP/1.1\r\n")
            .expect(n);
        s
    };
    let _pin_worker = hold("first");
    std::thread::sleep(Duration::from_millis(150)); // let a worker adopt it
    let _fill_queue = hold("second");
    std::thread::sleep(Duration::from_millis(150)); // let the acceptor enqueue it
    let shed = request(addr, "GET", "/healthz", "");
    assert_eq!(shed.status, 429, "{}", shed.raw_body);
    assert_eq!(shed.header("Retry-After"), Some("1"));
    assert_eq!(
        shed.field("error.kind").and_then(|v| v.as_str()),
        Some("overloaded")
    );
    drop(_pin_worker);
    drop(_fill_queue);
    srv.shutdown();
}

#[test]
fn per_tenant_inflight_cap_sheds_429() {
    let srv = spawn(&[("runaway", RUNAWAY), ("copy", COPY)], |c| {
        c.max_inflight_per_mapping = 1;
        c.workers = 4;
        // Let the runaway chase run to its *deadline*: auto-budget
        // would synthesize a rounds cap and trip first.
        c.auto_budget = false;
    });
    let addr = srv.addr();
    // A deadline-bound runaway chase occupies `runaway`'s single slot
    // for ~600ms.
    let slow = std::thread::spawn(move || {
        request(
            addr,
            "POST",
            "/v1/mappings/runaway/chase",
            r#"{"source": {"S": [["seed"]]}, "budget": {"timeout": "600ms"}}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));
    let shed = request(
        addr,
        "POST",
        "/v1/mappings/runaway/chase",
        r#"{"source": {"S": [["seed"]]}}"#,
    );
    assert_eq!(shed.status, 429, "{}", shed.raw_body);
    assert_eq!(
        shed.field("error.kind").and_then(|v| v.as_str()),
        Some("tenant_overloaded")
    );
    // Other tenants are unaffected while `runaway` is saturated.
    let other = request(
        addr,
        "POST",
        "/v1/mappings/copy/chase",
        r#"{"source": {"A": [["x"]]}}"#,
    );
    assert_eq!(other.status, 200);
    let slow = slow.join().expect("slow request");
    assert_eq!(slow.status, 206, "deadline trip is a partial");
    assert_eq!(
        slow.field("exhausted.reason").and_then(|v| v.as_str()),
        Some("deadline")
    );
    srv.shutdown();
}

#[test]
fn drain_answers_503_then_completes_within_deadline() {
    let srv = spawn(&[("runaway", RUNAWAY)], |c| {
        c.drain_deadline = Duration::from_millis(300);
        // Only the 30s request deadline and the drain cancel govern
        // this chase — no synthesized rounds cap tripping early.
        c.auto_budget = false;
    });
    let addr = srv.addr();
    // Occupy a worker past the shutdown point with a long chase.
    let slow = std::thread::spawn(move || {
        request(
            addr,
            "POST",
            "/v1/mappings/runaway/chase",
            r#"{"source": {"S": [["seed"]]}, "budget": {"timeout": "30s"}}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));
    srv.request_shutdown();
    std::thread::sleep(Duration::from_millis(50));
    // New work is refused while the slow request drains.
    let refused = try_request(addr, "GET", "/healthz", "");
    if let Some(r) = &refused {
        assert_eq!(r.status, 503, "{}", r.raw_body);
        assert_eq!(r.header("Retry-After"), Some("1"));
    } // None = listener already closed because the drain finished: also fine.

    // The in-flight request survives shutdown as a 206 partial — the
    // drain deadline cancels it, it does not get dropped.
    let slow = slow.join().expect("drained request");
    assert_eq!(slow.status, 206, "{}", slow.raw_body);
    assert_eq!(
        slow.field("exhausted.reason").and_then(|v| v.as_str()),
        Some("cancelled")
    );
    srv.shutdown();
}

#[test]
fn persisted_chase_writes_a_clean_store() {
    let root = std::env::temp_dir().join(format!("dexd-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let srv = spawn(&[("emp", EMPLOYEES)], |c| c.store_root = Some(root.clone()));
    let addr = srv.addr();
    let body =
        r#"{"source": {"Emp": [["ann", "eng"]], "Dept": [["eng", "bob"]]}, "persist": true}"#;
    let resp = request(addr, "POST", "/v1/mappings/emp/chase", body);
    assert_eq!(resp.status, 200, "{}", resp.raw_body);
    let dir = resp
        .field("store")
        .and_then(|v| v.as_str())
        .expect("store dir in response")
        .to_string();
    srv.shutdown();
    let report = dex_store::fsck::fsck(std::path::Path::new(&dir)).expect("fsck runs");
    assert!(report.is_clean(), "persisted store is clean: {report}");

    // Restart against the same store root: the run counter must seed
    // past the predecessor's directories, not collide with `run-0`.
    let srv = spawn(&[("emp", EMPLOYEES)], |c| c.store_root = Some(root.clone()));
    let resp2 = request(srv.addr(), "POST", "/v1/mappings/emp/chase", body);
    assert_eq!(
        resp2.status, 200,
        "persist works after a restart: {}",
        resp2.raw_body
    );
    let dir2 = resp2
        .field("store")
        .and_then(|v| v.as_str())
        .expect("store dir in response")
        .to_string();
    assert_ne!(dir, dir2, "restarted daemon picks a fresh run directory");
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn slow_loris_cannot_pin_a_worker_past_the_read_deadline() {
    let srv = spawn(&[("emp", EMPLOYEES)], |c| {
        c.workers = 1;
        c.io_timeout = Duration::from_millis(400);
    });
    let addr = srv.addr();
    // Occupy the only worker with a header trickle: every gap is well
    // under any per-read timeout, so only the absolute request-read
    // deadline can end it.
    let loris = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /v1/mappings/emp/chase HTTP/1.1\r\nX-Slow: ")
            .expect("preamble");
        let start = std::time::Instant::now();
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(50));
            if s.write_all(b"x").is_err() {
                return Some(start.elapsed()); // server cut us off
            }
        }
        None
    });
    std::thread::sleep(Duration::from_millis(100)); // let the worker adopt it
                                                    // The worker frees itself once the deadline trips; a normal
                                                    // request queued behind the loris then gets served.
    let h = request(addr, "GET", "/healthz", "");
    assert_eq!(h.status, 200, "{}", h.raw_body);
    let cut = loris
        .join()
        .expect("loris thread")
        .expect("loris connection was cut off");
    assert!(cut < Duration::from_secs(3), "cut at {cut:?}, not ~400ms");
    srv.shutdown();
}

#[test]
fn uncapped_budget_falls_back_to_a_finite_rounds_ceiling() {
    // No deadline, no overrides, no synthesized caps (auto-budget off;
    // RUNAWAY's static bounds are unbounded anyway): the daemon still
    // refuses to chase forever — the fallback rounds ceiling trips
    // into a typed 206 partial instead of pinning a worker for good.
    let srv = spawn(&[("runaway", RUNAWAY)], |c| c.auto_budget = false);
    let resp = request(
        srv.addr(),
        "POST",
        "/v1/mappings/runaway/chase",
        r#"{"source": {"S": [["seed"]]}}"#,
    );
    assert_eq!(resp.status, 206, "{}", resp.raw_body);
    assert_eq!(
        resp.field("exhausted.reason").and_then(|v| v.as_str()),
        Some("rounds")
    );
    srv.shutdown();
}

#[test]
fn transfer_encoding_chunked_is_refused_with_400() {
    let srv = spawn(&[("emp", EMPLOYEES)], |_| {});
    let mut s = std::net::TcpStream::connect(srv.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    s.write_all(
        b"POST /v1/mappings/emp/chase HTTP/1.1\r\n\
          Transfer-Encoding: chunked\r\n\r\n\
          5\r\nhello\r\n0\r\n\r\n",
    )
    .expect("write");
    let mut raw = Vec::new();
    let _ = s.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 400"),
        "chunked requests are refused, not run on an empty body: {text}"
    );
    srv.shutdown();
}

#[test]
fn uncompilable_mapping_still_serves_analysis_endpoints() {
    // A mapping the lens compiler refuses (no key ⇒ depends on the
    // compiler's rules) — use one with an unsafe existential join the
    // compiler cannot lens. If it *does* compile, the test is vacuous
    // but still passes the analysis half.
    let srv = spawn(&[("emp", EMPLOYEES), ("copy", COPY)], |_| {});
    let addr = srv.addr();
    for name in ["emp", "copy"] {
        let l = request(addr, "POST", &format!("/v1/mappings/{name}/lint"), "{}");
        assert!(l.status == 200 || l.status == 422);
        let e = request(addr, "POST", &format!("/v1/mappings/{name}/explain"), "{}");
        assert_eq!(e.status, 200);
    }
    srv.shutdown();
}
