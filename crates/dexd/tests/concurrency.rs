//! Concurrency property: the daemon is *observationally sequential*.
//! N clients firing exchange requests at the same instant — each at
//! its own mapping, plus everyone hammering one shared read-only
//! mapping — must receive byte-for-byte the responses a one-at-a-time
//! client would. Any cross-request state leak (shared null counters,
//! a mutated catalog entry, stats bleeding into payloads) breaks the
//! byte comparison immediately.

mod common;

use common::{request, EMPLOYEES};
use dexd::{Catalog, ServerConfig, ServerHandle};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

/// Per-tenant mapping text: the copy shape, with relation names owned
/// by that tenant so the workloads are fully disjoint.
fn tenant_text(i: usize) -> String {
    format!("source A{i}(x);\ntarget B{i}(x);\nA{i}(v) -> B{i}(v);")
}

/// Exchange body for tenant `i` carrying the generated rows.
fn tenant_body(i: usize, rows: &[u8]) -> String {
    let rows: Vec<String> = rows.iter().map(|r| format!(r#"["v{r}"]"#)).collect();
    format!(r#"{{"source": {{"A{i}": [{}]}}}}"#, rows.join(", "))
}

/// Exchange body for the shared employees mapping: `Emp` rows from the
/// generated pairs, `Dept` rows derived so every join succeeds.
fn shared_body(rows: &[(u8, u8)]) -> String {
    // Names are made unique by row index so the `key Worker(name)`
    // constraint is never violated by the generated data.
    let emp: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(i, (n, d))| format!(r#"["n{n}_{i}", "d{d}"]"#))
        .collect();
    let mut depts: Vec<u8> = rows.iter().map(|(_, d)| *d).collect();
    depts.sort_unstable();
    depts.dedup();
    let dept: Vec<String> = depts
        .iter()
        .map(|d| format!(r#"["d{d}", "m{d}"]"#))
        .collect();
    format!(
        r#"{{"source": {{"Emp": [{}], "Dept": [{}]}}}}"#,
        emp.join(", "),
        dept.join(", ")
    )
}

/// Issue every request one at a time and return `(status, body)` per
/// request — the reference observation.
fn run_sequential(addr: SocketAddr, reqs: &[(String, String)]) -> Vec<(u16, String)> {
    reqs.iter()
        .map(|(path, body)| {
            let r = request(addr, "POST", path, body);
            (r.status, r.raw_body)
        })
        .collect()
}

/// Issue every request from its own thread, released together by a
/// barrier, and return the observations in request order.
fn run_concurrent(addr: SocketAddr, reqs: &[(String, String)]) -> Vec<(u16, String)> {
    let barrier = Arc::new(Barrier::new(reqs.len()));
    let handles: Vec<_> = reqs
        .iter()
        .cloned()
        .map(|(path, body)| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let r = request(addr, "POST", &path, &body);
                (r.status, r.raw_body)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect()
}

const TENANTS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent == sequential, byte for byte, across disjoint
    /// tenants and a shared read-only mapping.
    #[test]
    fn concurrent_exchanges_match_sequential(
        tenant_rows in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 0..5),
            TENANTS..TENANTS + 1,
        ),
        shared_rows in proptest::collection::vec((0u8..4, 0u8..4), 0..5),
    ) {
        let texts: Vec<(String, String)> = (0..TENANTS)
            .map(|i| (format!("t{i}"), tenant_text(i)))
            .chain(std::iter::once(("shared".to_string(), EMPLOYEES.to_string())))
            .collect();
        let specs: Vec<(&str, &str)> = texts
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let config = ServerConfig {
            workers: TENANTS + 2, // true overlap: every client runs at once
            queue_capacity: 64,
            ..ServerConfig::default()
        };
        let catalog = Catalog::from_texts(&specs).expect("catalog");
        let srv = ServerHandle::spawn(config, catalog).expect("spawn");
        let addr = srv.addr();

        // One request per tenant, plus one shared-mapping request per
        // tenant (everyone reads the same entry concurrently).
        let mut reqs: Vec<(String, String)> = Vec::new();
        for (i, rows) in tenant_rows.iter().enumerate() {
            reqs.push((format!("/v1/mappings/t{i}/exchange"), tenant_body(i, rows)));
        }
        for _ in 0..TENANTS {
            reqs.push(("/v1/mappings/shared/exchange".to_string(), shared_body(&shared_rows)));
        }

        let sequential = run_sequential(addr, &reqs);
        for (i, (status, body)) in sequential.iter().enumerate() {
            prop_assert_eq!(*status, 200, "request {} failed sequentially: {}", i, body);
        }
        let concurrent = run_concurrent(addr, &reqs);
        for (i, (seq, conc)) in sequential.iter().zip(concurrent.iter()).enumerate() {
            prop_assert_eq!(seq, conc, "request {} diverged under concurrency", i);
        }
        srv.shutdown();
    }
}
