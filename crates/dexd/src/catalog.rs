//! The mapping catalog: every named mapping the daemon serves.
//!
//! Loaded once at startup and shared read-mostly: the catalog is an
//! immutable `BTreeMap` of [`Arc`]-ed entries, so workers resolve a
//! tenant with one map lookup and no lock. Per-entry *mutable* state
//! is confined to atomics — the in-flight gauge backing the per-tenant
//! cap, served/shed counters, and the quarantine flag a panic barrier
//! sets. A poisoned entry stays loaded (its name still resolves, its
//! stats still render) but every operation on it answers 503 until
//! the daemon restarts: a deterministic bug in one tenant's mapping
//! must not be retried into a crash loop while other tenants share
//! the process.

use dex_core::{compile, Engine};
use dex_logic::{parse_mapping_with_spans, Mapping, SourceMap};
use dex_rellens::Environment;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One served mapping and its per-tenant runtime state.
pub struct CatalogEntry {
    /// The catalog key, also the URL path segment.
    pub name: String,
    /// The mapping source text, verbatim (persisted into stores).
    pub text: String,
    /// The parsed mapping.
    pub mapping: Mapping,
    /// Span side table for diagnostics with carets.
    pub spans: SourceMap,
    /// The compiled lens engine, or the refusal reason: `exchange` and
    /// `put` need it, `chase`/`lint`/`explain` run off the mapping
    /// alone.
    pub engine: Result<Engine, String>,
    poisoned: AtomicBool,
    migrating: AtomicBool,
    in_flight: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    store_seq: AtomicU64,
}

impl CatalogEntry {
    fn new(name: &str, text: String) -> Result<Self, String> {
        let (mapping, spans) =
            parse_mapping_with_spans(&text).map_err(|e| format!("mapping `{name}`: {e}"))?;
        let engine = compile(&mapping)
            .map_err(|e| e.to_string())
            .and_then(|t| Engine::new(t, Environment::new()).map_err(|e| e.to_string()));
        Ok(CatalogEntry {
            name: name.to_string(),
            text,
            mapping,
            spans,
            engine,
            poisoned: AtomicBool::new(false),
            migrating: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            store_seq: AtomicU64::new(0),
        })
    }

    /// Quarantine this mapping after a panic escaped one of its
    /// requests. Sticky until restart.
    pub fn poison(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        self.poisoned.store(true, Ordering::Release);
    }

    /// Is this mapping quarantined?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Try to claim the (single) migration slot for this mapping.
    /// `false` means a migration is already running — the caller
    /// answers 409. While held, every other operation on the mapping
    /// answers 503 (the store's files are about to be swapped under
    /// it); release with [`end_migration`](Self::end_migration).
    pub fn try_begin_migration(&self) -> bool {
        self.migrating
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Release the migration slot (commit, suspension, or failure —
    /// a suspended migration's staging is durable on disk and does not
    /// need the in-memory flag to survive).
    pub fn end_migration(&self) {
        self.migrating.store(false, Ordering::Release);
    }

    /// Is a live migration currently running against this mapping?
    pub fn is_migrating(&self) -> bool {
        self.migrating.load(Ordering::Acquire)
    }

    /// Try to claim an in-flight slot; `None` when `cap` concurrent
    /// requests are already running against this mapping (the caller
    /// sheds with 429). `cap == 0` means uncapped.
    pub fn try_begin(self: &Arc<Self>, cap: u64) -> Option<InFlightGuard> {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if cap > 0 && prev >= cap {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        Some(InFlightGuard(Arc::clone(self)))
    }

    /// Next per-entry store-directory sequence number.
    pub fn next_store_seq(&self) -> u64 {
        self.store_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Start the store-directory sequence at `next` (startup only, see
    /// [`Catalog::seed_store_seqs`]).
    pub fn seed_store_seq(&self, next: u64) {
        self.store_seq.store(next, Ordering::Relaxed);
    }

    /// Stats snapshot for `/statz`.
    pub fn stats_json(&self) -> serde_json::Value {
        serde_json::json!({
            "served": self.served.load(Ordering::Relaxed),
            "in_flight": self.in_flight.load(Ordering::Relaxed),
            "shed": self.shed.load(Ordering::Relaxed),
            "panics": self.panics.load(Ordering::Relaxed),
            "poisoned": self.is_poisoned(),
            "migrating": self.is_migrating(),
            "compiles": self.engine.is_ok(),
        })
    }
}

/// RAII in-flight slot: decrements the gauge on drop, even when the
/// request panics (the guard lives across the panic barrier).
pub struct InFlightGuard(Arc<CatalogEntry>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The immutable, share-by-`Arc` catalog.
pub struct Catalog {
    entries: BTreeMap<String, Arc<CatalogEntry>>,
}

/// Is `name` usable as both a catalog key and a URL path segment?
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl Catalog {
    /// Build a catalog from `(name, mapping text)` pairs. Every text
    /// must parse; compilation may fail (the entry then serves only
    /// the chase/analysis endpoints).
    pub fn from_texts<N, T>(specs: &[(N, T)]) -> Result<Self, String>
    where
        N: AsRef<str>,
        T: AsRef<str>,
    {
        let mut entries = BTreeMap::new();
        for (name, text) in specs {
            let name = name.as_ref();
            if !valid_name(name) {
                return Err(format!(
                    "invalid mapping name `{name}` (use [A-Za-z0-9._-], max 128 chars)"
                ));
            }
            let entry = CatalogEntry::new(name, text.as_ref().to_string())?;
            if entries.insert(name.to_string(), Arc::new(entry)).is_some() {
                return Err(format!("duplicate mapping name `{name}`"));
            }
        }
        if entries.is_empty() {
            return Err("catalog is empty: serve at least one mapping".to_string());
        }
        Ok(Catalog { entries })
    }

    /// Build a catalog by reading `(name, path)` mapping files.
    pub fn load(specs: &[(String, std::path::PathBuf)]) -> Result<Self, String> {
        let mut texts = Vec::with_capacity(specs.len());
        for (name, path) in specs {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            texts.push((name.clone(), text));
        }
        Catalog::from_texts(&texts)
    }

    /// Point every entry's store-run counter past the `run-<n>`
    /// directories already present under `root`: stores are durable
    /// but the counter is not, so a restarted daemon would otherwise
    /// re-issue `run-0` and every `persist` request would answer 500
    /// (`Store::create` refuses to overwrite) until the counter
    /// climbed past the predecessor's runs.
    pub fn seed_store_seqs(&self, root: &std::path::Path) {
        for entry in self.entries.values() {
            let mut next = 0u64;
            if let Ok(dir) = std::fs::read_dir(root.join(&entry.name)) {
                for item in dir.flatten() {
                    let seq = item
                        .file_name()
                        .to_str()
                        .and_then(|n| n.strip_prefix("run-"))
                        .and_then(|n| n.parse::<u64>().ok());
                    if let Some(n) = seq {
                        next = next.max(n.saturating_add(1));
                    }
                }
            }
            entry.seed_store_seq(next);
        }
    }

    /// Look up a tenant.
    pub fn get(&self, name: &str) -> Option<&Arc<CatalogEntry>> {
        self.entries.get(name)
    }

    /// Every entry, in name order.
    pub fn entries(&self) -> impl Iterator<Item = &Arc<CatalogEntry>> {
        self.entries.values()
    }

    /// Number of loaded mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true — `from_texts` refuses empty catalogs — but clippy
    /// (rightly) wants `len` paired with `is_empty`.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMP: &str = "source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) -> Manager(x, y);";

    #[test]
    fn catalog_rejects_bad_names_and_duplicates() {
        assert!(Catalog::from_texts(&[("a/b", EMP)]).is_err());
        assert!(Catalog::from_texts(&[("", EMP)]).is_err());
        assert!(Catalog::from_texts(&[("emp", EMP), ("emp", EMP)]).is_err());
        let empty: &[(&str, &str)] = &[];
        assert!(Catalog::from_texts(empty).is_err());
    }

    #[test]
    fn poisoning_is_sticky_and_visible_in_stats() {
        let cat = Catalog::from_texts(&[("emp", EMP)]).unwrap();
        let e = cat.get("emp").unwrap();
        assert!(!e.is_poisoned());
        e.poison();
        assert!(e.is_poisoned());
        let s = e.stats_json();
        assert_eq!(s["poisoned"].as_bool(), Some(true));
        assert_eq!(s["panics"].as_u64(), Some(1));
    }

    #[test]
    fn store_seq_seeds_past_runs_left_by_a_previous_process() {
        let root = std::env::temp_dir().join(format!(
            "dexd-seed-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("emp").join("run-0")).expect("mkdir");
        std::fs::create_dir_all(root.join("emp").join("run-7")).expect("mkdir");
        std::fs::create_dir_all(root.join("emp").join("not-a-run")).expect("mkdir");
        let cat = Catalog::from_texts(&[("emp", EMP), ("emp2", EMP)]).unwrap();
        cat.seed_store_seqs(&root);
        let e = cat.get("emp").unwrap();
        assert_eq!(e.next_store_seq(), 8, "first fresh run skips past run-7");
        assert_eq!(e.next_store_seq(), 9);
        let e2 = cat.get("emp2").unwrap();
        assert_eq!(e2.next_store_seq(), 0, "no prior runs: counter starts at 0");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn in_flight_cap_sheds_and_guard_releases() {
        let cat = Catalog::from_texts(&[("emp", EMP)]).unwrap();
        let e = cat.get("emp").unwrap();
        let g1 = e.try_begin(2).unwrap();
        let _g2 = e.try_begin(2).unwrap();
        assert!(e.try_begin(2).is_none(), "third concurrent request sheds");
        drop(g1);
        assert!(e.try_begin(2).is_some(), "slot freed on guard drop");
        assert!(e.try_begin(0).is_some(), "cap 0 = uncapped");
    }
}
