//! Request routing and execution: the `/v1/mappings/{name}/{op}`
//! pipeline with its robustness ladder.
//!
//! Every mapping operation climbs the same ladder, cheapest refusal
//! first, so a request that will not be served costs as little as
//! possible:
//!
//! 1. **resolve** — unknown mapping or operation → 404;
//! 2. **quarantine** — the mapping previously escaped a panic → 503;
//! 3. **per-tenant cap** — too many in-flight requests against this
//!    mapping → 429 + `Retry-After` (one hostile tenant cannot occupy
//!    every worker);
//! 4. **parse** — malformed body JSON or instance → 400;
//! 5. **admission** — the static cost pass proves the chase would blow
//!    the configured ceiling (DEX502-style) → 422 *before a single
//!    tuple is chased*;
//! 6. **budget** — server defaults ∩ request overrides ∩ synthesized
//!    `Budget::from_bounds` caps, plus the server's drain
//!    [`CancelToken`](dex_relational::CancelToken): exhaustion
//!    mid-run returns a typed partial
//!    result (206 + `ExhaustionReport`), not an error;
//! 7. **panic barrier** — a panic inside the operation is caught,
//!    answered with 500, and quarantines the mapping.

use crate::catalog::CatalogEntry;
use crate::http::{Request, Response};
use crate::json::{instance_from_json, instance_to_json};
use crate::server::ServerCtx;
use dex_analyze::{analyze_with, chase_bounds, explain_with, has_errors, sort_diagnostics};
use dex_chase::{exchange_checkpointed, exchange_governed, ChaseOptions, ChaseOutcome, Governor};
use dex_core::EngineForward;
use dex_evolution::{
    compile_migration, diff, prefix_instance, render_mapping_dex, render_schema_dex,
    Catalog as EvCatalog,
};
use dex_logic::{parse_mapping, Mapping};
use dex_relational::budget_args::BudgetArgs;
use dex_relational::{fail, Budget, Instance, SourceStats};
use dex_store::migrate::{self as store_migrate, MigrateStatus};
use dex_store::{
    MigratePlan, MigrateRun, Migration, Store, StoreError, StoreMode, StoreOptions, StoreSink,
};
use serde_json::{json, Map, Value as Json};
use std::sync::Arc;

/// Safety factor for synthesized admission budgets, mirroring the
/// CLI's `--auto-budget` (see `dexcli`): the static bounds are sound
/// over-approximations, so any factor ≥ 1 never trips an admitted
/// mapping; 2 is headroom against accounting drift.
const AUTO_BUDGET_SAFETY: u64 = 2;

/// Rounds ceiling applied when the effective budget ends up with no
/// cap on *any* axis (unlimited server default, no request overrides,
/// static bounds unbounded because the mapping is not weakly acyclic).
/// Without it a single chase against a divergent mapping pins a worker
/// forever — uncancellable short of shutting the daemon down. Matches
/// the historical `ChaseOptions` default, and routes through the
/// governor so tripping it yields a typed 206 partial, not an error.
const FALLBACK_MAX_ROUNDS: u64 = 10_000;

/// Route one parsed request to its handler. Never panics outward —
/// the caller still wraps dispatch in the per-request panic barrier,
/// but everything before dispatch is plain error handling.
pub fn route(req: &Request, ctx: &ServerCtx) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, json!({"v": 1, "status": "ok"})),
        ("GET", "/readyz") => readyz(ctx),
        ("GET", "/statz") => Response::json(200, ctx.statz()),
        (method, path) => match path.strip_prefix("/v1/mappings/") {
            Some(rest) => mapping_request(method, rest, &req.body, ctx),
            None => Response::error(404, "not_found", format!("no route for {path}")),
        },
    }
}

/// `GET /readyz`: readiness with per-mapping availability. A mapping
/// is unavailable while quarantined (panic) or mid-migration (its
/// store files are about to be swapped); the response lists both, but
/// the daemon only answers 503 when it is draining or when *every*
/// mapping is unavailable — one quarantined tenant must not fail the
/// whole process out of a load balancer.
fn readyz(ctx: &ServerCtx) -> Response {
    if ctx.is_draining() {
        return Response::error(503, "draining", "shutting down: not accepting new work")
            .with_retry_after(1);
    }
    let mut quarantined: Vec<Json> = Vec::new();
    let mut migrating: Vec<Json> = Vec::new();
    let mut unavailable = 0usize;
    for entry in ctx.catalog.entries() {
        let poisoned = entry.is_poisoned();
        let moving = entry.is_migrating();
        if poisoned {
            quarantined.push(json!(&entry.name));
        }
        if moving {
            migrating.push(json!(&entry.name));
        }
        if poisoned || moving {
            unavailable += 1;
        }
    }
    let all_down = unavailable == ctx.catalog.len();
    let body = json!({
        "v": 1,
        "status": if all_down { "unavailable" } else { "ready" },
        "quarantined": Json::Array(quarantined),
        "migrating": Json::Array(migrating),
    });
    if all_down {
        Response::json(503, body).with_retry_after(1)
    } else {
        Response::json(200, body)
    }
}

/// `/v1/mappings/{name}/{op}` dispatch: the robustness ladder steps
/// 1–3, then per-operation execution behind the panic barrier.
fn mapping_request(method: &str, rest: &str, body: &[u8], ctx: &ServerCtx) -> Response {
    let Some((name, op)) = rest.split_once('/') else {
        return Response::error(404, "not_found", "expected /v1/mappings/{name}/{op}");
    };
    const OPS: &[&str] = &[
        "compile", "lint", "explain", "chase", "exchange", "put", "migrate",
    ];
    if !OPS.contains(&op) {
        return Response::error(
            404,
            "unknown_operation",
            format!(
                "unknown operation `{op}` (expected one of {})",
                OPS.join(", ")
            ),
        );
    }
    if method != "POST" {
        return Response::error(405, "method_not_allowed", "mapping operations are POST");
    }
    let Some(entry) = ctx.catalog.get(name) else {
        return Response::error(404, "unknown_mapping", format!("no mapping named `{name}`"));
    };
    if entry.is_poisoned() {
        return Response::error(
            503,
            "quarantined",
            "mapping quarantined after an internal panic; restart dexd to clear",
        );
    }
    // Migration quarantine: while a live migration is swapping this
    // mapping's store files, every other operation waits it out. A
    // second concurrent migration is a conflict, not a retry.
    let _migration_guard = if op == "migrate" {
        if !entry.try_begin_migration() {
            return Response::error(
                409,
                "migration_running",
                format!("mapping `{name}` already has a migration in flight"),
            )
            .with_retry_after(1);
        }
        Some(MigrationGuard(Arc::clone(entry)))
    } else {
        if entry.is_migrating() {
            return Response::error(
                503,
                "migrating",
                format!("mapping `{name}` is mid-migration; retry shortly"),
            )
            .with_retry_after(1);
        }
        None
    };
    let Some(_guard) = entry.try_begin(ctx.config.max_inflight_per_mapping) else {
        ctx.stats.note_shed_tenant();
        return Response::error(
            429,
            "tenant_overloaded",
            format!(
                "mapping `{name}` already has {} request(s) in flight",
                ctx.config.max_inflight_per_mapping
            ),
        )
        .with_retry_after(1);
    };
    let body: Json = if body.is_empty() {
        Json::Object(Map::new())
    } else {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(e) => return Response::error(400, "bad_json", format!("request body: {e}")),
        };
        match serde_json::from_str(text) {
            Ok(j) => j,
            Err(e) => return Response::error(400, "bad_json", format!("request body: {e}")),
        }
    };
    // Deterministic dispatch-layer fault injection (chaos matrix): an
    // injected error answers 500 like any internal failure; an
    // injected panic exercises the barrier below.
    if let Some(e) = fail::hit("server.dispatch") {
        ctx.stats.note_error();
        return Response::error(500, "internal", e);
    }
    // The panic barrier: a panicking operation answers 500 and
    // quarantines the mapping (the daemon's analogue of the CLI's
    // exit-70 contract), and the in-flight guard above still releases
    // its slot on unwind.
    let entry = Arc::clone(entry);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(op, &entry, &body, ctx)
    }));
    match outcome {
        Ok(resp) => resp,
        Err(_) => {
            entry.poison();
            ctx.stats.note_panic();
            Response::error(
                500,
                "panic",
                format!(
                    "internal panic while serving `{op}`; mapping `{}` quarantined",
                    entry.name
                ),
            )
        }
    }
}

/// RAII release of a mapping's migration slot: covers every exit from
/// the migrate pipeline, including a panic unwinding through the
/// request barrier.
struct MigrationGuard(Arc<CatalogEntry>);

impl Drop for MigrationGuard {
    fn drop(&mut self) {
        self.0.end_migration();
    }
}

/// Execute one operation against one catalog entry (ladder steps 4–6).
fn execute(op: &str, entry: &CatalogEntry, body: &Json, ctx: &ServerCtx) -> Response {
    match op {
        "compile" => compile_op(entry, body),
        "lint" => lint_op(entry, body),
        "explain" => explain_op(entry),
        "chase" => chase_op(entry, body, ctx),
        "exchange" => exchange_op(entry, body, ctx),
        "put" => put_op(entry, body),
        "migrate" => migrate_op(entry, body, ctx),
        // Unreachable: `mapping_request` filtered on OPS.
        other => Response::error(404, "unknown_operation", other),
    }
}

fn envelope(entry: &CatalogEntry, op: &str) -> Map<String, Json> {
    let mut m = Map::new();
    m.insert("v".into(), json!(1));
    m.insert("mapping".into(), json!(&entry.name));
    m.insert("op".into(), json!(op));
    m
}

/// Did the request body opt into the verified optimizer
/// (`{"optimize": true}`)?
fn wants_optimize(body: &Json) -> bool {
    body.get("optimize").and_then(Json::as_bool) == Some(true)
}

/// The `"optimized"` response section shared by `compile` and `lint`:
/// the verified rewrites, size change, rendered optimized mapping —
/// or the typed refusal for mappings outside the decidable fragment.
fn optimized_json(mapping: &Mapping) -> (Json, Option<Mapping>) {
    let outcome = dex_analyze::optimize(mapping);
    if let Some(reason) = &outcome.refused {
        return (json!({"refused": reason}), None);
    }
    let (a0, d0) = dex_analyze::semantic::mapping_size(mapping);
    let (a1, d1) = dex_analyze::semantic::mapping_size(&outcome.mapping);
    let rewrites: Vec<&String> = outcome.rewrites.iter().map(|r| &r.description).collect();
    let section = json!({
        "refused": Json::Null,
        "rewrites": rewrites,
        "original_size": json!({"atoms": a0, "deps": d0}),
        "optimized_size": json!({"atoms": a1, "deps": d1}),
        "mapping": dex_analyze::render_mapping_dex(&outcome.mapping),
    });
    let changed = outcome.changed();
    (section, changed.then_some(outcome.mapping))
}

fn compile_op(entry: &CatalogEntry, req: &Json) -> Response {
    let mut body = envelope(entry, "compile");
    // With {"optimize": true} the *optimized* mapping is compiled — a
    // verified-equivalent mapping can compile where the original's
    // redundant rules trip the union-lens restrictions (DEX206).
    let optimized = wants_optimize(req).then(|| optimized_json(&entry.mapping));
    let fresh_template;
    let template = match &optimized {
        Some((section, opt)) => {
            body.insert("optimized".into(), section.clone());
            match opt {
                Some(m) => match dex_core::compile(m) {
                    Ok(t) => {
                        fresh_template = t;
                        Ok(&fresh_template)
                    }
                    Err(e) => Err(e.to_string()),
                },
                // Refused or unchanged: fall back to the precompiled
                // entry.
                None => entry
                    .engine
                    .as_ref()
                    .map(|e| e.template())
                    .map_err(Clone::clone),
            }
        }
        None => entry
            .engine
            .as_ref()
            .map(|e| e.template())
            .map_err(Clone::clone),
    };
    match template {
        Ok(t) => {
            body.insert("compiled".into(), json!(true));
            body.insert(
                "holes".into(),
                Json::Array(t.holes.iter().map(|h| json!(h.to_string())).collect()),
            );
            body.insert("report".into(), json!(t.report.to_string()));
            Response::json(200, Json::Object(body))
        }
        Err(reason) => {
            body.insert("compiled".into(), json!(false));
            body.insert(
                "error".into(),
                json!({"kind": "uncompilable", "message": reason}),
            );
            Response::json(422, Json::Object(body))
        }
    }
}

fn lint_op(entry: &CatalogEntry, req: &Json) -> Response {
    let mut diags = analyze_with(&entry.mapping, Some(&entry.spans), Default::default());
    sort_diagnostics(&mut diags);
    let failed = has_errors(&diags);
    let mut body = envelope(entry, "lint");
    body.insert(
        "diagnostics".into(),
        serde_json::to_value(&diags).unwrap_or(Json::Null),
    );
    body.insert("errors".into(), json!(failed));
    if wants_optimize(req) {
        let (section, _) = optimized_json(&entry.mapping);
        body.insert("optimized".into(), section);
    }
    // Mirrors `dexcli lint`'s exit-2 contract: diagnostics are data,
    // but a mapping with errors is unprocessable.
    Response::json(if failed { 422 } else { 200 }, Json::Object(body))
}

fn explain_op(entry: &CatalogEntry) -> Response {
    let stats = SourceStats::uniform(dex_analyze::cost::DEFAULT_CARD);
    let report = explain_with(&entry.mapping, Some(&entry.spans), &stats);
    let mut body = envelope(entry, "explain");
    body.insert("plan".into(), report.to_json());
    Response::json(200, Json::Object(body))
}

/// Parse the `budget` override object, admit against the static cost
/// bounds, and derive the effective request budget:
/// `server default ∩ request overrides ∩ from_bounds(bounds) × safety`.
/// `Err` is the refusal response (400 bad override / 422 admission).
fn admit(
    entry: &CatalogEntry,
    mapping: &Mapping,
    src: &Instance,
    body: &Json,
    ctx: &ServerCtx,
) -> Result<Budget, Response> {
    let args = budget_overrides(body)?;
    let stats = SourceStats::measure(src);
    let bounds = chase_bounds(mapping, &stats);
    if let Some(threshold) = ctx.config.deny_cost {
        let headline = bounds.headline();
        if headline.exceeds(threshold) {
            ctx.stats.note_refused();
            let mut resp = envelope(entry, "admission");
            resp.insert(
                "error".into(),
                json!({
                    "kind": "admission_refused",
                    "message": format!(
                        "DEX502: predicted chase cost {headline} exceeds the server's \
                         deny-cost ceiling {threshold}; refusing before chasing"
                    ),
                }),
            );
            resp.insert(
                "predicted".into(),
                serde_json::to_value(&bounds).unwrap_or(Json::Null),
            );
            return Err(Response::json(422, Json::Object(resp)));
        }
    }
    let mut budget = ctx.config.default_budget.intersect(args.budget());
    if ctx.config.auto_budget {
        budget = budget.intersect(Budget::from_bounds(&bounds, AUTO_BUDGET_SAFETY));
    }
    let uncapped = budget.deadline.is_none()
        && budget.max_rounds.is_none()
        && budget.max_tuples.is_none()
        && budget.max_nulls.is_none()
        && budget.max_memory_bytes.is_none();
    if uncapped {
        budget = budget.with_max_rounds(FALLBACK_MAX_ROUNDS);
    }
    Ok(budget)
}

/// Parse the request's `budget` override object (400 on bad shape).
fn budget_overrides(body: &Json) -> Result<BudgetArgs, Response> {
    let mut args = BudgetArgs::new();
    if let Some(overrides) = body.get("budget") {
        let Some(obj) = overrides.as_object() else {
            return Err(Response::error(
                400,
                "bad_budget",
                "`budget` must be an object",
            ));
        };
        for (key, value) in obj {
            let text = match value {
                Json::String(s) => s.clone(),
                Json::Number(n) => n.to_string(),
                other => {
                    return Err(Response::error(
                        400,
                        "bad_budget",
                        format!("budget.{key}: expected a string or number, got {other}"),
                    ))
                }
            };
            if let Err(e) = args.set(key, &text) {
                return Err(Response::error(400, "bad_budget", e));
            }
        }
    }
    Ok(args)
}

/// Pull the `source` instance out of the body.
fn source_of(entry: &CatalogEntry, body: &Json) -> Result<Instance, Response> {
    let Some(src) = body.get("source") else {
        return Err(Response::error(
            400,
            "bad_request",
            "missing `source` instance",
        ));
    };
    instance_from_json(src, entry.mapping.source())
        .map_err(|e| Response::error(400, "bad_instance", format!("source: {e}")))
}

fn chase_op(entry: &CatalogEntry, body: &Json, ctx: &ServerCtx) -> Response {
    let src = match source_of(entry, body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let budget = match admit(entry, &entry.mapping, &src, body, ctx) {
        Ok(b) => b,
        Err(r) => return r,
    };
    // The governed budget is the *sole* rounds authority in the
    // daemon: mirror its cap into the chase options (the CLI-facing
    // default of 10k rounds would otherwise preempt wall-clock and
    // cancellation trips on runaway mappings). `usize::MAX` is only
    // reachable when `admit` left another axis capped — a truly
    // uncapped budget gets `FALLBACK_MAX_ROUNDS` there.
    let opts = ChaseOptions {
        max_rounds: budget
            .max_rounds
            .and_then(|n| usize::try_from(n).ok())
            .unwrap_or(usize::MAX),
        ..ChaseOptions::default()
    };
    let gov = Governor::new(budget).with_cancel(ctx.drain_cancel.clone());
    let persist = body.get("persist").and_then(Json::as_bool).unwrap_or(false);
    let mut store_dir: Option<std::path::PathBuf> = None;
    let outcome = if persist {
        let Some(root) = &ctx.config.store_root else {
            return Response::error(
                400,
                "no_store_root",
                "persist requested but the server has no --store-root",
            );
        };
        let dir = root
            .join(&entry.name)
            .join(format!("run-{}", entry.next_store_seq()));
        let created = Store::create(
            &dir,
            StoreMode::Chase,
            &entry.text,
            &src,
            StoreOptions::default(),
        );
        let mut store = match created {
            Ok(s) => s,
            Err(e) => return Response::error(500, "store", e),
        };
        store_dir = Some(dir);
        let mut sink = StoreSink::new(&mut store);
        exchange_checkpointed(&entry.mapping, &src, opts, &gov, &mut sink)
    } else {
        exchange_governed(&entry.mapping, &src, opts, &gov)
    };
    let mut resp = envelope(entry, "chase");
    if let Some(dir) = &store_dir {
        resp.insert("store".into(), json!(dir.display().to_string()));
    }
    match outcome {
        Ok(ChaseOutcome::Complete(res)) => {
            resp.insert("target".into(), instance_to_json(&res.target));
            resp.insert(
                "stats".into(),
                serde_json::to_value(&res.stats).unwrap_or(Json::Null),
            );
            Response::json(200, Json::Object(resp))
        }
        Ok(ChaseOutcome::Exhausted(ex)) => {
            ctx.stats.note_partial();
            resp.insert("partial".into(), instance_to_json(&ex.partial));
            resp.insert(
                "exhausted".into(),
                serde_json::to_value(&ex.report).unwrap_or(Json::Null),
            );
            resp.insert(
                "stats".into(),
                serde_json::to_value(&ex.stats).unwrap_or(Json::Null),
            );
            Response::json(206, Json::Object(resp))
        }
        Err(e) => {
            ctx.stats.note_error();
            Response::error(500, "chase", e)
        }
    }
}

fn exchange_op(entry: &CatalogEntry, body: &Json, ctx: &ServerCtx) -> Response {
    let engine = match &entry.engine {
        Ok(e) => e,
        Err(reason) => return Response::error(422, "uncompilable", reason),
    };
    let src = match source_of(entry, body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let prev = match body.get("prev") {
        Some(p) => match instance_from_json(p, entry.mapping.target()) {
            Ok(i) => Some(i),
            Err(e) => return Response::error(400, "bad_instance", format!("prev: {e}")),
        },
        None => None,
    };
    let budget = match admit(entry, &entry.mapping, &src, body, ctx) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let gov = Governor::new(budget).with_cancel(ctx.drain_cancel.clone());
    let mut resp = envelope(entry, "exchange");
    match engine.forward_governed(&src, prev.as_ref(), &gov) {
        Ok(EngineForward::Complete { target, .. }) => {
            resp.insert("target".into(), instance_to_json(&target));
            Response::json(200, Json::Object(resp))
        }
        Ok(EngineForward::Exhausted { partial, report }) => {
            ctx.stats.note_partial();
            resp.insert("partial".into(), instance_to_json(&partial));
            resp.insert(
                "exhausted".into(),
                serde_json::to_value(&report).unwrap_or(Json::Null),
            );
            Response::json(206, Json::Object(resp))
        }
        Err(e) => {
            ctx.stats.note_error();
            Response::error(500, "exchange", e)
        }
    }
}

fn put_op(entry: &CatalogEntry, body: &Json) -> Response {
    let engine = match &entry.engine {
        Ok(e) => e,
        Err(reason) => return Response::error(422, "uncompilable", reason),
    };
    let Some(tgt) = body.get("target") else {
        return Response::error(400, "bad_request", "missing `target` instance");
    };
    let tgt = match instance_from_json(tgt, entry.mapping.target()) {
        Ok(i) => i,
        Err(e) => return Response::error(400, "bad_instance", format!("target: {e}")),
    };
    let src = match source_of(entry, body) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let mut resp = envelope(entry, "put");
    match engine.backward(&tgt, &src) {
        Ok(new_source) => {
            resp.insert("source".into(), instance_to_json(&new_source));
            Response::json(200, Json::Object(resp))
        }
        // A put the lens refuses (violated fd, unrestorable row) is a
        // client-data problem, not a server fault.
        Err(e) => Response::error(422, "put_rejected", e),
    }
}

/// `POST /v1/mappings/{name}/migrate`: crash-safe live schema
/// migration of one of this mapping's persisted stores.
///
/// Body: `{"run": "run-0", "schema": "target T(a, b, c);",
/// "resume": bool?, "budget": {…}?}`. While the migration runs the
/// mapping is quarantined (other operations answer 503 — the caller
/// set that up in `mapping_request`); the slot is released whether the
/// migration commits, suspends, or fails, because a suspended
/// migration's staging is durable on disk and the live store stays
/// authoritative. The status contract mirrors the rest of the daemon:
/// 200 committed, 206 suspended at a resumable checkpoint (budget or
/// drain cancellation — a SIGTERM mid-migration lands here), 400/404
/// client errors, 409 conflicting state, 422 refused before data was
/// touched, 500 store fault.
fn migrate_op(entry: &CatalogEntry, body: &Json, ctx: &ServerCtx) -> Response {
    let Some(root) = &ctx.config.store_root else {
        return Response::error(
            400,
            "no_store_root",
            "migrate requires the server to run with --store-root",
        );
    };
    let Some(run) = body.get("run").and_then(Json::as_str) else {
        return Response::error(400, "bad_request", "missing `run` (store directory name)");
    };
    if run.is_empty()
        || run.len() > 128
        || !run
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        || run == "."
        || run == ".."
    {
        return Response::error(400, "bad_run", "`run` must name a store directory");
    }
    let dir = root.join(&entry.name).join(run);
    let opts = StoreOptions::default();
    let mut resp = envelope(entry, "migrate");
    resp.insert("run".into(), json!(run));

    let budget = match budget_overrides(body) {
        Ok(args) => {
            let mut b = ctx.config.default_budget.intersect(args.budget());
            if b.deadline.is_none()
                && b.max_rounds.is_none()
                && b.max_tuples.is_none()
                && b.max_nulls.is_none()
                && b.max_memory_bytes.is_none()
            {
                b = b.with_max_rounds(FALLBACK_MAX_ROUNDS);
            }
            b
        }
        Err(r) => return r,
    };

    if body.get("resume").and_then(Json::as_bool).unwrap_or(false) {
        return match store_migrate::status(&dir) {
            Err(e) => Response::error(500, "store", e),
            Ok(MigrateStatus::None) => Response::error(
                409,
                "nothing_staged",
                format!("run `{run}` has no staged migration to resume"),
            ),
            Ok(MigrateStatus::Committed) => match store_migrate::roll_forward(&dir, opts.sync) {
                Ok(_) => {
                    resp.insert("committed".into(), json!(true));
                    resp.insert("rolled_forward".into(), json!(true));
                    Response::json(200, Json::Object(resp))
                }
                Err(e) => Response::error(500, "store", e),
            },
            Ok(MigrateStatus::InProgress { .. }) => match Migration::resume(&dir, opts) {
                Ok(mig) => run_staged(mig, resp, run, budget, ctx),
                Err(e) => Response::error(500, "store", e),
            },
        };
    }

    match store_migrate::status(&dir) {
        Err(e) => return Response::error(500, "store", e),
        Ok(MigrateStatus::None) => {}
        Ok(_) => {
            return Response::error(
                409,
                "migration_staged",
                format!("run `{run}` already has a staged migration; resume it"),
            )
        }
    }
    let Some(schema_text) = body.get("schema").and_then(Json::as_str) else {
        return Response::error(
            400,
            "bad_request",
            "missing `schema` (new-schema .dex text)",
        );
    };
    let new_m = match parse_mapping(schema_text) {
        Ok(m) => m,
        Err(e) => return Response::error(400, "bad_schema", format!("schema: {e}")),
    };
    if !new_m.st_tgds().is_empty() || !new_m.target_tgds().is_empty() {
        return Response::error(
            400,
            "bad_schema",
            "`schema` must hold only declarations (target/key); it contains rules",
        );
    }
    let mut new_schema = new_m.target().clone();
    for rel in new_m.source().relations() {
        if let Err(e) = new_schema.add_relation(rel.clone()) {
            return Response::error(400, "bad_schema", format!("schema: {e}"));
        }
    }

    // The store's materialized instance is the migration's input; an
    // unfinished chase must be resumed (not migrated) first.
    let store = match Store::open(&dir, opts) {
        Ok(s) => s,
        Err(StoreError::NotAStore { .. }) => {
            return Response::error(404, "unknown_run", format!("no store at run `{run}`"))
        }
        Err(e) => return Response::error(500, "store", e),
    };
    let state = match store.recover() {
        Err(e) => return Response::error(500, "store", e),
        Ok(Some(r)) if r.state.complete => r.state,
        Ok(_) => {
            return Response::error(
                409,
                "unfinished_run",
                format!("run `{run}` holds an unfinished chase; resume it before migrating"),
            )
        }
    };
    let old_schema = state.instance.schema().clone();

    let smos = match diff(
        &EvCatalog::from_schema(&old_schema),
        &EvCatalog::from_schema(&new_schema),
    ) {
        Ok(s) => s,
        Err(e) => return Response::error(422, "cannot_migrate", e),
    };
    let migration = match compile_migration(&old_schema, &new_schema, &smos) {
        Ok(m) => m,
        Err(e) => return Response::error(422, "cannot_migrate", e),
    };
    let prefixed = match prefix_instance(&state.instance, 0) {
        Ok(i) => i,
        Err(e) => return Response::error(500, "migrate", e),
    };
    // Same admission gate as chase/exchange, against the *actual*
    // stored data and the *compiled migration* mapping.
    let budget = match admit(entry, &migration.mapping, &prefixed, body, ctx) {
        Ok(b) => b,
        Err(r) => return r,
    };
    resp.insert(
        "smos".into(),
        Json::Array(
            migration
                .smos
                .iter()
                .map(|s| json!(s.to_string()))
                .collect(),
        ),
    );
    let plan = MigratePlan {
        schema_text: render_schema_dex(&new_schema),
        mapping_text: render_mapping_dex(&migration.mapping),
    };
    drop(store);
    match Migration::begin(&dir, &plan, &prefixed, opts) {
        Ok(mig) => run_staged(mig, resp, run, budget, ctx),
        Err(e) => Response::error(500, "store", e),
    }
}

/// Drive a staged migration to commit (200) or a durable, resumable
/// checkpoint (206). The drain [`CancelToken`] rides the governor, so
/// daemon shutdown suspends the migration exactly like a budget trip —
/// the staging directory survives and a later `resume: true` request
/// (or `dexcli migrate --resume` against the same directory) finishes
/// it with bit-identical results.
fn run_staged(
    mut mig: Migration,
    mut resp: Map<String, Json>,
    run: &str,
    budget: Budget,
    ctx: &ServerCtx,
) -> Response {
    let gov = Governor::new(budget).with_cancel(ctx.drain_cancel.clone());
    match mig.run(ChaseOptions::default(), &gov) {
        Err(e) => {
            ctx.stats.note_error();
            Response::error(500, "migrate", e)
        }
        Ok(MigrateRun::Done(state)) => match mig.finalize() {
            Err(e) => {
                ctx.stats.note_error();
                Response::error(500, "migrate", e)
            }
            Ok(()) => {
                resp.insert("committed".into(), json!(true));
                resp.insert("tuples".into(), json!(state.instance.fact_count()));
                Response::json(200, Json::Object(resp))
            }
        },
        Ok(MigrateRun::Suspended(report)) => {
            ctx.stats.note_partial();
            resp.insert("committed".into(), json!(false));
            resp.insert("resumable".into(), json!(true));
            resp.insert(
                "hint".into(),
                json!(format!(
                    "staging is durable and the live store untouched; \
                     POST again with {{\"run\": \"{run}\", \"resume\": true}}"
                )),
            );
            resp.insert(
                "exhausted".into(),
                serde_json::to_value(&report).unwrap_or(Json::Null),
            );
            Response::json(206, Json::Object(resp))
        }
    }
}
