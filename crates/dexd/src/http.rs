//! Minimal, defensive HTTP/1.1 on `std::net` — just enough protocol
//! for `dexd`'s JSON API, hand-rolled so the daemon carries no async
//! runtime or HTTP dependency.
//!
//! Parsing is deliberately strict and bounded: the request line and
//! every header line are capped, header count is capped, bodies are
//! capped ([`MAX_BODY_BYTES`]) and require an explicit
//! `Content-Length` (no chunked encoding), and the socket carries
//! read/write timeouts set by the server — a slow or malicious client
//! can waste one worker for at most the timeout, never wedge it.
//! Every response is `Connection: close`: one request per connection
//! keeps the state machine trivial and makes load shedding exact.

use serde_json::{json, Value as Json};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Hard cap on request bodies. Instances bigger than this should go
/// through the CLI's file-based interface, not an HTTP body.
pub const MAX_BODY_BYTES: u64 = 16 << 20;
/// Hard cap on the request line and each header line.
const MAX_LINE_BYTES: usize = 8 << 10;
/// Hard cap on the number of header lines.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, path, and the (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Why a request could not be read. [`ReadError::Malformed`] and
/// [`ReadError::TooLarge`] get a well-formed HTTP error response;
/// [`ReadError::Io`] means the connection itself died (nothing can be
/// written back).
#[derive(Debug)]
pub enum ReadError {
    /// Syntactically broken request → 400.
    Malformed(String),
    /// Body over [`MAX_BODY_BYTES`] → 413.
    TooLarge(String),
    /// The socket failed mid-read; the connection is just dropped.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one `\r\n`-terminated line, byte by byte, capped at
/// [`MAX_LINE_BYTES`]. Byte-at-a-time reads are fine here: request
/// lines and headers are tiny, and it avoids buffering reads past the
/// header/body boundary.
fn read_line(stream: &mut TcpStream) -> Result<String, ReadError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-line".into()));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ReadError::Malformed("non-UTF-8 header bytes".into()));
        }
        if line.len() >= MAX_LINE_BYTES {
            return Err(ReadError::TooLarge("header line over limit".into()));
        }
        line.push(byte[0]);
    }
}

/// Read and validate one full request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let request_line = read_line(stream)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let mut content_length: u64 = 0;
    for _ in 0..MAX_HEADERS {
        let line = read_line(stream)?;
        if line.is_empty() {
            // Refuse over-cap bodies only after the full header block
            // is consumed, so the refusal closes cleanly (no unread
            // header bytes → no RST racing the response).
            if content_length > MAX_BODY_BYTES {
                return Err(ReadError::TooLarge(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
            let mut body = vec![
                0u8;
                usize::try_from(content_length)
                    .map_err(|_| ReadError::TooLarge("body over limit".into()))?
            ];
            stream.read_exact(&mut body)?;
            return Ok(Request {
                method: method.to_string(),
                path: path.to_string(),
                body,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<u64>()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{value}`")))?;
        }
    }
    Err(ReadError::Malformed("too many headers".into()))
}

/// A response about to be written: status, JSON body, and the optional
/// `Retry-After` seconds that ride load-shedding 429s and draining
/// 503s.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub body: Json,
    pub retry_after: Option<u64>,
}

impl Response {
    /// A plain JSON response.
    pub fn json(status: u16, body: Json) -> Self {
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// A typed error response: `{"v": 1, "error": {"kind", "message"}}`.
    pub fn error(status: u16, kind: &str, message: impl std::fmt::Display) -> Self {
        Response::json(
            status,
            json!({
                "v": 1,
                "error": json!({ "kind": kind, "message": message.to_string() }),
            }),
        )
    }

    /// Attach a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serialize and write the full response. Write errors are
    /// returned (the caller just drops the connection — there is no
    /// one left to tell).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let body = self.body.to_string();
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            body.len(),
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

impl Response {
    /// Write a refusal on a connection whose request was *not* fully
    /// read (shed, drain, parse error): plain `write_to` + drop would
    /// close with unread input in the socket, making the kernel send
    /// RST — which can destroy the response before the client reads
    /// it. Instead: respond, half-close, then briefly drain the
    /// client's leftover bytes so the close is orderly. Bounded by a
    /// short timeout and a byte cap — a hostile client costs the
    /// caller at most ~100 ms.
    pub fn write_refusal(&self, stream: &mut TcpStream) {
        let _ = self.write_to(stream);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
        let mut scratch = [0u8; 1024];
        let mut drained = 0usize;
        while let Ok(n) = stream.read(&mut scratch) {
            if n == 0 {
                break;
            }
            drained += n;
            if drained > 64 << 10 {
                break;
            }
        }
    }
}

/// Reason phrase for every status the daemon emits (the README status
/// table is the contract; anything else is a bug caught here in
/// debug builds).
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => {
            debug_assert!(false, "unmapped status {status}");
            "Unknown"
        }
    }
}
