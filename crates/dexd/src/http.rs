//! Minimal, defensive HTTP/1.1 on `std::net` — just enough protocol
//! for `dexd`'s JSON API, hand-rolled so the daemon carries no async
//! runtime or HTTP dependency.
//!
//! Parsing is deliberately strict and bounded: the request line and
//! every header line are capped, header count is capped, bodies are
//! capped ([`MAX_BODY_BYTES`]) and require an explicit
//! `Content-Length` (`Transfer-Encoding` is refused outright), and the
//! *whole* request read runs under one absolute deadline — the socket
//! read timeout is re-armed with the remaining budget before every
//! `read(2)`, so a slow-loris client trickling one byte per read
//! cannot stretch its welcome: a slow or malicious client can waste
//! one worker for at most the timeout, never wedge it.
//! Every response is `Connection: close`: one request per connection
//! keeps the state machine trivial and makes load shedding exact.

use serde_json::{json, Value as Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on request bodies. Instances bigger than this should go
/// through the CLI's file-based interface, not an HTTP body.
pub const MAX_BODY_BYTES: u64 = 16 << 20;
/// Hard cap on the request line and each header line.
const MAX_LINE_BYTES: usize = 8 << 10;
/// Hard cap on the number of header lines.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, path, and the (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Why a request could not be read. [`ReadError::Malformed`] and
/// [`ReadError::TooLarge`] get a well-formed HTTP error response;
/// [`ReadError::Io`] means the connection itself died (nothing can be
/// written back).
#[derive(Debug)]
pub enum ReadError {
    /// Syntactically broken request → 400.
    Malformed(String),
    /// Body over [`MAX_BODY_BYTES`] → 413.
    TooLarge(String),
    /// The socket failed mid-read; the connection is just dropped.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Re-arm the socket's read timeout with whatever is left until
/// `deadline`, failing once the budget is spent. Called before every
/// blocking read, so the deadline bounds the *entire* request read —
/// per-`read(2)` timeouts alone would let a slow-loris client hold a
/// worker for `timeout × bytes`.
fn arm(stream: &TcpStream, deadline: Instant) -> Result<(), ReadError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ReadError::Malformed(
            "request read deadline exceeded".into(),
        ));
    }
    stream.set_read_timeout(Some(remaining))?;
    Ok(())
}

/// A read that ran out the armed timeout is the client's fault (400),
/// not a dead socket: keep it distinguishable from a genuine IO error
/// so the worker still writes a well-formed refusal.
fn read_err(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ReadError::Malformed("request read timed out".into())
        }
        _ => ReadError::Io(e),
    }
}

/// Read one `\r\n`-terminated line, byte by byte, capped at
/// [`MAX_LINE_BYTES`]. Byte-at-a-time reads are fine here: request
/// lines and headers are tiny, and it avoids buffering reads past the
/// header/body boundary.
fn read_line(stream: &mut TcpStream, deadline: Instant) -> Result<String, ReadError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        arm(stream, deadline)?;
        let n = stream.read(&mut byte).map_err(read_err)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-line".into()));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ReadError::Malformed("non-UTF-8 header bytes".into()));
        }
        if line.len() >= MAX_LINE_BYTES {
            return Err(ReadError::TooLarge("header line over limit".into()));
        }
        line.push(byte[0]);
    }
}

/// Read and validate one full request from the stream. `timeout` is
/// the absolute budget for the whole read — request line, headers, and
/// body together.
pub fn read_request(stream: &mut TcpStream, timeout: Duration) -> Result<Request, ReadError> {
    let deadline = Instant::now() + timeout;
    let request_line = read_line(stream, deadline)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let mut content_length: u64 = 0;
    for _ in 0..MAX_HEADERS {
        let line = read_line(stream, deadline)?;
        if line.is_empty() {
            // Refuse over-cap bodies only after the full header block
            // is consumed, so the refusal closes cleanly (no unread
            // header bytes → no RST racing the response).
            if content_length > MAX_BODY_BYTES {
                return Err(ReadError::TooLarge(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
            let mut body = vec![
                0u8;
                usize::try_from(content_length)
                    .map_err(|_| ReadError::TooLarge("body over limit".into()))?
            ];
            let mut filled = 0;
            while filled < body.len() {
                arm(stream, deadline)?;
                let n = stream.read(&mut body[filled..]).map_err(read_err)?;
                if n == 0 {
                    return Err(ReadError::Malformed("connection closed mid-body".into()));
                }
                filled += n;
            }
            return Ok(Request {
                method: method.to_string(),
                path: path.to_string(),
                body,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header `{line}`")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<u64>()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Silently ignoring this would leave the chunked payload
            // unread (RST racing the response) and run the operation
            // on an empty body the client never sent.
            return Err(ReadError::Malformed(
                "Transfer-Encoding is not supported; send a Content-Length body".into(),
            ));
        }
    }
    Err(ReadError::Malformed("too many headers".into()))
}

/// A response about to be written: status, JSON body, and the optional
/// `Retry-After` seconds that ride load-shedding 429s and draining
/// 503s.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub body: Json,
    pub retry_after: Option<u64>,
}

impl Response {
    /// A plain JSON response.
    pub fn json(status: u16, body: Json) -> Self {
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// A typed error response: `{"v": 1, "error": {"kind", "message"}}`.
    pub fn error(status: u16, kind: &str, message: impl std::fmt::Display) -> Self {
        Response::json(
            status,
            json!({
                "v": 1,
                "error": json!({ "kind": kind, "message": message.to_string() }),
            }),
        )
    }

    /// Attach a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serialize and write the full response. Write errors are
    /// returned (the caller just drops the connection — there is no
    /// one left to tell).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let body = self.body.to_string();
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            body.len(),
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

impl Response {
    /// Write a refusal on a connection whose request was *not* fully
    /// read (shed, drain, parse error): plain `write_to` + drop would
    /// close with unread input in the socket, making the kernel send
    /// RST — which can destroy the response before the client reads
    /// it. Instead: respond, half-close, then briefly drain the
    /// client's leftover bytes so the close is orderly. Bounded by an
    /// absolute wall-clock deadline (re-armed per read, so trickled
    /// bytes cannot reset it) plus a byte cap — a hostile client costs
    /// the caller at most ~100 ms, even from the acceptor thread.
    pub fn write_refusal(&self, stream: &mut TcpStream) {
        let _ = self.write_to(stream);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let deadline = Instant::now() + Duration::from_millis(100);
        let mut scratch = [0u8; 1024];
        let mut drained = 0usize;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || stream.set_read_timeout(Some(remaining)).is_err() {
                break;
            }
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    drained += n;
                    if drained > 64 << 10 {
                        break;
                    }
                }
            }
        }
    }
}

/// Reason phrase for every status the daemon emits (the README status
/// table is the contract; anything else is a bug caught here in
/// debug builds).
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => {
            debug_assert!(false, "unmapped status {status}");
            "Unknown"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A loopback pair plus a client thread that trickles one byte
    /// every `pace` for up to `bytes` bytes (stopping early once the
    /// server closes) — the slow-loris shape both deadline tests need.
    fn trickling_client(
        preamble: &'static [u8],
        pace: Duration,
        bytes: usize,
    ) -> (TcpStream, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            if c.write_all(preamble).is_err() {
                return;
            }
            for _ in 0..bytes {
                std::thread::sleep(pace);
                if c.write_all(b"x").is_err() {
                    return; // server cut us off — the point of the tests
                }
            }
        });
        let (server_side, _) = listener.accept().expect("accept");
        (server_side, client)
    }

    #[test]
    fn request_read_is_bounded_by_an_absolute_deadline() {
        // 100 bytes at 30 ms apiece = 3 s of valid-looking trickle;
        // every gap is far below the 250 ms budget, so a per-read
        // timeout alone would never trip.
        let (mut stream, client) = trickling_client(
            b"POST /v1/mappings/emp/chase HTTP/1.1\r\nX-Slow: ",
            Duration::from_millis(30),
            100,
        );
        let start = Instant::now();
        let out = read_request(&mut stream, Duration::from_millis(250));
        assert!(
            matches!(out, Err(ReadError::Malformed(_))),
            "deadline trip is the client's fault (400): {out:?}"
        );
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "read bounded by the total budget, took {:?}",
            start.elapsed()
        );
        drop(stream);
        client.join().expect("client thread");
    }

    #[test]
    fn refusal_drain_is_bounded_by_wall_clock() {
        // 50 bytes at 40 ms apiece = 2 s of trickle, each gap under
        // the old 100 ms per-read timeout that used to reset forever.
        let (mut stream, client) =
            trickling_client(b"GET /healthz HTTP/1.1\r\n", Duration::from_millis(40), 50);
        let start = Instant::now();
        Response::error(429, "overloaded", "test").write_refusal(&mut stream);
        assert!(
            start.elapsed() < Duration::from_millis(900),
            "drain bounded by its deadline, took {:?}",
            start.elapsed()
        );
        drop(stream);
        client.join().expect("client thread");
    }

    #[test]
    fn transfer_encoding_is_refused_up_front() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let _ = c.write_all(
                b"POST /v1/mappings/emp/chase HTTP/1.1\r\n\
                  Transfer-Encoding: chunked\r\n\r\n\
                  5\r\nhello\r\n0\r\n\r\n",
            );
            c
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let out = read_request(&mut stream, Duration::from_secs(2));
        assert!(
            matches!(out, Err(ReadError::Malformed(_))),
            "chunked bodies are refused, not silently dropped: {out:?}"
        );
        drop(client.join().expect("client thread"));
    }
}
