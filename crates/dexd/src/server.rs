//! The daemon core: listener, bounded queue, worker pool, graceful
//! drain.
//!
//! Architecture (all `std::net` + scoped threads; no async runtime):
//!
//! ```text
//!   acceptor ──try_push──▶ bounded queue ──pop──▶ N workers
//!      │                        │
//!      │ full → 429 shed        │ closed + empty → worker exits
//!      │ draining → 503         │
//!      └── shutdown flag ───────┴── drain deadline → cancel token
//! ```
//!
//! The queue is the back-pressure point: when all workers are busy and
//! [`ServerConfig::queue_capacity`] connections are already waiting,
//! the *acceptor* answers `429 Too Many Requests` with `Retry-After`
//! and closes — shedding costs one header write, never a worker. On
//! shutdown the acceptor stops accepting (new connections get an
//! immediate `503`), queued and in-flight requests drain, and if the
//! drain outlives [`ServerConfig::drain_deadline`] the shared
//! [`CancelToken`] trips every in-flight governed run, which then
//! returns its consistent partial result as a `206` — a deadline-bound
//! shutdown that still answers every admitted request.

use crate::catalog::Catalog;
use crate::handlers::route;
use crate::http::{read_request, ReadError, Response};
use dex_relational::{fail, Budget, CancelToken};
use serde_json::{json, Map, Value as Json};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Everything tunable about a `dexd` instance. `Default` is the
/// configuration the integration tests and `dexcli serve` start from.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// acceptor sheds with 429.
    pub queue_capacity: usize,
    /// Concurrent in-flight requests allowed per mapping (0 = uncapped);
    /// the per-tenant fairness cap behind the 429 `tenant_overloaded`.
    pub max_inflight_per_mapping: u64,
    /// Server-side budget every request starts from; request overrides
    /// can only tighten it (intersection, never replacement).
    pub default_budget: Budget,
    /// DEX502 admission ceiling: refuse (422) any request whose
    /// predicted headline chase bound exceeds this.
    pub deny_cost: Option<u64>,
    /// Derive per-request budget caps from the static chase bounds
    /// (`Budget::from_bounds`), so even an unbounded default budget
    /// cannot run further than the mapping's proven worst case.
    pub auto_budget: bool,
    /// How long shutdown waits for queued + in-flight requests before
    /// cancelling them into 206 partials.
    pub drain_deadline: Duration,
    /// Where `persist: true` requests write their stores
    /// (`<root>/<mapping>/run-<seq>`); `None` disables persistence.
    pub store_root: Option<PathBuf>,
    /// Socket IO budget: the absolute deadline for reading one whole
    /// request (see [`read_request`]) and the per-write timeout on
    /// responses — the longest a slow client can hold a worker.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_inflight_per_mapping: 8,
            default_budget: Budget::unlimited(),
            deny_cost: None,
            auto_budget: true,
            drain_deadline: Duration::from_secs(5),
            store_root: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Number of log₂ latency buckets: bucket `i` holds requests that took
/// `< 2^i` µs (the last bucket is open-ended). 2³⁹ µs ≈ 6.4 days, far
/// past any request the IO timeouts allow to live.
const LATENCY_BUCKETS: usize = 40;

/// A fixed-bucket log₂ histogram of request latencies in microseconds.
/// Recording is two relaxed atomic ops and one `fetch_max` — no
/// allocation, no lock, no contention point on the hot path; the
/// percentile walk happens only when `/statz` renders.
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one request that took `micros` µs.
    pub fn record(&self, micros: u64) {
        let idx = (64 - u64::leading_zeros(micros | 1) as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(micros, Ordering::Relaxed);
    }

    /// Upper bound (µs) of the bucket holding the `p`-th percentile
    /// (`0 < p ≤ 100`), or `None` before any request. Log₂ buckets
    /// bound the answer to within 2× of the true latency — plenty for
    /// "did p99 regress by an order of magnitude".
    fn percentile(&self, p: u64) -> Option<u64> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let rank = (count * p).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(1u64 << i);
            }
        }
        Some(self.max_us.load(Ordering::Relaxed))
    }

    fn json(&self) -> Json {
        let opt = |v: Option<u64>| v.map(Json::from).unwrap_or(Json::Null);
        json!({
            "count": self.count.load(Ordering::Relaxed),
            "p50_us": opt(self.percentile(50)),
            "p99_us": opt(self.percentile(99)),
            "max_us": self.max_us.load(Ordering::Relaxed),
        })
    }
}

/// The endpoints `/statz` reports latency for, in index order. Mapping
/// operations are grouped by *operation* (not tenant): the latency
/// profile of `chase` vs `put` is what capacity planning needs.
pub const LATENCY_ENDPOINTS: &[&str] = &[
    "healthz", "readyz", "statz", "compile", "lint", "explain", "chase", "exchange", "put",
    "migrate", "other",
];

/// Classify a request path into a [`LATENCY_ENDPOINTS`] index.
pub fn latency_endpoint(path: &str) -> usize {
    let key = match path.strip_prefix("/v1/mappings/") {
        Some(rest) => match rest.split_once('/') {
            Some((_name, op)) => op,
            None => "other",
        },
        None => path.trim_start_matches('/'),
    };
    LATENCY_ENDPOINTS
        .iter()
        .position(|e| *e == key)
        .unwrap_or(LATENCY_ENDPOINTS.len() - 1)
}

/// Process-wide counters, all relaxed: they are telemetry, not
/// synchronization.
#[derive(Default)]
pub struct ServerStats {
    pub accepted: AtomicU64,
    pub served: AtomicU64,
    /// Connections shed by the acceptor because the queue was full.
    pub shed_queue: AtomicU64,
    /// Requests shed by the per-mapping in-flight cap.
    pub shed_tenant: AtomicU64,
    /// Requests refused by DEX502 admission control.
    pub refused: AtomicU64,
    /// Requests answered 206 with a partial result.
    pub partials: AtomicU64,
    /// Requests answered 500 (including injected faults).
    pub errors: AtomicU64,
    /// Panics caught by a barrier (request-level or connection-level).
    pub panics: AtomicU64,
    /// Connections whose request never parsed (400/413/dropped).
    pub malformed: AtomicU64,
    /// Requests currently executing in a worker (gauge, AcqRel: the
    /// drain loop reads it to decide when the server is quiescent).
    pub in_flight: AtomicU64,
    /// Per-endpoint request-latency histograms, indexed by
    /// [`latency_endpoint`]. Fixed-size atomics: recording allocates
    /// nothing.
    pub latency: [LatencyHistogram; LATENCY_ENDPOINTS.len()],
}

impl ServerStats {
    pub fn note_shed_tenant(&self) {
        self.shed_tenant.fetch_add(1, Ordering::Relaxed);
    }
    pub fn note_refused(&self) {
        self.refused.fetch_add(1, Ordering::Relaxed);
    }
    pub fn note_partial(&self) {
        self.partials.fetch_add(1, Ordering::Relaxed);
    }
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served request's wall-clock latency against the
    /// endpoint that handled `path`.
    pub fn note_latency(&self, path: &str, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.latency[latency_endpoint(path)].record(micros);
    }

    /// The `/statz` `latency` object: one histogram summary per
    /// endpoint that has served at least one request.
    fn latency_json(&self) -> Json {
        let mut m = Map::new();
        for (name, hist) in LATENCY_ENDPOINTS.iter().zip(&self.latency) {
            if hist.count.load(Ordering::Relaxed) > 0 {
                m.insert((*name).to_string(), hist.json());
            }
        }
        Json::Object(m)
    }

    fn json(&self) -> Json {
        json!({
            "accepted": self.accepted.load(Ordering::Relaxed),
            "served": self.served.load(Ordering::Relaxed),
            "shed_queue": self.shed_queue.load(Ordering::Relaxed),
            "shed_tenant": self.shed_tenant.load(Ordering::Relaxed),
            "refused": self.refused.load(Ordering::Relaxed),
            "partials": self.partials.load(Ordering::Relaxed),
            "errors": self.errors.load(Ordering::Relaxed),
            "panics": self.panics.load(Ordering::Relaxed),
            "malformed": self.malformed.load(Ordering::Relaxed),
            "in_flight": self.in_flight.load(Ordering::Acquire),
        })
    }
}

/// Shared server state handed to every handler.
pub struct ServerCtx {
    pub config: ServerConfig,
    pub catalog: Catalog,
    pub stats: ServerStats,
    /// Cancelled when the drain deadline expires: every in-flight
    /// governed run trips to its 206 partial. End-of-life only —
    /// cancellation is sticky.
    pub drain_cancel: CancelToken,
    shutdown: AtomicBool,
}

impl ServerCtx {
    /// True once shutdown has been requested: `/readyz` flips to 503
    /// and newly accepted connections are refused.
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The `/statz` document: server counters plus per-mapping state.
    pub fn statz(&self) -> Json {
        let mut mappings = Map::new();
        for entry in self.catalog.entries() {
            mappings.insert(entry.name.clone(), entry.stats_json());
        }
        json!({
            "v": 1,
            "draining": self.is_draining(),
            "server": self.stats.json(),
            "latency": self.stats.latency_json(),
            "mappings": Json::Object(mappings),
        })
    }
}

/// Poison-tolerant lock: a worker that panicked while holding the
/// queue lock (only possible through injected faults) must not wedge
/// the rest of the pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The bounded handoff between acceptor and workers.
struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
    /// Connections popped by a worker and not yet fully served.
    /// Incremented *inside* the queue lock during [`pop`](Queue::pop),
    /// so `queue empty ∧ active == 0` (see [`idle`](Queue::idle)) is a
    /// race-free quiescence check for the drain loop — a connection is
    /// never in neither place.
    active: AtomicU64,
}

struct QueueInner {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            active: AtomicU64::new(0),
        }
    }

    /// Non-blocking enqueue; hands the stream back when full (the
    /// acceptor sheds it) or closed.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = lock(&self.inner);
        if q.closed || q.items.len() >= self.capacity {
            return Err(stream);
        }
        q.items.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue; `None` once the queue is closed *and* empty
    /// (drain: queued work is still served after shutdown). The popped
    /// connection counts as active until [`done`](Queue::done).
    fn pop(&self) -> Option<TcpStream> {
        let mut q = lock(&self.inner);
        loop {
            if let Some(s) = q.items.pop_front() {
                self.active.fetch_add(1, Ordering::AcqRel);
                return Some(s);
            }
            if q.closed {
                return None;
            }
            q = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .map(|(g, _)| g)
                .unwrap_or_else(|p| {
                    let (g, _) = p.into_inner();
                    g
                });
        }
    }

    /// A popped connection has been fully served (or dropped).
    fn done(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// No queued *and* no active connections: the server is quiescent.
    fn idle(&self) -> bool {
        lock(&self.inner).items.is_empty() && self.active.load(Ordering::Acquire) == 0
    }
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) detaches the server thread
/// (it keeps serving for the life of the process).
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind, start the acceptor + worker pool, and return once the
    /// socket is listening.
    pub fn spawn(config: ServerConfig, catalog: Catalog) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if let Some(root) = &config.store_root {
            // Skip past run directories a previous daemon process left
            // behind — `Store::create` refuses to overwrite them.
            catalog.seed_store_seqs(root);
        }
        let ctx = Arc::new(ServerCtx {
            config,
            catalog,
            stats: ServerStats::default(),
            drain_cancel: CancelToken::new(),
            shutdown: AtomicBool::new(false),
        });
        let run_ctx = Arc::clone(&ctx);
        let thread = std::thread::Builder::new()
            .name("dexd-acceptor".to_string())
            .spawn(move || run(listener, &run_ctx))?;
        Ok(ServerHandle {
            ctx,
            addr,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server state (stats, drain flag) for observation.
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Ask the server to stop accepting and start draining, without
    /// waiting. `/readyz` answers 503 from this point on.
    pub fn request_shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Release);
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests under the drain deadline, join every thread.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(t) = self.thread.take() {
            // An Err here means the acceptor thread itself panicked;
            // there is no server left to salvage and nothing to return
            // it to — the handle is consumed either way.
            let _ = t.join();
        }
    }
}

/// How long the acceptor sleeps when `accept` would block. This is
/// the floor on cold-connection latency (E19 measures it directly)
/// and the ceiling on shutdown-flag polling, so it is kept tight; a
/// millisecond of idle wakeups costs nothing on a dedicated thread.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// The acceptor + worker pool, on the dedicated server thread. Returns
/// only after a full drain: once shutdown is requested, new
/// connections are answered `503 draining` while queued and in-flight
/// requests finish; past the drain deadline the shared cancel token
/// trips them into 206 partials; the listener closes only when the
/// server is quiescent.
fn run(listener: TcpListener, ctx: &Arc<ServerCtx>) {
    let queue = Queue::new(ctx.config.queue_capacity);
    // Any Err from scope would mean a worker panicked outside its
    // connection barrier; the barrier makes that unreachable, and the
    // server is exiting regardless.
    let _ = crossbeam::scope(|s| {
        for _ in 0..ctx.config.workers.max(1) {
            let queue = &queue;
            let ctx = Arc::clone(ctx);
            s.spawn(move |_| worker_loop(queue, &ctx));
        }
        accept_loop(&listener, &queue, ctx);
        // Quiescent: release the workers. Scope exit joins them.
        queue.close();
    });
}

/// Accept (and during drain, refuse) connections until the server is
/// both shut down and quiescent. Full queue → immediate 429 +
/// `Retry-After`; draining → immediate 503. Both cost the acceptor one
/// small write, never a worker.
fn accept_loop(listener: &TcpListener, queue: &Queue, ctx: &Arc<ServerCtx>) {
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if ctx.is_draining() {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + ctx.config.drain_deadline);
            if queue.idle() {
                return;
            }
            if Instant::now() >= deadline {
                // Past the deadline: trip every in-flight governed
                // run. Each unwinds cooperatively into its 206
                // partial; queued requests then see the cancelled
                // token immediately and finish fast.
                ctx.drain_cancel.cancel();
                // Cancellation is cooperative and request reads are
                // deadline-bounded, so workers quiesce within roughly
                // one io_timeout of the cancel. A connection stuck
                // past that (a peer that never drains its response,
                // a non-governed code path) must not hang shutdown
                // forever: stop waiting and let the scope join the
                // workers as their sockets time out.
                if Instant::now() >= deadline + ctx.config.io_timeout + Duration::from_secs(1) {
                    return;
                }
            }
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient accept failure (EMFILE, ECONNABORTED, …):
            // count it and keep accepting — never exit the loop.
            Err(_) => {
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        // `server.accept` fail point: Error drops the brand-new
        // connection; Panic must not kill the acceptor, so it is
        // caught right here.
        match catch_unwind(|| fail::hit("server.accept")) {
            Ok(None) => {}
            Ok(Some(_e)) => {
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                continue; // drop the connection
            }
            Err(_) => {
                ctx.stats.panics.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(ctx.config.io_timeout));
        let _ = stream.set_write_timeout(Some(ctx.config.io_timeout));
        if ctx.is_draining() {
            shed(
                stream,
                Response::error(503, "draining", "shutting down").with_retry_after(1),
            );
            continue;
        }
        if let Err(stream) = queue.try_push(stream) {
            ctx.stats.shed_queue.fetch_add(1, Ordering::Relaxed);
            shed(
                stream,
                Response::error(
                    429,
                    "overloaded",
                    format!(
                        "request queue full ({} waiting, {} workers busy)",
                        ctx.config.queue_capacity, ctx.config.workers
                    ),
                )
                .with_retry_after(1),
            );
        }
    }
}

/// Best-effort refusal write from the acceptor thread. The request
/// was never read, so this must be the RST-safe path — and it bounds
/// the acceptor's stall per shed (~100 ms worst case against a client
/// that never closes).
fn shed(mut stream: TcpStream, resp: Response) {
    resp.write_refusal(&mut stream);
}

/// One worker: pop connections until the queue closes, each behind a
/// connection-level panic barrier so no injected or latent panic can
/// thin the pool.
fn worker_loop(queue: &Queue, ctx: &Arc<ServerCtx>) {
    while let Some(mut stream) = queue.pop() {
        ctx.stats.in_flight.fetch_add(1, Ordering::AcqRel);
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(&mut stream, ctx)));
        if outcome.is_err() {
            // A panic escaped the request barrier (e.g. injected at a
            // `server.*` site outside it). The worker survives; the
            // client gets a best-effort 500 (RST-safe: the request may
            // be half-read).
            ctx.stats.note_panic();
            Response::error(500, "panic", "internal panic").write_refusal(&mut stream);
        }
        ctx.stats.in_flight.fetch_sub(1, Ordering::AcqRel);
        queue.done();
    }
}

/// Read, route, respond — one request per connection.
fn serve_connection(stream: &mut TcpStream, ctx: &Arc<ServerCtx>) {
    // `server.read_request` fail point: an injected error behaves like
    // a client whose request never parsed.
    if let Some(e) = fail::hit("server.read_request") {
        ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
        Response::error(400, "bad_request", e).write_refusal(stream);
        return;
    }
    let req = match read_request(stream, ctx.config.io_timeout) {
        Ok(req) => req,
        Err(ReadError::Malformed(msg)) => {
            ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
            Response::error(400, "bad_request", msg).write_refusal(stream);
            return;
        }
        Err(ReadError::TooLarge(msg)) => {
            ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
            Response::error(413, "too_large", msg).write_refusal(stream);
            return;
        }
        Err(ReadError::Io(_)) => {
            // The socket died; nobody is listening for an error body.
            ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let started = Instant::now();
    let mut resp = route(&req, ctx);
    ctx.stats.note_latency(&req.path, started.elapsed());
    // `server.write_response` fail point: the computed response is
    // lost; degrade to a well-formed 500 so the client still gets
    // valid HTTP.
    if let Some(e) = fail::hit("server.write_response") {
        ctx.stats.note_error();
        resp = Response::error(500, "internal", e);
    }
    ctx.stats.served.fetch_add(1, Ordering::Relaxed);
    let _ = resp.write_to(stream);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bounds_and_close_semantics() {
        // TcpStream is awkward to fabricate; exercise the queue with a
        // real loopback pair.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mk = || {
            let c = TcpStream::connect(addr).expect("connect");
            let (s, _) = listener.accept().expect("accept");
            drop(c);
            s
        };
        let q = Queue::new(2);
        assert!(q.idle(), "fresh queue is idle");
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_err(), "third enqueue sheds");
        assert!(!q.idle());
        assert!(q.pop().is_some());
        q.close();
        assert!(q.pop().is_some(), "queued work drains after close");
        assert!(!q.idle(), "popped connections count as active");
        q.done();
        q.done();
        assert!(q.idle(), "served connections release the gauge");
        assert!(q.pop().is_none(), "closed and empty");
        assert!(q.try_push(mk()).is_err(), "closed queue rejects");
    }

    #[test]
    fn latency_histogram_percentiles_bound_the_data() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(50), None, "empty histogram has no percentiles");
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record(us);
        }
        let p50 = h.percentile(50).unwrap();
        // Log₂ buckets answer within 2× above the true value.
        assert!((50..=128).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(99).unwrap();
        assert!(p99 >= 5000, "p99 = {p99} must cover the outlier");
        assert_eq!(h.max_us.load(Ordering::Relaxed), 5000, "max is exact");
        assert_eq!(h.count.load(Ordering::Relaxed), 10);
        // Zero is recordable (sub-microsecond request) and huge values
        // clamp into the last bucket instead of indexing out of range.
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count.load(Ordering::Relaxed), 12);
        assert_eq!(h.max_us.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn latency_endpoint_classification() {
        let idx = |p| LATENCY_ENDPOINTS[latency_endpoint(p)];
        assert_eq!(idx("/healthz"), "healthz");
        assert_eq!(idx("/statz"), "statz");
        assert_eq!(idx("/v1/mappings/emp/chase"), "chase");
        assert_eq!(idx("/v1/mappings/any-tenant/migrate"), "migrate");
        assert_eq!(idx("/v1/mappings/emp/bogus"), "other");
        assert_eq!(idx("/nonsense"), "other");
        assert_eq!(idx("/v1/mappings/alone"), "other");
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_capacity >= 1);
        assert!(c.auto_budget);
        assert!(c.deny_cost.is_none());
    }
}
