//! Instance ⇄ JSON conversion for the HTTP surface.
//!
//! Same wire shape as the `dexcli` file format: an object of relation
//! names to arrays of rows, labeled nulls as `{"null": n}`, Skolem
//! terms (output only) as `{"skolem": f, "args": […]}`.

use dex_relational::{Instance, Schema, Tuple, Value};
use serde_json::{json, Map, Value as Json};

/// Build an instance over `schema` from its JSON object form. Errors
/// are client errors (unknown relation, arity mismatch, unsupported
/// value) phrased for a 400 response body.
pub fn instance_from_json(j: &Json, schema: &Schema) -> Result<Instance, String> {
    let obj = j
        .as_object()
        .ok_or_else(|| "expected a JSON object of relations".to_string())?;
    let mut inst = Instance::empty(schema.clone());
    for (rel, rows) in obj {
        let rows = rows
            .as_array()
            .ok_or_else(|| format!("`{rel}` must be an array of rows"))?;
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("rows of `{rel}` must be arrays"))?;
            let tuple: Tuple = cells
                .iter()
                .map(json_to_value)
                .collect::<Result<Vec<_>, _>>()?
                .into();
            inst.insert(rel, tuple).map_err(|e| e.to_string())?;
        }
    }
    Ok(inst)
}

/// Render an instance as its JSON object form (empty relations
/// omitted, mirroring the CLI).
pub fn instance_to_json(inst: &Instance) -> Json {
    let mut obj = Map::new();
    for rel in inst.relations() {
        if rel.is_empty() {
            continue;
        }
        let rows: Vec<Json> = rel
            .iter()
            .map(|t| Json::Array(t.iter().map(value_to_json).collect()))
            .collect();
        obj.insert(rel.name().to_string(), Json::Array(rows));
    }
    Json::Object(obj)
}

fn json_to_value(j: &Json) -> Result<Value, String> {
    match j {
        Json::String(s) => Ok(Value::str(s.clone())),
        Json::Number(n) => n
            .as_i64()
            .map(Value::int)
            .ok_or_else(|| format!("non-integer number {n}")),
        Json::Bool(b) => Ok(Value::bool(*b)),
        Json::Object(o) => {
            if let Some(id) = o.get("null").and_then(Json::as_u64) {
                return Ok(Value::null(id));
            }
            Err(format!("unsupported value {j}"))
        }
        other => Err(format!("unsupported value {other}")),
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Const(dex_relational::Constant::Int(i)) => json!(i),
        Value::Const(dex_relational::Constant::Str(s)) => json!(s),
        Value::Const(dex_relational::Constant::Bool(b)) => json!(b),
        Value::Null(n) => json!({ "null": n.0 }),
        Value::Skolem(f, args) => json!({
            "skolem": f.as_str(),
            "args": args.iter().map(value_to_json).collect::<Vec<_>>(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_logic::parse_mapping;

    #[test]
    fn instance_round_trips_through_json() {
        let m = parse_mapping("source Emp(name, dept);\ntarget T(a);\nEmp(x, d) -> T(x);").unwrap();
        let j = json!({"Emp": json!([json!(["ann", "eng"]), json!(["bob", "ops"])])});
        let inst = instance_from_json(&j, m.source()).unwrap();
        assert_eq!(inst.fact_count(), 2);
        assert_eq!(instance_to_json(&inst), j);
    }

    #[test]
    fn bad_shapes_are_client_errors() {
        let m = parse_mapping("source Emp(name);\ntarget T(a);\nEmp(x) -> T(x);").unwrap();
        for bad in [
            json!([1, 2]),
            json!({"Emp": "nope"}),
            json!({"Emp": json!([json!([1.5])])}),
            json!({"Nope": json!([json!(["x"])])}),
        ] {
            assert!(instance_from_json(&bad, m.source()).is_err(), "{bad}");
        }
    }
}
