//! `dexd` — the fault-tolerant, multi-tenant data-exchange daemon.
//!
//! Serves a catalog of named schema mappings over a deliberately tiny
//! HTTP/1.1 + JSON surface (hand-rolled on `std::net`; no async
//! runtime, no HTTP dependency):
//!
//! | endpoint                          | meaning                         |
//! |-----------------------------------|---------------------------------|
//! | `GET /healthz`                    | process liveness                |
//! | `GET /readyz`                     | availability (503 only when     |
//! |                                   | draining or *no* mapping can    |
//! |                                   | serve; body lists quarantined   |
//! |                                   | and migrating mappings)         |
//! | `GET /statz`                      | counters, per-mapping state,    |
//! |                                   | per-endpoint latency p50/p99/max|
//! | `POST /v1/mappings/{m}/compile`   | lens template + holes report    |
//! | `POST /v1/mappings/{m}/lint`      | diagnostics (422 on errors)     |
//! | `POST /v1/mappings/{m}/explain`   | static chase-cost plan          |
//! | `POST /v1/mappings/{m}/chase`     | governed chase of `source`      |
//! | `POST /v1/mappings/{m}/exchange`  | governed lens forward pass      |
//! | `POST /v1/mappings/{m}/put`       | lens backward (updatable view)  |
//! | `POST /v1/mappings/{m}/migrate`   | crash-safe live migration of a  |
//! |                                   | persisted run (quarantines the  |
//! |                                   | mapping; resumable via 206)     |
//!
//! The robustness model is the paper's governed-execution story lifted
//! to a shared process: *every* failure mode has a typed, bounded
//! response. Static cost bounds refuse hopeless requests before any
//! work (422, DEX502); a bounded queue sheds load at the acceptor
//! (429 + `Retry-After`); per-mapping in-flight caps keep one tenant
//! from starving the rest (429); budgets govern every chase, and
//! exhaustion returns the consistent partial result (206 +
//! `ExhaustionReport`) instead of an error; panics are caught per
//! request, answered with 500, and quarantine the offending mapping
//! (503 thereafter) so a deterministic bug cannot crash-loop the
//! process; graceful shutdown drains under a deadline, cancelling
//! overrunning work into 206s. The status codes are in 1:1
//! correspondence with the CLI's exit-code contract
//! (`200↔0`, `206↔3`, `422↔2`, `500↔70`).
//!
//! Chaos coverage: with the `failpoints` feature the network layer
//! exposes `server.accept` / `server.read_request` / `server.dispatch`
//! / `server.write_response` fail-point sites
//! ([`dex_relational::fail::SERVER_SITES`]); `tests/chaos.rs` drives
//! the full site × {error, panic} matrix through a live server and
//! asserts the daemon keeps answering well-formed responses.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
// Unit tests may unwrap: a panic there is the failure report.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod handlers;
pub mod http;
pub mod json;
pub mod server;

pub use catalog::{Catalog, CatalogEntry};
pub use http::{Request, Response, MAX_BODY_BYTES};
pub use server::{ServerConfig, ServerCtx, ServerHandle, ServerStats};
