//! A text syntax for schema mappings.
//!
//! Grammar (informal):
//!
//! ```text
//! mapping    := (decl | rule)* ;
//! decl       := ("source" | "target") Ident "(" attrs ")" ";"
//!             | "key" Ident "(" attrs ")" ";"
//! rule       := conj "->" disj ";"
//! conj       := atom ("&" atom)*
//! disj       := conj ("|" conj)*          -- "|" only in disjunctive rules
//! atom       := Ident "(" term ("," term)* ")"
//! term       := Ident | Int | String | "true" | "false"
//! ```
//!
//! Variables are lowercase-initial identifiers; existential
//! quantification is implicit (a right-hand-side variable not occurring
//! on the left is existential, exactly as in the paper's formula (1)).
//! Comments run from `--` or `//` to end of line.
//!
//! Example (the paper's Figure 1 mapping):
//!
//! ```text
//! source Takes(name, course);
//! target Student(id, name);
//! target Assgn(name, course);
//! Takes(x, y) -> Student(z, x) & Assgn(x, y);
//! ```

// The parser is the boundary where untrusted bytes enter the system:
// every failure on malformed input must surface as a `ParseError`, never
// a panic. The lints below make that a compile-time guarantee (the test
// module opts back out — panicking on a failed assertion is the point).
#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![deny(clippy::panic)]

use crate::atom::Atom;
use crate::mapping::Mapping;
use crate::span::{SourceMap, Span};
use crate::term::Term;
use crate::tgd::{DisjTgd, Egd, StTgd};
use dex_relational::{Constant, Fd, Name, RelSchema, Schema};
use std::fmt;

/// A parse failure, with 1-based line/column of the offending token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Build a parse error anchored at the start of `span`.
    fn at(span: Span, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: span.line,
            col: span.col,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Arrow,
    Amp,
    Pipe,
    Eq,
    Turnstile,
    Eof,
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    col: usize,
    end_line: usize,
    end_col: usize,
}

impl SpannedTok {
    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
            end_line: self.end_line,
            end_col: self.end_col,
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = input.chars().peekable();
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }
    loop {
        let (l, c0) = (line, col);
        let Some(&c) = chars.peek() else {
            out.push(SpannedTok {
                tok: Tok::Eof,
                line,
                col,
                end_line: line,
                end_col: col,
            });
            return Ok(out);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '(' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::LParen,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            ')' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::RParen,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            ',' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::Comma,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            ';' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::Semi,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            '&' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::Amp,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            '|' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::Pipe,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            '=' => {
                bump!();
                out.push(SpannedTok {
                    tok: Tok::Eq,
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    out.push(SpannedTok {
                        tok: Tok::Turnstile,
                        line: l,
                        col: c0,
                        end_line: line,
                        end_col: col,
                    });
                } else {
                    return Err(ParseError {
                        message: "expected `:-`".into(),
                        line: l,
                        col: c0,
                    });
                }
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some('>') => {
                        bump!();
                        out.push(SpannedTok {
                            tok: Tok::Arrow,
                            line: l,
                            col: c0,
                            end_line: line,
                            end_col: col,
                        });
                    }
                    Some('-') => {
                        // comment to end of line
                        while let Some(&c2) = chars.peek() {
                            if c2 == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let mut n = String::from("-");
                        while let Some(&d) = chars.peek() {
                            if d.is_ascii_digit() {
                                n.push(d);
                                bump!();
                            } else {
                                break;
                            }
                        }
                        let v = n.parse::<i64>().map_err(|_| ParseError {
                            message: format!("bad integer literal {n}"),
                            line: l,
                            col: c0,
                        })?;
                        out.push(SpannedTok {
                            tok: Tok::Int(v),
                            line: l,
                            col: c0,
                            end_line: line,
                            end_col: col,
                        });
                    }
                    _ => {
                        return Err(ParseError {
                            message: "expected `->`, `--`, or a number after `-`".into(),
                            line: l,
                            col: c0,
                        })
                    }
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(ParseError {
                        message: "expected `//`".into(),
                        line: l,
                        col: c0,
                    });
                }
            }
            '\'' | '"' => {
                let quote = c;
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some(c2) if c2 == quote => break,
                        Some(c2) => s.push(c2),
                        None => {
                            return Err(ParseError {
                                message: "unterminated string literal".into(),
                                line: l,
                                col: c0,
                            })
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            d if d.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d2) = chars.peek() {
                    if d2.is_ascii_digit() {
                        n.push(d2);
                        bump!();
                    } else {
                        break;
                    }
                }
                let v = n.parse::<i64>().map_err(|_| ParseError {
                    message: format!("bad integer literal {n}"),
                    line: l,
                    col: c0,
                })?;
                out.push(SpannedTok {
                    tok: Tok::Int(v),
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            a if a.is_alphabetic() || a == '_' => {
                let mut s = String::new();
                while let Some(&a2) = chars.peek() {
                    if a2.is_alphanumeric() || a2 == '_' {
                        s.push(a2);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(s),
                    line: l,
                    col: c0,
                    end_line: line,
                    end_col: col,
                });
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    line: l,
                    col: c0,
                })
            }
        }
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SpannedTok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    /// Span of the token about to be consumed.
    fn cur_span(&self) -> Span {
        self.peek().span()
    }

    /// Span of the most recently consumed token.
    fn last_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span()
    }

    fn next(&mut self) -> SpannedTok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if &self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                self.next();
                match s.as_str() {
                    "true" => Ok(Term::cnst(true)),
                    "false" => Ok(Term::cnst(false)),
                    _ => Ok(Term::var(s)),
                }
            }
            Tok::Int(i) => {
                self.next();
                Ok(Term::Const(Constant::Int(i)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Term::Const(Constant::Str(s)))
            }
            _ => Err(self.err("expected a term (variable, number, or string)")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let rel = self.ident("a relation name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = vec![self.term()?];
        while self.peek().tok == Tok::Comma {
            self.next();
            args.push(self.term()?);
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(Atom::new(rel, args))
    }

    fn conjunction(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut atoms = vec![self.atom()?];
        while self.peek().tok == Tok::Amp {
            self.next();
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    /// rule := conj -> conj (| conj)* ;   (a tgd)
    fn rule(&mut self) -> Result<DisjTgd, ParseError> {
        match self.rule_or_egd()? {
            Rule::Tgd(d) => Ok(d),
            Rule::Egd(_) => Err(self.err("expected a tgd, found an egd rule")),
        }
    }

    /// rule := conj -> conj (| conj)* ;             (a tgd)
    ///       | conj -> term = term (& term = term)* ; (an egd)
    fn rule_or_egd(&mut self) -> Result<Rule, ParseError> {
        let lhs = self.conjunction()?;
        self.expect(&Tok::Arrow, "`->`")?;
        // Lookahead: `Ident (` begins an atom (tgd); `term =` begins an
        // equality (egd).
        let is_atom = matches!(
            (
                &self.toks[self.pos].tok,
                self.toks.get(self.pos + 1).map(|t| &t.tok)
            ),
            (Tok::Ident(_), Some(Tok::LParen))
        );
        if is_atom {
            let mut disjuncts = vec![self.conjunction()?];
            while self.peek().tok == Tok::Pipe {
                self.next();
                disjuncts.push(self.conjunction()?);
            }
            self.expect(&Tok::Semi, "`;`")?;
            Ok(Rule::Tgd(DisjTgd::new(lhs, disjuncts)))
        } else {
            let mut equalities = Vec::new();
            loop {
                let a = self.term()?;
                self.expect(&Tok::Eq, "`=`")?;
                let b = self.term()?;
                equalities.push((a, b));
                if self.peek().tok == Tok::Amp {
                    self.next();
                    continue;
                }
                break;
            }
            self.expect(&Tok::Semi, "`;`")?;
            Ok(Rule::Egd(Egd::new(lhs, equalities)))
        }
    }

    fn attr_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut attrs = vec![self.ident("an attribute name")?];
        while self.peek().tok == Tok::Comma {
            self.next();
            attrs.push(self.ident("an attribute name")?);
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(attrs)
    }
}

/// A parsed rule: either a (disjunctive) tgd or an egd.
enum Rule {
    Tgd(DisjTgd),
    Egd(Egd),
}

/// Parse a conjunctive query like `q(x, c) :- Student(i, x), Assgn(x, c)`
/// (commas or `&` separate body atoms). Returns the head variables and
/// the body.
pub fn parse_query(input: &str) -> Result<(Vec<Name>, Vec<Atom>), ParseError> {
    let toks = tokenize(input.trim())?;
    let mut p = Parser { toks, pos: 0 };
    let _name = p.ident("a query name")?;
    p.expect(&Tok::LParen, "`(`")?;
    let mut head = Vec::new();
    if p.peek().tok != Tok::RParen {
        head.push(Name::new(p.ident("a head variable")?));
        while p.peek().tok == Tok::Comma {
            p.next();
            head.push(Name::new(p.ident("a head variable")?));
        }
    }
    p.expect(&Tok::RParen, "`)`")?;
    p.expect(&Tok::Turnstile, "`:-`")?;
    let mut body = vec![p.atom()?];
    while matches!(p.peek().tok, Tok::Comma | Tok::Amp) {
        p.next();
        body.push(p.atom()?);
    }
    if p.peek().tok == Tok::Semi {
        p.next();
    }
    if p.peek().tok != Tok::Eof {
        return Err(p.err("trailing input after query"));
    }
    Ok((head, body))
}

/// Parse a single egd rule like
/// `Manager(x, y) & Manager(x, z) -> y = z;`.
pub fn parse_egd(input: &str) -> Result<Egd, ParseError> {
    let mut input = input.trim().to_string();
    if !input.ends_with(';') {
        input.push(';');
    }
    let toks = tokenize(&input)?;
    let mut p = Parser { toks, pos: 0 };
    match p.rule_or_egd()? {
        Rule::Egd(e) => {
            if p.peek().tok != Tok::Eof {
                return Err(p.err("trailing input after rule"));
            }
            Ok(e)
        }
        Rule::Tgd(_) => Err(p.err("expected an egd (t1 = t2 on the right-hand side)")),
    }
}

/// Parse a single tgd rule like `Emp(x) -> Manager(x, y);` (the
/// trailing `;` is optional here).
pub fn parse_tgd(input: &str) -> Result<StTgd, ParseError> {
    let mut input = input.trim().to_string();
    if !input.ends_with(';') {
        input.push(';');
    }
    let toks = tokenize(&input)?;
    let mut p = Parser { toks, pos: 0 };
    let mut d = p.rule()?;
    if d.disjuncts.len() != 1 {
        return Err(p.err("expected a non-disjunctive tgd"));
    }
    if p.peek().tok != Tok::Eof {
        return Err(p.err("trailing input after rule"));
    }
    let Some(rhs) = d.disjuncts.pop() else {
        return Err(p.err("rule has no right-hand side"));
    };
    Ok(StTgd::new(d.lhs, rhs))
}

/// Parse a disjunctive tgd rule like `Parent(x,y) -> Father(x,y) | Mother(x,y);`.
pub fn parse_disj_tgd(input: &str) -> Result<DisjTgd, ParseError> {
    let mut input = input.trim().to_string();
    if !input.ends_with(';') {
        input.push(';');
    }
    let toks = tokenize(&input)?;
    let mut p = Parser { toks, pos: 0 };
    let d = p.rule()?;
    if p.peek().tok != Tok::Eof {
        return Err(p.err("trailing input after rule"));
    }
    Ok(d)
}

/// Parse a full mapping file: `source`/`target`/`key` declarations plus
/// rules. Rules whose left-hand relations are all target relations are
/// classified as *target tgds*; rules with equalities on the right are
/// target egds; everything else must be an st-tgd.
///
/// ```
/// use dex_logic::parse_mapping;
///
/// let m = parse_mapping(r#"
///     source Emp(name);
///     target Manager(emp, mgr);
///     key Manager(emp);
///     Emp(x) -> Manager(x, y);
/// "#).unwrap();
/// assert_eq!(m.st_tgds().len(), 1);
/// assert_eq!(m.target_egds().len(), 1);
/// assert_eq!(
///     m.st_tgds()[0].to_string(),
///     "∀x (Emp(x) → ∃y Manager(x, y))"
/// );
/// ```
pub fn parse_mapping(input: &str) -> Result<Mapping, ParseError> {
    parse_mapping_with_spans(input).map(|(m, _)| m)
}

/// Like [`parse_mapping`], but also returns a [`SourceMap`] locating
/// every declaration and rule in the input text. The map's vectors are
/// aligned index-for-index with the mapping's accessors, so tooling
/// (e.g. the `dex-analyze` lint pass) can attach diagnostics to
/// concrete source spans.
pub fn parse_mapping_with_spans(input: &str) -> Result<(Mapping, SourceMap), ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let mut source = Schema::new();
    let mut target = Schema::new();
    let mut keys: Vec<(String, Vec<String>, Span)> = Vec::new();
    let mut rules: Vec<(DisjTgd, Span)> = Vec::new();
    let mut egd_rules: Vec<(Egd, Span)> = Vec::new();
    let mut map = SourceMap::default();

    loop {
        let start = p.cur_span();
        match p.peek().tok.clone() {
            Tok::Eof => break,
            Tok::Ident(kw) if kw == "source" || kw == "target" => {
                // Lookahead: `source Rel(attrs);` — but `source` could in
                // principle be a relation name in a rule; we require
                // declarations to look like `source Ident (`.
                let save = p.pos;
                p.next();
                if matches!(p.peek().tok, Tok::Ident(_)) {
                    let rel = p.ident("a relation name")?;
                    let attrs = p.attr_list()?;
                    p.expect(&Tok::Semi, "`;`")?;
                    let span = start.merge(p.last_span());
                    // Check vocabulary disjointness eagerly, so the
                    // error points at the second declaration.
                    let other = if kw == "source" { &target } else { &source };
                    if other.relation(&rel).is_some() {
                        return Err(ParseError::at(
                            span,
                            format!(
                                "relation `{rel}` is declared in both the source and \
                                 the target schema"
                            ),
                        ));
                    }
                    let rs = RelSchema::untyped(rel.clone(), attrs)
                        .map_err(|e| ParseError::at(span, e.to_string()))?;
                    if kw == "source" {
                        source
                            .add_relation(rs)
                            .map_err(|e| ParseError::at(span, e.to_string()))?;
                        map.source_decls.push((rel, span));
                    } else {
                        target
                            .add_relation(rs)
                            .map_err(|e| ParseError::at(span, e.to_string()))?;
                        map.target_decls.push((rel, span));
                    }
                } else {
                    // Not a declaration after all: re-parse as a rule.
                    p.pos = save;
                    match p.rule_or_egd()? {
                        Rule::Tgd(d) => rules.push((d, start.merge(p.last_span()))),
                        Rule::Egd(e) => egd_rules.push((e, start.merge(p.last_span()))),
                    }
                }
            }
            Tok::Ident(kw) if kw == "key" => {
                p.next();
                let rel = p.ident("a relation name")?;
                let attrs = p.attr_list()?;
                p.expect(&Tok::Semi, "`;`")?;
                keys.push((rel, attrs, start.merge(p.last_span())));
            }
            Tok::Ident(_) => match p.rule_or_egd()? {
                Rule::Tgd(d) => rules.push((d, start.merge(p.last_span()))),
                Rule::Egd(e) => egd_rules.push((e, start.merge(p.last_span()))),
            },
            _ => return Err(p.err("expected a declaration or a rule")),
        }
    }
    // Errors detected only after the whole input is consumed anchor at
    // the end of input (the Eof token's true position — never 0:0).
    let eof_span = p.cur_span();

    // Apply key declarations: FD on the schema + an egd if on the target.
    let mut target_egds: Vec<(Egd, Span)> = Vec::new();
    for (rel, attrs, span) in keys {
        let (is_target, rs) = if let Some(rs) = target.relation(&rel) {
            (true, rs.clone())
        } else if let Some(rs) = source.relation(&rel) {
            (false, rs.clone())
        } else {
            return Err(ParseError::at(
                span,
                format!("key declared on unknown relation `{rel}`"),
            ));
        };
        let schema = if is_target { &mut target } else { &mut source };
        let arity = rs.arity();
        let key_positions: Vec<usize> = attrs
            .iter()
            .map(|a| {
                rs.position(a).ok_or_else(|| {
                    ParseError::at(span, format!("key attribute `{a}` not in relation `{rel}`"))
                })
            })
            .collect::<Result<_, _>>()?;
        let non_key: Vec<Name> = rs
            .attr_names()
            .enumerate()
            .filter(|(i, _)| !key_positions.contains(i))
            .map(|(_, a)| a.clone())
            .collect();
        if !non_key.is_empty() {
            let fd = Fd::new(attrs.iter().map(Name::new).collect::<Vec<_>>(), non_key);
            let updated = rs
                .clone()
                .with_fd(fd)
                .map_err(|e| ParseError::at(span, e.to_string()))?;
            schema.remove_relation(&rel);
            schema
                .add_relation(updated)
                .map_err(|e| ParseError::at(span, e.to_string()))?;
        }
        if is_target {
            for e in Egd::key(&rel, arity, &key_positions) {
                target_egds.push((e, span));
            }
        }
    }

    // Explicit egd rules must live entirely on the target side.
    for (e, span) in egd_rules {
        let all_target = e
            .lhs
            .iter()
            .all(|a| target.relation(a.relation.as_str()).is_some());
        if !all_target {
            return Err(ParseError::at(
                span,
                format!(
                    "egd `{e}` must mention only target relations (egds are \
                     target dependencies)"
                ),
            ));
        }
        target_egds.push((e, span));
    }

    // Classify rules, validating each against its schemas so arity and
    // unknown-relation errors point at the offending rule.
    let mut st_tgds: Vec<(StTgd, Span)> = Vec::new();
    let mut target_tgds: Vec<(StTgd, Span)> = Vec::new();
    for (mut r, span) in rules {
        if r.disjuncts.len() != 1 {
            return Err(ParseError::at(
                span,
                format!("disjunctive rule `{r}` not allowed in a mapping file"),
            ));
        }
        let Some(rhs) = r.disjuncts.pop() else {
            return Err(ParseError::at(span, "rule has no right-hand side"));
        };
        let tgd = StTgd::new(r.lhs, rhs);
        let lhs_all_target = tgd
            .lhs
            .iter()
            .all(|a| target.relation(a.relation.as_str()).is_some());
        if lhs_all_target {
            tgd.validate(&target, &target)
                .map_err(|e| ParseError::at(span, e.to_string()))?;
            target_tgds.push((tgd, span));
        } else {
            tgd.validate(&source, &target)
                .map_err(|e| ParseError::at(span, e.to_string()))?;
            st_tgds.push((tgd, span));
        }
    }
    for (e, span) in &target_egds {
        e.validate(&target)
            .map_err(|err| ParseError::at(*span, err.to_string()))?;
    }

    map.st_tgds = st_tgds.iter().map(|(_, s)| *s).collect();
    map.target_tgds = target_tgds.iter().map(|(_, s)| *s).collect();
    map.target_egds = target_egds.iter().map(|(_, s)| *s).collect();

    let mapping = Mapping::with_target_deps(
        source,
        target,
        st_tgds.into_iter().map(|(t, _)| t).collect(),
        target_tgds.into_iter().map(|(t, _)| t).collect(),
        target_egds.into_iter().map(|(e, _)| e).collect(),
    )
    .map_err(|e| ParseError::at(eof_span, e.to_string()))?;
    Ok((mapping, map))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_tgd() {
        let t = parse_tgd("Emp(x) -> Manager(x, y)").unwrap();
        assert_eq!(t.to_string(), "∀x (Emp(x) → ∃y Manager(x, y))");
    }

    #[test]
    fn parse_tgd_with_constants() {
        let t = parse_tgd("R(x, 42, 'alice') -> S(x, \"bob\", true);").unwrap();
        assert_eq!(t.lhs[0].args[1], Term::cnst(42i64));
        assert_eq!(t.lhs[0].args[2], Term::cnst("alice"));
        assert_eq!(t.rhs[0].args[1], Term::cnst("bob"));
        assert_eq!(t.rhs[0].args[2], Term::cnst(true));
    }

    #[test]
    fn parse_negative_int() {
        let t = parse_tgd("R(x, -5) -> S(x);").unwrap();
        assert_eq!(t.lhs[0].args[1], Term::cnst(-5i64));
    }

    #[test]
    fn parse_conjunction_both_sides() {
        let t = parse_tgd("Student(x, y) & Assgn(y, z) -> Enrollment(x, z);").unwrap();
        assert_eq!(t.lhs.len(), 2);
        assert_eq!(t.rhs.len(), 1);
        assert!(t.is_full());
    }

    #[test]
    fn parse_disjunctive_rule() {
        let d = parse_disj_tgd("Parent(x, y) -> Father(x, y) | Mother(x, y)").unwrap();
        assert_eq!(d.disjuncts.len(), 2);
        assert_eq!(d.to_string(), "Parent(x, y) → Father(x, y) ∨ Mother(x, y)");
    }

    #[test]
    fn parse_full_mapping_file() {
        let m = parse_mapping(
            r#"
            -- the paper's Figure 1, upper part
            source Takes(name, course);
            target Student(id, name);
            target Assgn(name, course);

            Takes(x, y) -> Student(z, x) & Assgn(x, y);
            "#,
        )
        .unwrap();
        assert_eq!(m.source().len(), 1);
        assert_eq!(m.target().len(), 2);
        assert_eq!(m.st_tgds().len(), 1);
        assert_eq!(
            m.st_tgds()[0].to_string(),
            "∀x,y (Takes(x, y) → ∃z Student(z, x) ∧ Assgn(x, y))"
        );
    }

    #[test]
    fn parse_mapping_with_key() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            key Manager(emp);
            Emp(x) -> Manager(x, y);
            "#,
        )
        .unwrap();
        assert_eq!(m.target_egds().len(), 1);
        assert_eq!(m.target().relation("Manager").unwrap().fds().len(), 1);
    }

    #[test]
    fn target_rules_classified_as_target_tgds() {
        let m = parse_mapping(
            r#"
            source R(a);
            target S(a);
            target T(a);
            R(x) -> S(x);
            S(x) -> T(x);
            "#,
        )
        .unwrap();
        assert_eq!(m.st_tgds().len(), 1);
        assert_eq!(m.target_tgds().len(), 1);
    }

    #[test]
    fn comments_both_styles() {
        let t = parse_tgd("Emp(x) -- trailing comment\n// full line\n -> Manager(x, y);").unwrap();
        assert_eq!(t.lhs[0].relation, "Emp");
    }

    #[test]
    fn error_positions_reported() {
        let e = parse_tgd("Emp(x) -> ").unwrap_err();
        assert!(e.line >= 1);
        assert!(e.message.contains("expected"));
        let e = parse_mapping("source ;").unwrap_err();
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn unknown_key_relation_errors() {
        let e = parse_mapping("source R(a);\nkey S(a);").unwrap_err();
        assert!(e.message.contains("unknown relation"));
        // The error points at the `key` declaration, not 0:0.
        assert_eq!((e.line, e.col), (2, 1));
    }

    #[test]
    fn late_errors_carry_true_positions() {
        // Arity mismatch detected after parsing: points at the rule.
        let e = parse_mapping("source R(a);\ntarget S(a, b);\nR(x, y) -> S(x, y);").unwrap_err();
        assert!(e.message.contains("arity"), "{}", e.message);
        assert_eq!((e.line, e.col), (3, 1));
        // Source-side egd: points at the egd rule.
        let e = parse_mapping(
            "source Emp(name);\ntarget Manager(emp, mgr);\nEmp(x) & Emp(y) -> x = y;",
        )
        .unwrap_err();
        assert_eq!((e.line, e.col), (3, 1));
        // Overlapping declaration: points at the second declaration.
        let e = parse_mapping("source R(a);\ntarget R(a);").unwrap_err();
        assert!(e.message.contains("both"), "{}", e.message);
        assert_eq!((e.line, e.col), (2, 1));
        // Duplicate attribute in a declaration: points at the declaration.
        let e = parse_mapping("source R(a);\ntarget S(b, b);").unwrap_err();
        assert_eq!((e.line, e.col), (2, 1));
    }

    #[test]
    fn eof_errors_report_last_position() {
        // End-of-input errors report the true position of the end of
        // input (1-based), never line 0.
        // (`parse_tgd` trims and appends `;`, so the error lands on it.)
        let e = parse_tgd("Emp(x) -> ").unwrap_err();
        assert_eq!((e.line, e.col), (1, 10));
        let e = parse_mapping("source R(a);\nR(x) ->").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
    }

    #[test]
    fn source_map_locates_rules_and_decls() {
        let (m, map) = parse_mapping_with_spans(
            "source Emp(name);\n\
             target Manager(emp, mgr);\n\
             key Manager(emp);\n\
             Emp(x) -> Manager(x, y);\n\
             Manager(x, y) -> Manager(x, y);\n\
             Manager(x, y) & Manager(x, z) -> y = z;\n",
        )
        .unwrap();
        assert_eq!(m.st_tgds().len(), 1);
        assert_eq!(map.st_tgds.len(), 1);
        let s = map.st_tgds[0];
        assert_eq!((s.line, s.col), (4, 1));
        assert_eq!((s.end_line, s.end_col), (4, 25));
        // The target tgd sits on line 5.
        assert_eq!(map.target_tgds.len(), 1);
        assert_eq!(map.target_tgds[0].line, 5);
        // Egds: the key expansion carries the key decl's span (line 3),
        // the explicit rule its own (line 6) — in mapping order.
        assert_eq!(m.target_egds().len(), 2);
        assert_eq!(map.target_egds[0].line, 3);
        assert_eq!(map.target_egds[1].line, 6);
        // Declarations are findable by name.
        assert_eq!(map.source_decl("Emp").unwrap().line, 1);
        assert_eq!(map.target_decl("Manager").unwrap().line, 2);
        assert!(map.source_decl("Nope").is_none());
    }

    #[test]
    fn bad_arity_rejected_at_mapping_level() {
        let e = parse_mapping(
            r#"
            source R(a);
            target S(a, b);
            R(x, y) -> S(x, y);
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("arity"));
    }

    #[test]
    fn round_trip_through_display() {
        // parse → display (paper style) differs from input syntax, but
        // re-parsing the machine-readable form must agree.
        let t1 = parse_tgd("Takes(x, y) -> Student(z, x) & Assgn(x, y)").unwrap();
        let roundtrip = format!(
            "{} -> {}",
            t1.lhs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" & "),
            t1.rhs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" & ")
        );
        let t2 = parse_tgd(&roundtrip).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn parse_query_head_and_body() {
        let (head, body) = parse_query("q(n, c) :- Student(i, n), Assgn(n, c)").unwrap();
        assert_eq!(head, vec![Name::new("n"), Name::new("c")]);
        assert_eq!(body.len(), 2);
        assert_eq!(body[0].relation, "Student");
        // `&` works as a separator too; `;` is optional; boolean query.
        let (head, body) = parse_query("q() :- R(x) & S(x);").unwrap();
        assert!(head.is_empty());
        assert_eq!(body.len(), 2);
        assert!(parse_query("q(x) :-").is_err());
        assert!(parse_query("q(x) Student(x)").is_err());
    }

    #[test]
    fn parse_explicit_egd_rule() {
        let e = parse_egd("Manager(x, y) & Manager(x, z) -> y = z").unwrap();
        assert_eq!(e.lhs.len(), 2);
        assert_eq!(e.equalities.len(), 1);
        assert_eq!(e.to_string(), "Manager(x, y) ∧ Manager(x, z) → y = z");
        // Multiple equalities.
        let e2 = parse_egd("R(x, y, u, v) & R(x, z, w, q) -> y = z & u = w").unwrap();
        assert_eq!(e2.equalities.len(), 2);
    }

    #[test]
    fn egd_rules_in_mapping_become_target_egds() {
        let m = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) -> Manager(x, y);
            Manager(x, y) & Manager(x, z) -> y = z;
            "#,
        )
        .unwrap();
        assert_eq!(m.target_egds().len(), 1);
        assert_eq!(m.st_tgds().len(), 1);
    }

    #[test]
    fn source_side_egd_rejected() {
        let err = parse_mapping(
            r#"
            source Emp(name);
            target Manager(emp, mgr);
            Emp(x) & Emp(y) -> x = y;
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("target relations"));
    }

    #[test]
    fn parse_egd_rejects_tgds_and_vice_versa() {
        assert!(parse_egd("Emp(x) -> Manager(x, y)").is_err());
        assert!(parse_tgd("R(x, y) -> x = y").is_err());
    }

    #[test]
    fn unterminated_string_reported() {
        let e = parse_tgd("R('abc) -> S(x)").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
