//! Schema mappings: the triple (source schema, target schema,
//! dependencies).

use crate::sotgd::SoTgd;
use crate::tgd::{Egd, StTgd};
use dex_relational::{Instance, RelationalError, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A schema mapping `M = (S, T, Σ_st ∪ Σ_t)` in the sense of the
/// data-exchange literature: a source schema, a target schema (disjoint
/// vocabularies), a set of st-tgds, and optional *target dependencies*
/// (tgds and egds over the target only — keys, foreign keys).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mapping {
    source: Schema,
    target: Schema,
    st_tgds: Vec<StTgd>,
    target_tgds: Vec<StTgd>,
    target_egds: Vec<Egd>,
}

impl Mapping {
    /// Build and validate a mapping from st-tgds only.
    pub fn new(
        source: Schema,
        target: Schema,
        st_tgds: Vec<StTgd>,
    ) -> Result<Self, RelationalError> {
        Mapping::with_target_deps(source, target, st_tgds, vec![], vec![])
    }

    /// Build and validate a mapping with target dependencies.
    pub fn with_target_deps(
        source: Schema,
        target: Schema,
        st_tgds: Vec<StTgd>,
        target_tgds: Vec<StTgd>,
        target_egds: Vec<Egd>,
    ) -> Result<Self, RelationalError> {
        if source.overlaps(&target) {
            return Err(RelationalError::SchemaMismatch {
                context: "source and target schemas must use disjoint relation names".into(),
            });
        }
        for t in &st_tgds {
            t.validate(&source, &target)?;
        }
        for t in &target_tgds {
            t.validate(&target, &target)?;
        }
        for e in &target_egds {
            e.validate(&target)?;
        }
        Ok(Mapping {
            source,
            target,
            st_tgds,
            target_tgds,
            target_egds,
        })
    }

    /// The source schema.
    pub fn source(&self) -> &Schema {
        &self.source
    }

    /// The target schema.
    pub fn target(&self) -> &Schema {
        &self.target
    }

    /// The source-to-target tgds.
    pub fn st_tgds(&self) -> &[StTgd] {
        &self.st_tgds
    }

    /// The target tgds (within-target implications, e.g. inclusion
    /// dependencies).
    pub fn target_tgds(&self) -> &[StTgd] {
        &self.target_tgds
    }

    /// The target egds (keys and other equality constraints).
    pub fn target_egds(&self) -> &[Egd] {
        &self.target_egds
    }

    /// Are there any target dependencies?
    pub fn has_target_deps(&self) -> bool {
        !self.target_tgds.is_empty() || !self.target_egds.is_empty()
    }

    /// Is every st-tgd full (no existential variables)?
    pub fn is_full(&self) -> bool {
        self.st_tgds.iter().all(StTgd::is_full)
    }

    /// Is `tgt` a *solution* for `src` under this mapping — does the
    /// pair satisfy every dependency? (Paper §2: “every target instance
    /// J such that (I, J) satisfies all the st-tgds in M is called a
    /// solution for I under M”.)
    pub fn is_solution(&self, src: &Instance, tgt: &Instance) -> bool {
        self.st_tgds.iter().all(|t| t.satisfied_by(src, tgt))
            && self.target_tgds.iter().all(|t| t.satisfied_by(tgt, tgt))
            && self.target_egds.iter().all(|e| e.satisfied_by(tgt))
    }

    /// Skolemize the st-tgds into a single SO-tgd (the embedding used by
    /// the composition operator).
    pub fn to_sotgd(&self) -> SoTgd {
        SoTgd::from_st_tgds(&self.st_tgds)
    }

    /// The reversed *relationship* (not an inverse): swaps source and
    /// target schemas with each st-tgd flipped naively. Only meaningful
    /// for full tgds whose sides are both single atoms; used as a
    /// baseline against proper inverses in the `dex-ops` crate.
    pub fn naive_flip(&self) -> Result<Mapping, RelationalError> {
        let flipped = self
            .st_tgds
            .iter()
            .map(|t| StTgd::new(t.rhs.clone(), t.lhs.clone()))
            .collect();
        Mapping::new(self.target.clone(), self.source.clone(), flipped)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- source")?;
        write!(f, "{}", self.source)?;
        writeln!(f, "-- target")?;
        write!(f, "{}", self.target)?;
        writeln!(f, "-- st-tgds")?;
        for t in &self.st_tgds {
            writeln!(f, "{t}")?;
        }
        if !self.target_tgds.is_empty() {
            writeln!(f, "-- target tgds")?;
            for t in &self.target_tgds {
                writeln!(f, "{t}")?;
            }
        }
        if !self.target_egds.is_empty() {
            writeln!(f, "-- target egds")?;
            for e in &self.target_egds {
                writeln!(f, "{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use dex_relational::{tuple, RelSchema, Tuple, Value};

    fn emp_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap()
    }

    fn mgr_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap()
        ])
        .unwrap()
    }

    fn example1() -> Mapping {
        Mapping::new(
            emp_schema(),
            mgr_schema(),
            vec![StTgd::new(
                vec![Atom::vars("Emp", &["x"])],
                vec![Atom::vars("Manager", &["x", "y"])],
            )],
        )
        .unwrap()
    }

    #[test]
    fn overlapping_schemas_rejected() {
        let err = Mapping::new(emp_schema(), emp_schema(), vec![]).unwrap_err();
        assert!(matches!(err, RelationalError::SchemaMismatch { .. }));
    }

    #[test]
    fn invalid_tgd_rejected() {
        let err = Mapping::new(
            emp_schema(),
            mgr_schema(),
            vec![StTgd::new(
                vec![Atom::vars("Manager", &["x", "y"])], // target rel on lhs
                vec![Atom::vars("Manager", &["x", "y"])],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::UnknownRelation(_)));
    }

    #[test]
    fn example1_solutions() {
        let m = example1();
        let src = Instance::with_facts(
            emp_schema(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        let j1 = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
            )],
        )
        .unwrap();
        let j2 = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Bob"], tuple!["Bob", "Ted"]],
            )],
        )
        .unwrap();
        let j_star = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![
                    Tuple::new(vec![Value::str("Alice"), Value::null(1)]),
                    Tuple::new(vec![Value::str("Bob"), Value::null(2)]),
                ],
            )],
        )
        .unwrap();
        assert!(m.is_solution(&src, &j1));
        assert!(m.is_solution(&src, &j2));
        assert!(m.is_solution(&src, &j_star));
        assert!(!m.is_solution(&src, &Instance::empty(mgr_schema())));
    }

    #[test]
    fn target_egds_checked_in_solutions() {
        let egds = Egd::key("Manager", 2, &[0]);
        let m = Mapping::with_target_deps(
            emp_schema(),
            mgr_schema(),
            vec![StTgd::new(
                vec![Atom::vars("Emp", &["x"])],
                vec![Atom::vars("Manager", &["x", "y"])],
            )],
            vec![],
            egds,
        )
        .unwrap();
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let two_mgrs = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Bob"], tuple!["Alice", "Ted"]],
            )],
        )
        .unwrap();
        assert!(!m.is_solution(&src, &two_mgrs), "key violated");
        let one = Instance::with_facts(
            mgr_schema(),
            vec![("Manager", vec![tuple!["Alice", "Bob"]])],
        )
        .unwrap();
        assert!(m.is_solution(&src, &one));
    }

    #[test]
    fn fullness() {
        assert!(!example1().is_full());
        let full = Mapping::new(
            mgr_schema(),
            Schema::with_relations(vec![RelSchema::untyped("Boss", vec!["e", "m"]).unwrap()])
                .unwrap(),
            vec![StTgd::new(
                vec![Atom::vars("Manager", &["x", "y"])],
                vec![Atom::vars("Boss", &["x", "y"])],
            )],
        )
        .unwrap();
        assert!(full.is_full());
    }

    #[test]
    fn naive_flip_swaps_sides() {
        let m = example1();
        let f = m.naive_flip().unwrap();
        assert_eq!(f.source(), &mgr_schema());
        assert_eq!(f.target(), &emp_schema());
        assert_eq!(f.st_tgds()[0].lhs[0].relation, "Manager");
    }

    #[test]
    fn display_sections() {
        let s = example1().to_string();
        assert!(s.contains("-- source"));
        assert!(s.contains("∀x (Emp(x) → ∃y Manager(x, y))"));
    }
}
