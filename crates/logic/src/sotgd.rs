//! Second-order tuple-generating dependencies (SO-tgds).
//!
//! SO-tgds (Fagin, Kolaitis, Popa, Tan — cited as \[12\] in the paper)
//! extend st-tgds with existentially quantified *function symbols* and
//! equalities on the left-hand side. They are exactly the language
//! needed to close st-tgds under composition: the paper's Example 2
//! derives
//!
//! ```text
//! ∃f [ ∀x (Emp(x) → Boss(x, f(x)))
//!    ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]
//! ```
//!
//! which is not first-order expressible.

use crate::atom::{display_conjunction, Atom};
use crate::eval::match_conjunction;
use crate::term::Term;
use crate::tgd::StTgd;
use dex_relational::{Instance, Name, RelationalError, Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One clause `∀x̄ (φ ∧ eqs → ψ)` of an SO-tgd. Source atoms are
/// function-free; equalities and target atoms may contain applications
/// of the existential function symbols.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SoClause {
    /// Function-free source atoms.
    pub lhs_atoms: Vec<Atom>,
    /// Equalities (may mention function terms).
    pub lhs_eqs: Vec<(Term, Term)>,
    /// Target atoms (may mention function terms).
    pub rhs_atoms: Vec<Atom>,
}

impl SoClause {
    /// Build a clause.
    pub fn new(lhs_atoms: Vec<Atom>, lhs_eqs: Vec<(Term, Term)>, rhs_atoms: Vec<Atom>) -> Self {
        SoClause {
            lhs_atoms,
            lhs_eqs,
            rhs_atoms,
        }
    }

    /// Universal variables of the clause (those of the source atoms).
    pub fn vars(&self) -> Vec<Name> {
        let mut out = Vec::new();
        for a in &self.lhs_atoms {
            a.collect_vars(&mut out);
        }
        out
    }
}

impl fmt::Display for SoClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars = self.vars();
        if !vars.is_empty() {
            write!(
                f,
                "∀{} (",
                vars.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )?;
        } else {
            write!(f, "(")?;
        }
        write!(f, "{}", display_conjunction(&self.lhs_atoms))?;
        for (a, b) in &self.lhs_eqs {
            write!(f, " ∧ {a} = {b}")?;
        }
        write!(f, " → {})", display_conjunction(&self.rhs_atoms))
    }
}

/// A second-order tgd: `∃f̄ [ clause₁ ∧ … ∧ clauseₙ ]`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SoTgd {
    /// Existential function symbols with their arities.
    pub functions: Vec<(Name, usize)>,
    /// The conjoined clauses.
    pub clauses: Vec<SoClause>,
}

impl SoTgd {
    /// Build an SO-tgd.
    pub fn new(functions: Vec<(Name, usize)>, clauses: Vec<SoClause>) -> Self {
        SoTgd { functions, clauses }
    }

    /// Skolemize a set of st-tgds into an equivalent SO-tgd: each
    /// existential variable `y` of tgd `i` becomes a fresh function
    /// symbol applied to the tgd's frontier (the universal variables
    /// exported to the right-hand side).
    ///
    /// This is the standard embedding of st-tgds into SO-tgds — the
    /// first step of the composition algorithm.
    pub fn from_st_tgds(tgds: &[StTgd]) -> SoTgd {
        let mut functions = Vec::new();
        let mut clauses = Vec::new();
        let mut namer = FnNamer::default();
        for tgd in tgds {
            let frontier = tgd.frontier();
            let frontier_terms: Vec<Term> = frontier.iter().map(|v| Term::Var(v.clone())).collect();
            let mut subst: BTreeMap<Name, Term> = BTreeMap::new();
            for y in tgd.existential_vars() {
                let fname = namer.fresh();
                functions.push((fname.clone(), frontier.len()));
                subst.insert(y.clone(), Term::Func(fname, frontier_terms.clone()));
            }
            let rhs = tgd
                .rhs
                .iter()
                .map(|a| a.substitute(&subst))
                .collect::<Vec<_>>();
            clauses.push(SoClause::new(tgd.lhs.clone(), vec![], rhs));
        }
        SoTgd { functions, clauses }
    }

    /// If every clause is equality-free and function-free, the SO-tgd is
    /// an ordinary set of st-tgds again — return them. This is the
    /// de-skolemization used to show full st-tgds are closed under
    /// composition.
    pub fn try_into_st_tgds(&self) -> Option<Vec<StTgd>> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if !c.lhs_eqs.is_empty() {
                return None;
            }
            if c.rhs_atoms.iter().any(Atom::has_func) {
                return None;
            }
            out.push(StTgd::new(c.lhs_atoms.clone(), c.rhs_atoms.clone()));
        }
        Some(out)
    }

    /// Validate clause atoms against the source/target schemas.
    pub fn validate(&self, source: &Schema, target: &Schema) -> Result<(), RelationalError> {
        for c in &self.clauses {
            for a in &c.lhs_atoms {
                a.validate(source)?;
                if a.has_func() {
                    return Err(RelationalError::EvalError(format!(
                        "SO-tgd source atom {a} must be function-free"
                    )));
                }
            }
            for a in &c.rhs_atoms {
                a.validate(target)?;
            }
        }
        Ok(())
    }

    /// Bounded satisfaction check: does there exist an interpretation of
    /// the function symbols — ranging over the active domain of `src`
    /// and `tgt` plus the constants of the dependency — under which
    /// every clause holds for `(src, tgt)`?
    ///
    /// Exact for the (finite) instances given; the restriction to the
    /// active domain is the standard finite bound for testing and keeps
    /// this a decision procedure. Cost is exponential in the number of
    /// *distinct needed function applications*, which is small on the
    /// workloads this is used for (non-expressibility witnesses and
    /// composition tests).
    pub fn satisfied_by_bounded(&self, src: &Instance, tgt: &Instance) -> bool {
        // Candidate range for function values.
        let mut domain: BTreeSet<Value> = BTreeSet::new();
        for (_, t) in src.facts().chain(tgt.facts()) {
            for v in t.iter() {
                domain.insert(v.clone());
            }
        }
        for c in &self.clauses {
            for a in &c.rhs_atoms {
                collect_consts_atom(a, &mut domain);
            }
            for (x, y) in &c.lhs_eqs {
                collect_consts_term(x, &mut domain);
                collect_consts_term(y, &mut domain);
            }
        }
        let domain: Vec<Value> = domain.into_iter().collect();
        if domain.is_empty() {
            // No values anywhere: clauses can only be vacuous.
            return self
                .clauses
                .iter()
                .all(|c| match_conjunction(&c.lhs_atoms, src).is_empty());
        }

        // Ground constraints: one per (clause, lhs valuation).
        let mut constraints: Vec<GroundConstraint> = Vec::new();
        for c in &self.clauses {
            for m in match_conjunction(&c.lhs_atoms, src) {
                constraints.push(GroundConstraint {
                    eqs: c
                        .lhs_eqs
                        .iter()
                        .map(|(a, b)| (ground(a, &m), ground(b, &m)))
                        .collect(),
                    rhs: c
                        .rhs_atoms
                        .iter()
                        .map(|a| {
                            (
                                a.relation.clone(),
                                a.args.iter().map(|t| ground(t, &m)).collect(),
                            )
                        })
                        .collect(),
                });
            }
        }

        let mut assign: BTreeMap<(Name, Vec<Value>), Value> = BTreeMap::new();
        solve(&constraints, &domain, tgt, &mut assign)
    }
}

/// A term with variables already replaced by values; only function
/// applications remain symbolic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum GroundTerm {
    Val(Value),
    App(Name, Vec<GroundTerm>),
}

struct GroundConstraint {
    eqs: Vec<(GroundTerm, GroundTerm)>,
    rhs: Vec<(Name, Vec<GroundTerm>)>,
}

// The valuation `m` binds every premise variable by construction (it
// is built from the same clause's source atoms); a miss is a bug in
// the enumeration above, not a recoverable condition.
#[allow(clippy::expect_used)]
fn ground(t: &Term, m: &BTreeMap<Name, Value>) -> GroundTerm {
    match t {
        Term::Var(v) => GroundTerm::Val(
            m.get(v.as_str())
                .cloned()
                .expect("clause variable must occur in source atoms"),
        ),
        Term::Const(c) => GroundTerm::Val(Value::Const(c.clone())),
        Term::Func(f, args) => {
            GroundTerm::App(f.clone(), args.iter().map(|a| ground(a, m)).collect())
        }
    }
}

fn collect_consts_term(t: &Term, out: &mut BTreeSet<Value>) {
    match t {
        Term::Var(_) => {}
        Term::Const(c) => {
            out.insert(Value::Const(c.clone()));
        }
        Term::Func(_, args) => args.iter().for_each(|a| collect_consts_term(a, out)),
    }
}

fn collect_consts_atom(a: &Atom, out: &mut BTreeSet<Value>) {
    for t in &a.args {
        collect_consts_term(t, out);
    }
}

/// Evaluate a ground term under a partial function assignment.
/// `Err(app)` reports the first unassigned application blocking
/// evaluation.
fn eval_ground(
    t: &GroundTerm,
    assign: &BTreeMap<(Name, Vec<Value>), Value>,
) -> Result<Value, (Name, Vec<Value>)> {
    match t {
        GroundTerm::Val(v) => Ok(v.clone()),
        GroundTerm::App(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_ground(a, assign)?);
            }
            let key = (f.clone(), vals);
            match assign.get(&key) {
                Some(v) => Ok(v.clone()),
                None => Err(key),
            }
        }
    }
}

enum ConstraintState {
    Satisfied,
    Violated,
    NeedsBranch((Name, Vec<Value>)),
}

fn eval_constraint(
    c: &GroundConstraint,
    tgt: &Instance,
    assign: &BTreeMap<(Name, Vec<Value>), Value>,
) -> ConstraintState {
    // Equalities: conjunction on the lhs. Any false equality makes the
    // clause vacuously satisfied.
    for (a, b) in &c.eqs {
        let va = match eval_ground(a, assign) {
            Ok(v) => v,
            Err(app) => return ConstraintState::NeedsBranch(app),
        };
        let vb = match eval_ground(b, assign) {
            Ok(v) => v,
            Err(app) => return ConstraintState::NeedsBranch(app),
        };
        if va != vb {
            return ConstraintState::Satisfied;
        }
    }
    // All equalities hold: rhs atoms must be facts of tgt.
    for (rel, args) in &c.rhs {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            match eval_ground(a, assign) {
                Ok(v) => vals.push(v),
                Err(app) => return ConstraintState::NeedsBranch(app),
            }
        }
        if !tgt.contains(rel.as_str(), &dex_relational::Tuple::new(vals)) {
            return ConstraintState::Violated;
        }
    }
    ConstraintState::Satisfied
}

fn solve(
    constraints: &[GroundConstraint],
    domain: &[Value],
    tgt: &Instance,
    assign: &mut BTreeMap<(Name, Vec<Value>), Value>,
) -> bool {
    for c in constraints {
        match eval_constraint(c, tgt, assign) {
            ConstraintState::Satisfied => continue,
            ConstraintState::Violated => return false,
            ConstraintState::NeedsBranch(app) => {
                for d in domain {
                    assign.insert(app.clone(), d.clone());
                    if solve(constraints, domain, tgt, assign) {
                        return true;
                    }
                }
                assign.remove(&app);
                return false;
            }
        }
    }
    true
}

/// Generates readable function-symbol names: f, g, h, then f3, f4, ….
#[derive(Default)]
struct FnNamer {
    count: usize,
}

impl FnNamer {
    fn fresh(&mut self) -> Name {
        let name = match self.count {
            0 => "f".to_string(),
            1 => "g".to_string(),
            2 => "h".to_string(),
            n => format!("f{n}"),
        };
        self.count += 1;
        Name::new(name)
    }
}

impl fmt::Display for SoTgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.functions.is_empty() {
            for (i, c) in self.clauses.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{c}")?;
            }
            return Ok(());
        }
        write!(
            f,
            "∃{} [ ",
            self.functions
                .iter()
                .map(|(n, _)| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " ]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema};

    fn emp_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap()
    }

    fn boss_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Boss", vec!["emp", "mgr"]).unwrap(),
            RelSchema::untyped("SelfMngr", vec!["emp"]).unwrap(),
        ])
        .unwrap()
    }

    /// The paper's Example 2 composition result.
    fn example2_sotgd() -> SoTgd {
        SoTgd::new(
            vec![(Name::new("f"), 1)],
            vec![
                SoClause::new(
                    vec![Atom::vars("Emp", &["x"])],
                    vec![],
                    vec![Atom::new(
                        "Boss",
                        vec![Term::var("x"), Term::func("f", vec![Term::var("x")])],
                    )],
                ),
                SoClause::new(
                    vec![Atom::vars("Emp", &["x"])],
                    vec![(Term::var("x"), Term::func("f", vec![Term::var("x")]))],
                    vec![Atom::vars("SelfMngr", &["x"])],
                ),
            ],
        )
    }

    #[test]
    fn skolemization_of_example1() {
        let tgd = StTgd::new(
            vec![Atom::vars("Emp", &["x"])],
            vec![Atom::vars("Manager", &["x", "y"])],
        );
        let so = SoTgd::from_st_tgds(&[tgd]);
        assert_eq!(so.functions, vec![(Name::new("f"), 1)]);
        assert_eq!(so.clauses.len(), 1);
        assert_eq!(
            so.clauses[0].rhs_atoms[0],
            Atom::new(
                "Manager",
                vec![Term::var("x"), Term::func("f", vec![Term::var("x")])]
            )
        );
    }

    #[test]
    fn full_tgds_skolemize_function_free_and_back() {
        let tgd = StTgd::new(
            vec![Atom::vars("Manager", &["x", "y"])],
            vec![Atom::vars("Boss", &["x", "y"])],
        );
        let so = SoTgd::from_st_tgds(std::slice::from_ref(&tgd));
        assert!(so.functions.is_empty());
        let back = so.try_into_st_tgds().unwrap();
        assert_eq!(back, vec![tgd]);
    }

    #[test]
    fn sotgd_with_equalities_not_convertible() {
        assert!(example2_sotgd().try_into_st_tgds().is_none());
    }

    #[test]
    fn display_matches_paper_example2() {
        let so = example2_sotgd();
        assert_eq!(
            so.to_string(),
            "∃f [ ∀x (Emp(x) → Boss(x, f(x))) ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]"
        );
    }

    #[test]
    fn bounded_satisfaction_example2_selfmanager_required() {
        let so = example2_sotgd();
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        // Boss(Alice, Alice) forces f(Alice) = Alice only if we pick that
        // interpretation — and then SelfMngr(Alice) is required.
        let with_self = Instance::with_facts(
            boss_schema(),
            vec![
                ("Boss", vec![tuple!["Alice", "Alice"]]),
                ("SelfMngr", vec![tuple!["Alice"]]),
            ],
        )
        .unwrap();
        assert!(so.satisfied_by_bounded(&src, &with_self));

        // Boss(Alice, Alice) without SelfMngr(Alice): the only f making
        // clause 1 true is f(Alice)=Alice, which then violates clause 2.
        let without_self = Instance::with_facts(
            boss_schema(),
            vec![("Boss", vec![tuple!["Alice", "Alice"]])],
        )
        .unwrap();
        assert!(!so.satisfied_by_bounded(&src, &without_self));

        // Boss(Alice, Ted): f(Alice)=Ted ≠ Alice, no SelfMngr needed.
        let ted = Instance::with_facts(boss_schema(), vec![("Boss", vec![tuple!["Alice", "Ted"]])])
            .unwrap();
        assert!(so.satisfied_by_bounded(&src, &ted));

        // Empty target with non-empty source: clause 1 unsatisfiable.
        let empty = Instance::empty(boss_schema());
        assert!(!so.satisfied_by_bounded(&src, &empty));

        // Empty source: vacuously satisfied.
        assert!(so.satisfied_by_bounded(&Instance::empty(emp_schema()), &empty));
    }

    #[test]
    fn bounded_satisfaction_plain_sttgd_agrees() {
        // For function-free SO-tgds the bounded check coincides with
        // ordinary satisfaction.
        let tgd = StTgd::new(
            vec![Atom::vars("Emp", &["x"])],
            vec![Atom::vars("SelfMngr", &["x"])],
        );
        let so = SoTgd::new(
            vec![],
            vec![SoClause::new(tgd.lhs.clone(), vec![], tgd.rhs.clone())],
        );
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let good =
            Instance::with_facts(boss_schema(), vec![("SelfMngr", vec![tuple!["Alice"]])]).unwrap();
        let bad = Instance::empty(boss_schema());
        assert_eq!(
            so.satisfied_by_bounded(&src, &good),
            tgd.satisfied_by(&src, &good)
        );
        assert_eq!(
            so.satisfied_by_bounded(&src, &bad),
            tgd.satisfied_by(&src, &bad)
        );
    }

    #[test]
    fn skolemized_tgds_bounded_check_models_existentials() {
        // Emp(x) → ∃y Manager(x, y), skolemized; satisfied by any target
        // giving Alice some manager from the active domain.
        let tgd = StTgd::new(
            vec![Atom::vars("Emp", &["x"])],
            vec![Atom::vars("Manager", &["x", "y"])],
        );
        let so = SoTgd::from_st_tgds(&[tgd]);
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let mgr_schema =
            Schema::with_relations(vec![RelSchema::untyped("Manager", vec!["e", "m"]).unwrap()])
                .unwrap();
        let tgt = Instance::with_facts(
            mgr_schema.clone(),
            vec![("Manager", vec![tuple!["Alice", "Ted"]])],
        )
        .unwrap();
        assert!(so.satisfied_by_bounded(&src, &tgt));
        let empty = Instance::empty(mgr_schema);
        assert!(!so.satisfied_by_bounded(&src, &empty));
    }

    #[test]
    fn validate_rejects_functions_in_source_atoms() {
        let so = SoTgd::new(
            vec![(Name::new("f"), 1)],
            vec![SoClause::new(
                vec![Atom::new(
                    "Emp",
                    vec![Term::func("f", vec![Term::var("x")])],
                )],
                vec![],
                vec![],
            )],
        );
        assert!(so.validate(&emp_schema(), &boss_schema()).is_err());
    }

    #[test]
    fn nested_function_terms_evaluate() {
        // Clause: Emp(x) ∧ x = f(f(x)) → SelfMngr(x).
        // With Emp = {a}, domain {a}: f(a)=a forced; then f(f(a))=a = x,
        // so SelfMngr(a) required.
        let so = SoTgd::new(
            vec![(Name::new("f"), 1)],
            vec![SoClause::new(
                vec![Atom::vars("Emp", &["x"])],
                vec![(
                    Term::var("x"),
                    Term::func("f", vec![Term::func("f", vec![Term::var("x")])]),
                )],
                vec![Atom::vars("SelfMngr", &["x"])],
            )],
        );
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["a"]])]).unwrap();
        let without = Instance::empty(boss_schema());
        assert!(
            !so.satisfied_by_bounded(&src, &without),
            "domain is {{a}}: f(f(a)) = a is forced, SelfMngr(a) missing"
        );
        let with =
            Instance::with_facts(boss_schema(), vec![("SelfMngr", vec![tuple!["a"]])]).unwrap();
        assert!(so.satisfied_by_bounded(&src, &with));
    }
}
