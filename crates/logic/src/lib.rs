//! # dex-logic — schema-mapping logic
//!
//! The declarative layer of `dex`: first-order terms and atoms,
//! **source-to-target tuple-generating dependencies** (st-tgds, the
//! paper's formula (1)), target tgds and egds, **disjunctive tgds** (the
//! shape of Example 3's inverse), and **second-order tgds** (SO-tgds,
//! the shape of Example 2's composition), together with:
//!
//! * conjunctive-formula matching over instances (the evaluation engine
//!   shared with the chase),
//! * satisfaction checking — does a pair `(I, J)` satisfy a mapping?
//! * a text parser and a paper-style pretty-printer for the mapping
//!   language,
//! * the **visual-correspondence compiler** (paper Figure 1): Clio-style
//!   attribute arrows compiled into st-tgds.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod atom;
pub mod correspondence;
pub mod eval;
pub mod mapping;
pub mod parser;
pub mod sotgd;
pub mod span;
pub mod term;
pub mod tgd;

pub use atom::Atom;
pub use correspondence::{Arrow, CorrespondenceGroup, CorrespondenceSet};
pub use eval::{
    extend_matches, match_conjunction, premise_plan, PremisePlan, PremiseStep, Valuation,
};
pub use mapping::Mapping;
pub use parser::{
    parse_disj_tgd, parse_egd, parse_mapping, parse_mapping_with_spans, parse_query, parse_tgd,
    ParseError,
};
pub use sotgd::{SoClause, SoTgd};
pub use span::{SourceMap, Span};
pub use term::Term;
pub use tgd::{DisjTgd, Egd, StTgd};
