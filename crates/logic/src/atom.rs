//! Relational atoms `R(t₁, …, tₙ)`.

use crate::term::Term;
use dex_relational::{Name, RelationalError, Schema, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A relational atom: a relation name applied to terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Atom {
    /// The relation name.
    pub relation: Name,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<Name>, args: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            args,
        }
    }

    /// Shorthand: atom whose arguments are all variables.
    pub fn vars(relation: impl Into<Name>, vars: &[&str]) -> Self {
        Atom::new(relation, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Collect variables in first-occurrence order.
    pub fn collect_vars(&self, out: &mut Vec<Name>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    /// All variables of the atom, in order.
    pub fn variables(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Validate against a schema: the relation must exist with matching
    /// arity.
    pub fn validate(&self, schema: &Schema) -> Result<(), RelationalError> {
        let rel = schema.expect_relation(self.relation.as_str())?;
        if rel.arity() != self.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.relation.clone(),
                expected: rel.arity(),
                actual: self.arity(),
            });
        }
        Ok(())
    }

    /// Instantiate into a tuple under `valuation`. Returns `None` if a
    /// variable is unbound.
    pub fn instantiate(&self, valuation: &BTreeMap<Name, Value>) -> Option<Tuple> {
        self.args
            .iter()
            .map(|t| t.eval(valuation))
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }

    /// Substitute variables by terms.
    pub fn substitute(&self, subst: &BTreeMap<Name, Term>) -> Atom {
        Atom {
            relation: self.relation.clone(),
            args: self.args.iter().map(|t| t.substitute(subst)).collect(),
        }
    }

    /// Rename all variables with a prefix.
    pub fn prefix_vars(&self, prefix: &str) -> Atom {
        Atom {
            relation: self.relation.clone(),
            args: self.args.iter().map(|t| t.prefix_vars(prefix)).collect(),
        }
    }

    /// Does any argument contain a Skolem-function application?
    pub fn has_func(&self) -> bool {
        self.args.iter().any(Term::has_func)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Display a conjunction of atoms joined by `∧`.
pub(crate) fn display_conjunction(atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(" ∧ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{RelSchema, Schema};

    fn schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Emp", vec!["name"]).unwrap(),
            RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn vars_shorthand() {
        let a = Atom::vars("Manager", &["x", "y"]);
        assert_eq!(a.arity(), 2);
        assert_eq!(a.variables(), vec![Name::new("x"), Name::new("y")]);
    }

    #[test]
    fn validate_checks_existence_and_arity() {
        let s = schema();
        assert!(Atom::vars("Emp", &["x"]).validate(&s).is_ok());
        assert!(Atom::vars("Emp", &["x", "y"]).validate(&s).is_err());
        assert!(Atom::vars("Nope", &["x"]).validate(&s).is_err());
    }

    #[test]
    fn instantiate_builds_tuple() {
        let a = Atom::new("Manager", vec![Term::var("x"), Term::cnst("Ted")]);
        let mut v = BTreeMap::new();
        v.insert(Name::new("x"), Value::str("Alice"));
        let t = a.instantiate(&v).unwrap();
        assert_eq!(t, dex_relational::tuple!["Alice", "Ted"]);
        // Unbound variable → None.
        let b = Atom::vars("Manager", &["x", "z"]);
        assert_eq!(b.instantiate(&v), None);
    }

    #[test]
    fn display_conjunction_form() {
        let atoms = vec![
            Atom::vars("Emp", &["x"]),
            Atom::vars("Manager", &["x", "y"]),
        ];
        assert_eq!(display_conjunction(&atoms), "Emp(x) ∧ Manager(x, y)");
    }
}
