//! First-order (and Skolem) terms.

use dex_relational::{Constant, Name, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A term in a dependency: a variable, a constant, or a Skolem-function
/// application (`Func` only occurs inside SO-tgds).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Term {
    /// A first-order variable.
    Var(Name),
    /// A constant.
    Const(Constant),
    /// A Skolem function applied to terms (second-order tgds only).
    Func(Name, Vec<Term>),
}

impl Term {
    /// Variable shorthand.
    pub fn var(n: impl Into<Name>) -> Term {
        Term::Var(n.into())
    }

    /// Constant shorthand.
    pub fn cnst(c: impl Into<Constant>) -> Term {
        Term::Const(c.into())
    }

    /// Skolem-application shorthand.
    pub fn func(f: impl Into<Name>, args: Vec<Term>) -> Term {
        Term::Func(f.into(), args)
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&Name> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Collect variables (in first-occurrence order) into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Name>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term::Const(_) => {}
            Term::Func(_, args) => args.iter().for_each(|a| a.collect_vars(out)),
        }
    }

    /// Evaluate under a valuation. Variables must be bound; Skolem
    /// applications become [`Value::Skolem`] over evaluated arguments.
    pub fn eval(&self, valuation: &BTreeMap<Name, Value>) -> Option<Value> {
        match self {
            Term::Var(v) => valuation.get(v).cloned(),
            Term::Const(c) => Some(Value::Const(c.clone())),
            Term::Func(f, args) => {
                let vals: Option<Vec<Value>> = args.iter().map(|a| a.eval(valuation)).collect();
                Some(Value::Skolem(f.clone(), vals?))
            }
        }
    }

    /// Substitute variables by terms (used by composition's unfolding).
    pub fn substitute(&self, subst: &BTreeMap<Name, Term>) -> Term {
        match self {
            Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Const(_) => self.clone(),
            Term::Func(f, args) => Term::Func(
                f.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
        }
    }

    /// Rename variables with a prefix (freshening for composition).
    pub fn prefix_vars(&self, prefix: &str) -> Term {
        match self {
            Term::Var(v) => Term::Var(Name::new(format!("{prefix}{v}"))),
            Term::Const(_) => self.clone(),
            Term::Func(f, args) => Term::Func(
                f.clone(),
                args.iter().map(|a| a.prefix_vars(prefix)).collect(),
            ),
        }
    }

    /// Does the term mention any Skolem function application?
    pub fn has_func(&self) -> bool {
        match self {
            Term::Func(..) => true,
            Term::Var(_) | Term::Const(_) => false,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Constant::Str(s)) => write!(f, "{s:?}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Func(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_variable_needs_binding() {
        let t = Term::var("x");
        let mut v = BTreeMap::new();
        assert_eq!(t.eval(&v), None);
        v.insert(Name::new("x"), Value::int(3));
        assert_eq!(t.eval(&v), Some(Value::int(3)));
    }

    #[test]
    fn eval_skolem_builds_skolem_value() {
        let t = Term::func("f", vec![Term::var("x"), Term::cnst(1i64)]);
        let mut v = BTreeMap::new();
        v.insert(Name::new("x"), Value::str("a"));
        assert_eq!(
            t.eval(&v),
            Some(Value::skolem("f", vec![Value::str("a"), Value::int(1)]))
        );
    }

    #[test]
    fn collect_vars_in_order_without_dups() {
        let t = Term::func("f", vec![Term::var("y"), Term::var("x"), Term::var("y")]);
        let mut out = Vec::new();
        t.collect_vars(&mut out);
        assert_eq!(out, vec![Name::new("y"), Name::new("x")]);
    }

    #[test]
    fn substitute_into_function_args() {
        let t = Term::func("f", vec![Term::var("x")]);
        let mut s = BTreeMap::new();
        s.insert(Name::new("x"), Term::cnst("k"));
        assert_eq!(t.substitute(&s), Term::func("f", vec![Term::cnst("k")]));
    }

    #[test]
    fn prefix_vars_renames() {
        let t = Term::func("f", vec![Term::var("x"), Term::cnst(1i64)]);
        let p = t.prefix_vars("m1_");
        assert_eq!(
            p,
            Term::func("f", vec![Term::var("m1_x"), Term::cnst(1i64)])
        );
    }

    #[test]
    fn display() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::cnst("Alice").to_string(), "\"Alice\"");
        assert_eq!(Term::func("f", vec![Term::var("x")]).to_string(), "f(x)");
    }
}
