//! Tuple-generating and equality-generating dependencies.
//!
//! [`StTgd`] is the paper's formula (1):
//! `∀x̄ (∃ȳ φ_S(x̄, ȳ) → ∃z̄ ψ_T(x̄, z̄))` — a conjunction of source
//! atoms implying a conjunction of target atoms. Quantification is
//! implicit in the variable occurrences: variables shared between the
//! two sides are universal; variables appearing only on the right are
//! existential (the source-side-only variables are existential on the
//! left, which is equivalent to universal for satisfaction).
//!
//! [`Egd`]s equate variables and are used as target dependencies (keys).
//! [`DisjTgd`]s have a disjunction of conjunctions on the right — the
//! shape the paper's Example 3 shows is unavoidable for inverses.

use crate::atom::{display_conjunction, Atom};
use crate::eval::{extend_matches, has_match, match_conjunction, Valuation};
use crate::term::Term;
use dex_relational::{Instance, Name, RelationalError, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A source-to-target tuple-generating dependency.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StTgd {
    /// Source-side conjunction φ_S.
    pub lhs: Vec<Atom>,
    /// Target-side conjunction ψ_T.
    pub rhs: Vec<Atom>,
}

impl StTgd {
    /// Build an st-tgd.
    pub fn new(lhs: Vec<Atom>, rhs: Vec<Atom>) -> Self {
        StTgd { lhs, rhs }
    }

    /// Variables of the left-hand side (first-occurrence order).
    pub fn lhs_vars(&self) -> Vec<Name> {
        let mut out = Vec::new();
        for a in &self.lhs {
            a.collect_vars(&mut out);
        }
        out
    }

    /// Variables of the right-hand side (first-occurrence order).
    pub fn rhs_vars(&self) -> Vec<Name> {
        let mut out = Vec::new();
        for a in &self.rhs {
            a.collect_vars(&mut out);
        }
        out
    }

    /// The frontier: variables shared by both sides (universally
    /// quantified and exported to the target).
    pub fn frontier(&self) -> Vec<Name> {
        let rhs: BTreeSet<Name> = self.rhs_vars().into_iter().collect();
        self.lhs_vars()
            .into_iter()
            .filter(|v| rhs.contains(v))
            .collect()
    }

    /// Existential variables: on the right only.
    pub fn existential_vars(&self) -> Vec<Name> {
        let lhs: BTreeSet<Name> = self.lhs_vars().into_iter().collect();
        self.rhs_vars()
            .into_iter()
            .filter(|v| !lhs.contains(v))
            .collect()
    }

    /// Is the tgd *full* (no existential variables)? Full st-tgds are
    /// closed under composition (Fagin et al., cited in paper §2).
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Is the tgd GAV-shaped (single target atom, no existentials)?
    pub fn is_gav(&self) -> bool {
        self.rhs.len() == 1 && self.is_full()
    }

    /// Is the tgd LAV-shaped (single source atom)?
    pub fn is_lav(&self) -> bool {
        self.lhs.len() == 1
    }

    /// Validate against source and target schemas.
    pub fn validate(&self, source: &Schema, target: &Schema) -> Result<(), RelationalError> {
        if self.lhs.is_empty() {
            return Err(RelationalError::EvalError(
                "st-tgd must have a non-empty source side".into(),
            ));
        }
        for a in &self.lhs {
            a.validate(source)?;
        }
        for a in &self.rhs {
            a.validate(target)?;
        }
        Ok(())
    }

    /// Does the pair `(src, tgt)` satisfy this tgd? For every valuation
    /// of the left-hand side in `src` there must exist an extension
    /// satisfying the right-hand side in `tgt`.
    pub fn satisfied_by(&self, src: &Instance, tgt: &Instance) -> bool {
        let rhs_vars: BTreeSet<Name> = self.rhs_vars().into_iter().collect();
        for m in match_conjunction(&self.lhs, src) {
            // Only the frontier carries over to the rhs.
            let frontier: Valuation = m
                .into_iter()
                .filter(|(k, _)| rhs_vars.contains(k))
                .collect();
            if !has_match(&self.rhs, tgt, &frontier) {
                return false;
            }
        }
        true
    }

    /// Rename every variable with a prefix (freshening).
    pub fn prefix_vars(&self, prefix: &str) -> StTgd {
        StTgd {
            lhs: self.lhs.iter().map(|a| a.prefix_vars(prefix)).collect(),
            rhs: self.rhs.iter().map(|a| a.prefix_vars(prefix)).collect(),
        }
    }
}

impl fmt::Display for StTgd {
    /// Paper-style display, e.g.
    /// `∀x (Emp(x) → ∃y Manager(x, y))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let universals: Vec<Name> = self.lhs_vars().into_iter().collect();
        let existentials = self.existential_vars();
        if !universals.is_empty() {
            write!(
                f,
                "∀{} (",
                universals
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )?;
        } else {
            write!(f, "(")?;
        }
        write!(f, "{} → ", display_conjunction(&self.lhs))?;
        if !existentials.is_empty() {
            write!(
                f,
                "∃{} ",
                existentials
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )?;
        }
        write!(f, "{})", display_conjunction(&self.rhs))
    }
}

/// An equality-generating dependency: `∀x̄ (φ(x̄) → t₁ = t₂ ∧ …)`.
/// Used as a target dependency (keys, and more generally egds).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Egd {
    /// The body conjunction.
    pub lhs: Vec<Atom>,
    /// The equalities implied.
    pub equalities: Vec<(Term, Term)>,
}

impl Egd {
    /// Build an egd.
    pub fn new(lhs: Vec<Atom>, equalities: Vec<(Term, Term)>) -> Self {
        Egd { lhs, equalities }
    }

    /// The key egd for `rel`: two tuples agreeing on `key_positions`
    /// agree everywhere.
    pub fn key(rel: &str, arity: usize, key_positions: &[usize]) -> Vec<Egd> {
        // One egd per non-key position, sharing the same body.
        let t1: Vec<Term> = (0..arity).map(|i| Term::var(format!("x{i}"))).collect();
        let t2: Vec<Term> = (0..arity)
            .map(|i| {
                if key_positions.contains(&i) {
                    Term::var(format!("x{i}"))
                } else {
                    Term::var(format!("y{i}"))
                }
            })
            .collect();
        let body = vec![Atom::new(rel, t1.clone()), Atom::new(rel, t2.clone())];
        (0..arity)
            .filter(|i| !key_positions.contains(i))
            .map(|i| Egd::new(body.clone(), vec![(t1[i].clone(), t2[i].clone())]))
            .collect()
    }

    /// Does `inst` satisfy the egd? (Equalities must hold syntactically
    /// for every match.)
    pub fn satisfied_by(&self, inst: &Instance) -> bool {
        for m in match_conjunction(&self.lhs, inst) {
            for (a, b) in &self.equalities {
                if a.eval(&m) != b.eval(&m) {
                    return false;
                }
            }
        }
        true
    }

    /// Validate against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), RelationalError> {
        for a in &self.lhs {
            a.validate(schema)?;
        }
        Ok(())
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → ", display_conjunction(&self.lhs))?;
        for (i, (a, b)) in self.equalities.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a} = {b}")?;
        }
        Ok(())
    }
}

/// A disjunctive tgd: `∀x̄ (φ(x̄) → χ₁ ∨ … ∨ χₖ)` where each disjunct is
/// a conjunction of atoms (possibly with its own existentials). The
/// paper's Example 3 inverse `Parent(x,y) → Father(x,y) ∨ Mother(x,y)`
/// has this shape.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DisjTgd {
    /// Body conjunction.
    pub lhs: Vec<Atom>,
    /// The disjuncts, each a conjunction.
    pub disjuncts: Vec<Vec<Atom>>,
}

impl DisjTgd {
    /// Build a disjunctive tgd.
    pub fn new(lhs: Vec<Atom>, disjuncts: Vec<Vec<Atom>>) -> Self {
        DisjTgd { lhs, disjuncts }
    }

    /// An ordinary st-tgd viewed as a one-disjunct disjunctive tgd.
    pub fn from_tgd(tgd: &StTgd) -> Self {
        DisjTgd {
            lhs: tgd.lhs.clone(),
            disjuncts: vec![tgd.rhs.clone()],
        }
    }

    /// Does the pair `(src, tgt)` satisfy the dependency?
    pub fn satisfied_by(&self, src: &Instance, tgt: &Instance) -> bool {
        let rhs_vars: BTreeSet<Name> = self
            .disjuncts
            .iter()
            .flat_map(|d| {
                let mut out = Vec::new();
                for a in d {
                    a.collect_vars(&mut out);
                }
                out
            })
            .collect();
        for m in match_conjunction(&self.lhs, src) {
            let frontier: Valuation = m
                .into_iter()
                .filter(|(k, _)| rhs_vars.contains(k))
                .collect();
            let ok = self
                .disjuncts
                .iter()
                .any(|d| !extend_matches(d, tgt, &frontier).is_empty());
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for DisjTgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → ", display_conjunction(&self.lhs))?;
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if self.disjuncts.len() > 1 && d.len() > 1 {
                write!(f, "({})", display_conjunction(d))?;
            } else {
                write!(f, "{}", display_conjunction(d))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema, Tuple, Value};

    fn emp_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap()
    }

    fn mgr_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap()
        ])
        .unwrap()
    }

    /// The paper's st-tgd (2): Emp(x) → ∃y Manager(x, y).
    fn example1_tgd() -> StTgd {
        StTgd::new(
            vec![Atom::vars("Emp", &["x"])],
            vec![Atom::vars("Manager", &["x", "y"])],
        )
    }

    #[test]
    fn quantifier_classification() {
        let t = example1_tgd();
        assert_eq!(t.frontier(), vec![Name::new("x")]);
        assert_eq!(t.existential_vars(), vec![Name::new("y")]);
        assert!(!t.is_full());
        assert!(t.is_lav());
        assert!(!t.is_gav());
    }

    #[test]
    fn full_tgd_classification() {
        let t = StTgd::new(
            vec![Atom::vars("Manager", &["x", "y"])],
            vec![Atom::vars("Boss", &["x", "y"])],
        );
        assert!(t.is_full());
        assert!(t.is_gav());
    }

    #[test]
    fn example1_satisfaction() {
        let t = example1_tgd();
        let src = Instance::with_facts(
            emp_schema(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        // J1, J2, J* from the paper are all solutions.
        let j1 = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]],
            )],
        )
        .unwrap();
        let j_star = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![
                    Tuple::new(vec![Value::str("Alice"), Value::null(1)]),
                    Tuple::new(vec![Value::str("Bob"), Value::null(2)]),
                ],
            )],
        )
        .unwrap();
        assert!(t.satisfied_by(&src, &j1));
        assert!(t.satisfied_by(&src, &j_star));
        // An instance missing Bob's manager is not a solution.
        let bad = Instance::with_facts(
            mgr_schema(),
            vec![("Manager", vec![tuple!["Alice", "Ted"]])],
        )
        .unwrap();
        assert!(!t.satisfied_by(&src, &bad));
        // Empty target with empty source is fine.
        assert!(t.satisfied_by(
            &Instance::empty(emp_schema()),
            &Instance::empty(mgr_schema())
        ));
    }

    #[test]
    fn validation() {
        let t = example1_tgd();
        assert!(t.validate(&emp_schema(), &mgr_schema()).is_ok());
        assert!(t.validate(&mgr_schema(), &emp_schema()).is_err());
        let empty_lhs = StTgd::new(vec![], vec![Atom::vars("Manager", &["x", "y"])]);
        assert!(empty_lhs.validate(&emp_schema(), &mgr_schema()).is_err());
    }

    #[test]
    fn display_matches_paper_form() {
        let t = example1_tgd();
        assert_eq!(t.to_string(), "∀x (Emp(x) → ∃y Manager(x, y))");
    }

    #[test]
    fn egd_key_construction_and_check() {
        // Manager(e, m): key on position 0 — one egd equating position 1.
        let egds = Egd::key("Manager", 2, &[0]);
        assert_eq!(egds.len(), 1);
        let ok = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Ted"], tuple!["Bob", "Ted"]],
            )],
        )
        .unwrap();
        assert!(egds[0].satisfied_by(&ok));
        let bad = Instance::with_facts(
            mgr_schema(),
            vec![(
                "Manager",
                vec![tuple!["Alice", "Ted"], tuple!["Alice", "Bob"]],
            )],
        )
        .unwrap();
        assert!(!egds[0].satisfied_by(&bad));
    }

    #[test]
    fn disjunctive_tgd_example3_inverse() {
        // Parent(x, y) → Father(x, y) ∨ Mother(x, y)
        let d = DisjTgd::new(
            vec![Atom::vars("Parent", &["x", "y"])],
            vec![
                vec![Atom::vars("Father", &["x", "y"])],
                vec![Atom::vars("Mother", &["x", "y"])],
            ],
        );
        let parent_schema =
            Schema::with_relations(vec![RelSchema::untyped("Parent", vec!["p", "c"]).unwrap()])
                .unwrap();
        let fm_schema = Schema::with_relations(vec![
            RelSchema::untyped("Father", vec!["p", "c"]).unwrap(),
            RelSchema::untyped("Mother", vec!["p", "c"]).unwrap(),
        ])
        .unwrap();
        let j = Instance::with_facts(
            parent_schema,
            vec![("Parent", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        // Both I1 (Father) and I2 (Mother) satisfy the disjunctive tgd.
        let i1 = Instance::with_facts(
            fm_schema.clone(),
            vec![("Father", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        let i2 = Instance::with_facts(
            fm_schema.clone(),
            vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
        )
        .unwrap();
        let neither = Instance::empty(fm_schema);
        assert!(d.satisfied_by(&j, &i1));
        assert!(d.satisfied_by(&j, &i2));
        assert!(!d.satisfied_by(&j, &neither));
        assert_eq!(d.to_string(), "Parent(x, y) → Father(x, y) ∨ Mother(x, y)");
    }

    #[test]
    fn prefix_vars_freshens_whole_tgd() {
        let t = example1_tgd().prefix_vars("a_");
        assert_eq!(t.frontier(), vec![Name::new("a_x")]);
        assert_eq!(t.existential_vars(), vec![Name::new("a_y")]);
    }

    #[test]
    fn from_tgd_single_disjunct_equisatisfiable() {
        let t = example1_tgd();
        let d = DisjTgd::from_tgd(&t);
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let tgt = Instance::with_facts(
            mgr_schema(),
            vec![("Manager", vec![tuple!["Alice", "Ted"]])],
        )
        .unwrap();
        assert_eq!(t.satisfied_by(&src, &tgt), d.satisfied_by(&src, &tgt));
        let empty = Instance::empty(mgr_schema());
        assert_eq!(t.satisfied_by(&src, &empty), d.satisfied_by(&src, &empty));
    }
}
