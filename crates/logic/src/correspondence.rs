//! Visual correspondences compiled to st-tgds (paper Figure 1).
//!
//! In practice (paper §2, citing Clio \[9\]) “an end user does not
//! directly specify a mapping by writing down an st-tgd, but by
//! specifying some simple correspondences usually exploiting some
//! visual interface … These visual representations are then compiled
//! into sets of st-tgds.”
//!
//! The model here: a [`CorrespondenceSet`] is a list of
//! [`CorrespondenceGroup`]s (one per box-and-lines diagram). A group
//! names the participating source and target relations, the *join
//! lines* drawn inside each side (equalities between attributes), and
//! the *arrows* drawn across (source attribute → target attribute).
//! Compilation produces one st-tgd per group: source relations become
//! the left-hand conjunction with join lines unifying variables; target
//! attributes that no arrow reaches become existential variables —
//! exactly the provenance of the labeled nulls the exchange will later
//! create (and of the update-policy holes the lens compiler exposes).

use crate::atom::Atom;
use crate::term::Term;
use crate::tgd::StTgd;
use dex_relational::{Name, RelationalError, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A (relation, attribute) position.
pub type AttrRef = (Name, Name);

fn attr_ref(rel: &str, attr: &str) -> AttrRef {
    (Name::new(rel), Name::new(attr))
}

/// An arrow from a source attribute to a target attribute.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Arrow {
    /// Source (relation, attribute).
    pub from: AttrRef,
    /// Target (relation, attribute).
    pub to: AttrRef,
}

impl Arrow {
    /// Build an arrow `rel.attr → rel.attr`.
    pub fn new(from_rel: &str, from_attr: &str, to_rel: &str, to_attr: &str) -> Self {
        Arrow {
            from: attr_ref(from_rel, from_attr),
            to: attr_ref(to_rel, to_attr),
        }
    }
}

/// One diagram: the relations in play, the join lines on each side, and
/// the arrows across.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CorrespondenceGroup {
    /// Source relations (each may appear once per group).
    pub source_rels: Vec<Name>,
    /// Target relations.
    pub target_rels: Vec<Name>,
    /// Join lines among source attributes (equalities).
    pub source_joins: Vec<(AttrRef, AttrRef)>,
    /// Join lines among target attributes (shared existentials).
    pub target_joins: Vec<(AttrRef, AttrRef)>,
    /// The cross arrows.
    pub arrows: Vec<Arrow>,
}

impl CorrespondenceGroup {
    /// Start a group over the given relations.
    pub fn new(source_rels: Vec<&str>, target_rels: Vec<&str>) -> Self {
        CorrespondenceGroup {
            source_rels: source_rels.into_iter().map(Name::new).collect(),
            target_rels: target_rels.into_iter().map(Name::new).collect(),
            ..Default::default()
        }
    }

    /// Add a join line between two source attributes.
    pub fn join_source(mut self, a: (&str, &str), b: (&str, &str)) -> Self {
        self.source_joins
            .push((attr_ref(a.0, a.1), attr_ref(b.0, b.1)));
        self
    }

    /// Add a join line between two target attributes (they will share
    /// one existential variable unless an arrow reaches them).
    pub fn join_target(mut self, a: (&str, &str), b: (&str, &str)) -> Self {
        self.target_joins
            .push((attr_ref(a.0, a.1), attr_ref(b.0, b.1)));
        self
    }

    /// Add an arrow.
    pub fn arrow(mut self, from: (&str, &str), to: (&str, &str)) -> Self {
        self.arrows.push(Arrow::new(from.0, from.1, to.0, to.1));
        self
    }

    /// Compile this group to one st-tgd.
    pub fn compile(&self, source: &Schema, target: &Schema) -> Result<StTgd, RelationalError> {
        // Union-find over source attribute positions, seeded by joins.
        let mut parent: BTreeMap<AttrRef, AttrRef> = BTreeMap::new();
        for rel in &self.source_rels {
            let rs = source.expect_relation(rel.as_str())?;
            for a in rs.attr_names() {
                parent.insert((rel.clone(), a.clone()), (rel.clone(), a.clone()));
            }
        }
        fn find(parent: &mut BTreeMap<AttrRef, AttrRef>, x: &AttrRef) -> AttrRef {
            let p = parent
                .get(x)
                .unwrap_or_else(|| panic!("unknown attribute {}.{}", x.0, x.1))
                .clone();
            if &p == x {
                return p;
            }
            let root = find(parent, &p);
            parent.insert(x.clone(), root.clone());
            root
        }
        for (a, b) in &self.source_joins {
            if !parent.contains_key(a) {
                return Err(RelationalError::UnknownAttribute {
                    relation: a.0.clone(),
                    attribute: a.1.clone(),
                });
            }
            if !parent.contains_key(b) {
                return Err(RelationalError::UnknownAttribute {
                    relation: b.0.clone(),
                    attribute: b.1.clone(),
                });
            }
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            parent.insert(ra, rb);
        }

        // Name each source equivalence class with a readable variable.
        let mut namer = VarNamer::default();
        let mut class_var: BTreeMap<AttrRef, Name> = BTreeMap::new();
        let mut var_of = |parent: &mut BTreeMap<AttrRef, AttrRef>,
                          pos: &AttrRef,
                          namer: &mut VarNamer|
         -> Name {
            let root = find(parent, pos);
            class_var
                .entry(root)
                .or_insert_with(|| namer.universal())
                .clone()
        };

        // Build lhs atoms.
        let mut lhs = Vec::new();
        let mut src_var: BTreeMap<AttrRef, Name> = BTreeMap::new();
        for rel in &self.source_rels {
            let rs = source.expect_relation(rel.as_str())?;
            let mut args = Vec::with_capacity(rs.arity());
            for a in rs.attr_names() {
                let pos = (rel.clone(), a.clone());
                let v = var_of(&mut parent, &pos, &mut namer);
                src_var.insert(pos, v.clone());
                args.push(Term::Var(v));
            }
            lhs.push(Atom::new(rel.clone(), args));
        }

        // Arrows: target position → source variable.
        let mut tgt_assignment: BTreeMap<AttrRef, Term> = BTreeMap::new();
        for arrow in &self.arrows {
            let v = src_var
                .get(&arrow.from)
                .ok_or_else(|| RelationalError::UnknownAttribute {
                    relation: arrow.from.0.clone(),
                    attribute: arrow.from.1.clone(),
                })?
                .clone();
            tgt_assignment.insert(arrow.to.clone(), Term::Var(v));
        }

        // Target joins: unreached positions joined together share an
        // existential.
        let mut tgt_parent: BTreeMap<AttrRef, AttrRef> = BTreeMap::new();
        for rel in &self.target_rels {
            let rs = target.expect_relation(rel.as_str())?;
            for a in rs.attr_names() {
                tgt_parent.insert((rel.clone(), a.clone()), (rel.clone(), a.clone()));
            }
        }
        for (a, b) in &self.target_joins {
            if !tgt_parent.contains_key(a) || !tgt_parent.contains_key(b) {
                return Err(RelationalError::UnknownAttribute {
                    relation: a.0.clone(),
                    attribute: a.1.clone(),
                });
            }
            let ra = find(&mut tgt_parent, a);
            let rb = find(&mut tgt_parent, b);
            tgt_parent.insert(ra, rb);
        }
        // Propagate arrow assignments across target joins, then invent
        // existentials for untouched classes.
        let mut class_term: BTreeMap<AttrRef, Term> = BTreeMap::new();
        for (pos, term) in &tgt_assignment {
            let root = find(&mut tgt_parent, pos);
            class_term.insert(root, term.clone());
        }
        let mut rhs = Vec::new();
        for rel in &self.target_rels {
            let rs = target.expect_relation(rel.as_str())?;
            let mut args = Vec::with_capacity(rs.arity());
            for a in rs.attr_names() {
                let pos = (rel.clone(), a.clone());
                let root = find(&mut tgt_parent, &pos);
                let term = class_term
                    .entry(root)
                    .or_insert_with(|| Term::Var(namer.existential()))
                    .clone();
                args.push(term);
            }
            rhs.push(Atom::new(rel.clone(), args));
        }

        Ok(StTgd::new(lhs, rhs))
    }
}

/// A set of correspondence groups — the whole diagram.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CorrespondenceSet {
    /// The groups.
    pub groups: Vec<CorrespondenceGroup>,
}

impl CorrespondenceSet {
    /// Build from groups.
    pub fn new(groups: Vec<CorrespondenceGroup>) -> Self {
        CorrespondenceSet { groups }
    }

    /// Compile every group; one st-tgd per group.
    pub fn compile(&self, source: &Schema, target: &Schema) -> Result<Vec<StTgd>, RelationalError> {
        self.groups
            .iter()
            .map(|g| g.compile(source, target))
            .collect()
    }
}

/// Readable variable names: universals x, y, w, u, v, …; existentials
/// z, z1, z2, ….
#[derive(Default)]
struct VarNamer {
    universal_count: usize,
    existential_count: usize,
}

impl VarNamer {
    fn universal(&mut self) -> Name {
        const SEQ: [&str; 5] = ["x", "y", "w", "u", "v"];
        let n = self.universal_count;
        self.universal_count += 1;
        if n < SEQ.len() {
            Name::new(SEQ[n])
        } else {
            Name::new(format!("x{n}"))
        }
    }

    fn existential(&mut self) -> Name {
        let n = self.existential_count;
        self.existential_count += 1;
        if n == 0 {
            Name::new("z")
        } else {
            Name::new(format!("z{n}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::RelSchema;

    /// The schemas of the paper's Figure 1.
    fn figure1_schemas() -> (Schema, Schema) {
        let source = Schema::with_relations(vec![
            RelSchema::untyped("Takes", vec!["name", "course"]).unwrap(),
            RelSchema::untyped("SrcStudent", vec!["id", "name"]).unwrap(),
            RelSchema::untyped("SrcAssgn", vec!["name", "course"]).unwrap(),
        ])
        .unwrap();
        let target = Schema::with_relations(vec![
            RelSchema::untyped("Student", vec!["id", "name"]).unwrap(),
            RelSchema::untyped("Assgn", vec!["name", "course"]).unwrap(),
            RelSchema::untyped("Enrollment", vec!["id", "course"]).unwrap(),
        ])
        .unwrap();
        (source, target)
    }

    /// Upper part of Figure 1:
    /// `∀x∀y (Takes(x, y) → ∃z (Student(z, x) ∧ Assgn(x, y)))`.
    #[test]
    fn figure1_upper_compiles_to_paper_tgd() {
        let (source, target) = figure1_schemas();
        let g = CorrespondenceGroup::new(vec!["Takes"], vec!["Student", "Assgn"])
            .arrow(("Takes", "name"), ("Student", "name"))
            .arrow(("Takes", "name"), ("Assgn", "name"))
            .arrow(("Takes", "course"), ("Assgn", "course"));
        let tgd = g.compile(&source, &target).unwrap();
        assert_eq!(
            tgd.to_string(),
            "∀x,y (Takes(x, y) → ∃z Student(z, x) ∧ Assgn(x, y))"
        );
    }

    /// Lower part of Figure 1:
    /// `∀x∀w (∃y (Student(x, y) ∧ Assgn(y, w)) → Enrollment(x, w))`
    /// (the paper writes the source-side existential explicitly; with
    /// implicit quantification the same tgd is
    /// `Student(x,y) ∧ Assgn(y,w) → Enrollment(x,w)`).
    #[test]
    fn figure1_lower_compiles_to_paper_tgd() {
        let (source, target) = figure1_schemas();
        let g = CorrespondenceGroup::new(vec!["SrcStudent", "SrcAssgn"], vec!["Enrollment"])
            .join_source(("SrcStudent", "name"), ("SrcAssgn", "name"))
            .arrow(("SrcStudent", "id"), ("Enrollment", "id"))
            .arrow(("SrcAssgn", "course"), ("Enrollment", "course"));
        let tgd = g.compile(&source, &target).unwrap();
        assert_eq!(tgd.lhs.len(), 2);
        assert_eq!(tgd.rhs.len(), 1);
        // The join forces one shared variable between the two lhs atoms.
        let v0 = tgd.lhs[0].args[1].clone(); // SrcStudent.name
        let v1 = tgd.lhs[1].args[0].clone(); // SrcAssgn.name
        assert_eq!(v0, v1);
        assert!(tgd.is_full(), "no target existentials here");
        assert_eq!(
            tgd.to_string(),
            "∀x,y,w (SrcStudent(x, y) ∧ SrcAssgn(y, w) → Enrollment(x, w))"
        );
    }

    #[test]
    fn whole_figure1_compiles_as_a_set() {
        let (source, target) = figure1_schemas();
        let set = CorrespondenceSet::new(vec![
            CorrespondenceGroup::new(vec!["Takes"], vec!["Student", "Assgn"])
                .arrow(("Takes", "name"), ("Student", "name"))
                .arrow(("Takes", "name"), ("Assgn", "name"))
                .arrow(("Takes", "course"), ("Assgn", "course")),
            CorrespondenceGroup::new(vec!["SrcStudent", "SrcAssgn"], vec!["Enrollment"])
                .join_source(("SrcStudent", "name"), ("SrcAssgn", "name"))
                .arrow(("SrcStudent", "id"), ("Enrollment", "id"))
                .arrow(("SrcAssgn", "course"), ("Enrollment", "course")),
        ]);
        let tgds = set.compile(&source, &target).unwrap();
        assert_eq!(tgds.len(), 2);
        for t in &tgds {
            assert!(t.validate(&source, &target).is_ok());
        }
    }

    #[test]
    fn unreached_target_attrs_get_distinct_existentials() {
        let source =
            Schema::with_relations(vec![RelSchema::untyped("P1", vec!["id", "name"]).unwrap()])
                .unwrap();
        let target = Schema::with_relations(vec![RelSchema::untyped(
            "P2",
            vec!["id", "name", "salary", "zip"],
        )
        .unwrap()])
        .unwrap();
        let g = CorrespondenceGroup::new(vec!["P1"], vec!["P2"])
            .arrow(("P1", "id"), ("P2", "id"))
            .arrow(("P1", "name"), ("P2", "name"));
        let tgd = g.compile(&source, &target).unwrap();
        let ex = tgd.existential_vars();
        assert_eq!(ex.len(), 2, "salary and zip each get their own ∃ var");
        assert_ne!(ex[0], ex[1]);
    }

    #[test]
    fn target_join_shares_one_existential() {
        let source =
            Schema::with_relations(vec![RelSchema::untyped("R", vec!["a"]).unwrap()]).unwrap();
        let target = Schema::with_relations(vec![
            RelSchema::untyped("S", vec!["a", "k"]).unwrap(),
            RelSchema::untyped("T", vec!["k", "b"]).unwrap(),
        ])
        .unwrap();
        let g = CorrespondenceGroup::new(vec!["R"], vec!["S", "T"])
            .arrow(("R", "a"), ("S", "a"))
            .join_target(("S", "k"), ("T", "k"));
        let tgd = g.compile(&source, &target).unwrap();
        // S(x, z) ∧ T(z, z1): the joined k's share z; T.b gets its own.
        assert_eq!(tgd.rhs[0].args[1], tgd.rhs[1].args[0]);
        assert_ne!(tgd.rhs[1].args[0], tgd.rhs[1].args[1]);
    }

    #[test]
    fn arrow_from_unknown_attribute_errors() {
        let (source, target) = figure1_schemas();
        let g = CorrespondenceGroup::new(vec!["Takes"], vec!["Student"])
            .arrow(("Takes", "nope"), ("Student", "name"));
        assert!(g.compile(&source, &target).is_err());
    }

    #[test]
    fn unknown_relation_errors() {
        let (source, target) = figure1_schemas();
        let g = CorrespondenceGroup::new(vec!["Missing"], vec!["Student"]);
        assert!(g.compile(&source, &target).is_err());
    }
}
