//! Conjunctive-formula matching over instances.
//!
//! This is the workhorse shared by satisfaction checking and the chase:
//! find every valuation of the variables of a conjunction of atoms that
//! makes all atoms facts of the instance.

use crate::atom::Atom;
use crate::term::Term;
use dex_relational::{Instance, Name, Tuple, Value};
use std::collections::BTreeMap;

/// A variable assignment.
pub type Valuation = BTreeMap<Name, Value>;

/// All valuations satisfying the conjunction in `inst`.
pub fn match_conjunction(atoms: &[Atom], inst: &Instance) -> Vec<Valuation> {
    extend_matches(atoms, inst, &Valuation::new())
}

/// All extensions of `partial` satisfying the conjunction in `inst`.
///
/// Atoms are matched in an order chosen greedily: at each step the atom
/// with the most already-bound variables (ties broken by smaller
/// candidate relation) is matched next, which keeps the join tree
/// selective.
pub fn extend_matches(atoms: &[Atom], inst: &Instance, partial: &Valuation) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut v = partial.clone();
    search(&mut remaining, inst, &mut v, &mut out);
    out
}

/// Does at least one extension of `partial` satisfy the conjunction?
/// Stops at the first witness.
pub fn has_match(atoms: &[Atom], inst: &Instance, partial: &Valuation) -> bool {
    // A dedicated early-exit traversal: reuse `search` would collect all.
    fn go(remaining: &mut Vec<&Atom>, inst: &Instance, v: &mut Valuation) -> bool {
        let Some(idx) = pick_next(remaining, inst, v) else {
            return true;
        };
        let atom = remaining.swap_remove(idx);
        let found = match inst.relation(atom.relation.as_str()) {
            None => false,
            Some(rel) => rel.iter().any(|t| {
                let mut v2 = v.clone();
                unify_atom(atom, t, &mut v2)
                    && {
                        let saved = std::mem::replace(v, v2);
                        let ok = go(remaining, inst, v);
                        if !ok {
                            *v = saved;
                        }
                        ok
                    }
            }),
        };
        if !found {
            remaining.push(atom); // restore for caller's backtracking
        }
        found
    }
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut v = partial.clone();
    go(&mut remaining, inst, &mut v)
}

fn pick_next(remaining: &[&Atom], inst: &Instance, v: &Valuation) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let score = |a: &Atom| -> (usize, usize) {
        let bound = a
            .variables()
            .iter()
            .filter(|x| v.contains_key(x.as_str()))
            .count();
        let unbound = a.variables().len() - bound;
        let size = inst
            .relation(a.relation.as_str())
            .map(|r| r.len())
            .unwrap_or(0);
        (unbound, size)
    };
    let mut best = 0;
    let mut best_score = score(remaining[0]);
    for (i, a) in remaining.iter().enumerate().skip(1) {
        let s = score(a);
        if s < best_score {
            best = i;
            best_score = s;
        }
    }
    Some(best)
}

fn search(
    remaining: &mut Vec<&Atom>,
    inst: &Instance,
    v: &mut Valuation,
    out: &mut Vec<Valuation>,
) {
    let Some(idx) = pick_next(remaining, inst, v) else {
        out.push(v.clone());
        return;
    };
    let atom = remaining.swap_remove(idx);
    if let Some(rel) = inst.relation(atom.relation.as_str()) {
        for t in rel.iter() {
            let mut v2 = v.clone();
            if unify_atom(atom, t, &mut v2) {
                let saved = std::mem::replace(v, v2);
                search(remaining, inst, v, out);
                *v = saved;
            }
        }
    }
    remaining.push(atom);
}

/// Unify one atom's terms against a tuple, extending `v`. Returns
/// `false` (with `v` possibly dirtied — callers clone) on mismatch.
fn unify_atom(atom: &Atom, tuple: &Tuple, v: &mut Valuation) -> bool {
    debug_assert_eq!(atom.arity(), tuple.arity());
    for (term, val) in atom.args.iter().zip(tuple.iter()) {
        if !unify_term(term, val, v) {
            return false;
        }
    }
    true
}

fn unify_term(term: &Term, val: &Value, v: &mut Valuation) -> bool {
    match term {
        Term::Var(x) => match v.get(x.as_str()) {
            Some(bound) => bound == val,
            None => {
                v.insert(x.clone(), val.clone());
                true
            }
        },
        Term::Const(c) => matches!(val, Value::Const(vc) if vc == c),
        Term::Func(_, _) => {
            // Function terms match only if fully evaluable under the
            // current valuation, by syntactic equality.
            match term.eval(v) {
                Some(ev) => &ev == val,
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema};

    fn db() -> Instance {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("Student", vec!["id", "name"]).unwrap(),
            RelSchema::untyped("Assgn", vec!["name", "course"]).unwrap(),
        ])
        .unwrap();
        Instance::with_facts(
            schema,
            vec![
                (
                    "Student",
                    vec![tuple![1i64, "Alice"], tuple![2i64, "Bob"]],
                ),
                (
                    "Assgn",
                    vec![
                        tuple!["Alice", "DB"],
                        tuple!["Alice", "PL"],
                        tuple!["Bob", "DB"],
                    ],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_atom_all_matches() {
        let ms = match_conjunction(&[Atom::vars("Student", &["i", "n"])], &db());
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn join_via_shared_variable() {
        // Student(i, n) ∧ Assgn(n, c): 3 joined rows.
        let atoms = vec![
            Atom::vars("Student", &["i", "n"]),
            Atom::vars("Assgn", &["n", "c"]),
        ];
        let ms = match_conjunction(&atoms, &db());
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.len() == 3));
    }

    #[test]
    fn constants_filter() {
        let atoms = vec![Atom::new(
            "Assgn",
            vec![Term::var("n"), Term::cnst("DB")],
        )];
        let ms = match_conjunction(&atoms, &db());
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn repeated_variable_requires_equal_values() {
        // Assgn(x, x): no row has name == course.
        let atoms = vec![Atom::vars("Assgn", &["x", "x"])];
        assert!(match_conjunction(&atoms, &db()).is_empty());
    }

    #[test]
    fn partial_valuation_restricts() {
        let mut partial = Valuation::new();
        partial.insert(Name::new("n"), Value::str("Alice"));
        let ms = extend_matches(&[Atom::vars("Assgn", &["n", "c"])], &db(), &partial);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m["n"] == Value::str("Alice")));
    }

    #[test]
    fn has_match_early_exit_agrees() {
        let atoms = vec![
            Atom::vars("Student", &["i", "n"]),
            Atom::vars("Assgn", &["n", "c"]),
        ];
        assert!(has_match(&atoms, &db(), &Valuation::new()));
        let none = vec![Atom::new(
            "Student",
            vec![Term::var("i"), Term::cnst("Zed")],
        )];
        assert!(!has_match(&none, &db(), &Valuation::new()));
    }

    #[test]
    fn empty_conjunction_matches_once() {
        let ms = match_conjunction(&[], &db());
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_empty());
    }

    #[test]
    fn unknown_relation_no_match() {
        let ms = match_conjunction(&[Atom::vars("Nope", &["x"])], &db());
        assert!(ms.is_empty());
    }

    #[test]
    fn cartesian_when_no_shared_vars() {
        let atoms = vec![
            Atom::vars("Student", &["i", "n"]),
            Atom::vars("Assgn", &["m", "c"]),
        ];
        let ms = match_conjunction(&atoms, &db());
        assert_eq!(ms.len(), 6);
    }

    #[test]
    fn function_term_matches_by_evaluation() {
        use dex_relational::Tuple;
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("Boss", vec!["emp", "mgr"]).unwrap()
        ])
        .unwrap();
        let mut inst = Instance::empty(schema);
        inst.insert(
            "Boss",
            Tuple::new(vec![
                Value::str("Alice"),
                Value::skolem("f", vec![Value::str("Alice")]),
            ]),
        )
        .unwrap();
        // Boss(x, f(x)) should match with x = Alice.
        let atoms = vec![Atom::new(
            "Boss",
            vec![
                Term::var("x"),
                Term::func("f", vec![Term::var("x")]),
            ],
        )];
        let ms = match_conjunction(&atoms, &inst);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0]["x"], Value::str("Alice"));
    }
}
