//! Conjunctive-formula matching over instances.
//!
//! This is the workhorse shared by satisfaction checking and the chase:
//! find every valuation of the variables of a conjunction of atoms that
//! makes all atoms facts of the instance.
//!
//! Two matching modes are supported. [`MatchMode::Indexed`] (the
//! default) probes each relation's lazily built per-position hash
//! indexes on whichever bound position has the shortest posting list,
//! so a tuple is only visited if it agrees with the valuation on that
//! position. [`MatchMode::Scan`] visits every tuple of the relation.
//! Both modes pick atoms in the same greedy order and enumerate
//! candidates in canonical tuple order, so they produce identical
//! match lists; `Scan` is kept as a correctness oracle.
//!
//! Backtracking binds and unbinds variables in a single valuation
//! (with an undo log) instead of cloning the valuation per candidate
//! tuple.

use crate::atom::Atom;
use crate::term::Term;
use dex_relational::{Instance, Name, Relation, Tuple, TupleId, Value};
use std::collections::BTreeMap;

/// A variable assignment.
pub type Valuation = BTreeMap<Name, Value>;

/// How candidate tuples are located during matching.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchMode {
    /// Probe per-position hash indexes on bound positions.
    #[default]
    Indexed,
    /// Scan every tuple of the candidate relation (oracle).
    Scan,
}

/// All valuations satisfying the conjunction in `inst`.
pub fn match_conjunction(atoms: &[Atom], inst: &Instance) -> Vec<Valuation> {
    match_conjunction_mode(atoms, inst, MatchMode::default())
}

/// [`match_conjunction`] with an explicit matching mode.
pub fn match_conjunction_mode(atoms: &[Atom], inst: &Instance, mode: MatchMode) -> Vec<Valuation> {
    extend_matches_mode(atoms, inst, &Valuation::new(), mode)
}

/// All extensions of `partial` satisfying the conjunction in `inst`.
///
/// Atoms are matched in an order chosen greedily: at each step the atom
/// with the most already-bound variables (ties broken by smaller
/// candidate relation) is matched next, which keeps the join tree
/// selective.
pub fn extend_matches(atoms: &[Atom], inst: &Instance, partial: &Valuation) -> Vec<Valuation> {
    extend_matches_mode(atoms, inst, partial, MatchMode::default())
}

/// [`extend_matches`] with an explicit matching mode.
pub fn extend_matches_mode(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Valuation,
    mode: MatchMode,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut v = partial.clone();
    let mut undo = Vec::new();
    search(&mut remaining, inst, &mut v, &mut undo, mode, &mut |m| {
        out.push(m.clone());
        false
    });
    out
}

/// Stream every extension of `partial` satisfying the conjunction to
/// `emit`; returning `true` from `emit` stops the enumeration early.
/// Returns whether the enumeration was stopped.
///
/// This is the streaming primitive behind [`extend_matches_mode`] and
/// [`has_match_mode`]. Governed callers use it to check resource
/// budgets between matches without materializing the full match set
/// first.
pub fn for_each_match_mode(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Valuation,
    mode: MatchMode,
    emit: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut v = partial.clone();
    let mut undo = Vec::new();
    search(&mut remaining, inst, &mut v, &mut undo, mode, emit)
}

/// Does at least one extension of `partial` satisfy the conjunction?
/// Stops at the first witness.
pub fn has_match(atoms: &[Atom], inst: &Instance, partial: &Valuation) -> bool {
    has_match_mode(atoms, inst, partial, MatchMode::default())
}

/// [`has_match`] with an explicit matching mode.
pub fn has_match_mode(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Valuation,
    mode: MatchMode,
) -> bool {
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut v = partial.clone();
    let mut undo = Vec::new();
    search(&mut remaining, inst, &mut v, &mut undo, mode, &mut |_| true)
}

/// Extend `partial` so that `atom` matches `tuple` exactly. Returns
/// the extended valuation, or `None` on mismatch. This is the seeding
/// step of semi-naive (delta-driven) evaluation: pin one atom to a
/// delta tuple, then [`extend_matches_mode`] the rest.
pub fn unify_with_tuple(atom: &Atom, tuple: &Tuple, partial: &Valuation) -> Option<Valuation> {
    if atom.arity() != tuple.arity() {
        return None;
    }
    let mut v = partial.clone();
    let mut undo = Vec::new();
    if unify_atom(atom, tuple, &mut v, &mut undo) {
        Some(v)
    } else {
        None
    }
}

/// A conjunction split into independent per-seed work items for
/// sharded (multi-threaded) matching: the atom the sequential search
/// would pick first is pinned to each of its candidate rows, in
/// candidate-enumeration order, and the remaining atoms are kept in
/// exactly the order the sequential search would continue with.
///
/// Extending seed `k` over `rest` (via [`extend_matches_mode`]) yields
/// the `k`-th contiguous block of the sequential enumeration, so
/// concatenating per-seed results in seed order reproduces
/// [`match_conjunction_mode`] exactly — same matches, same order. This
/// is what lets the parallel chase keep the same-tuples-same-null-order
/// guarantee: shards can extend disjoint seed subsets on worker
/// threads, then merge by seed index.
#[derive(Clone, Debug)]
pub struct SeededConjunction {
    /// Valuations pinning the picked atom to each candidate row it
    /// unifies with, in candidate-enumeration order.
    pub seeds: Vec<Valuation>,
    /// The remaining atoms, in the sequential search's working order.
    pub rest: Vec<Atom>,
}

/// Split `atoms` into [`SeededConjunction`] work items. Returns `None`
/// for the empty conjunction (its single trivial match leaves nothing
/// to shard); callers fall back to [`match_conjunction_mode`].
pub fn seed_conjunction(
    atoms: &[Atom],
    inst: &Instance,
    mode: MatchMode,
) -> Option<SeededConjunction> {
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let v = Valuation::new();
    let idx = pick_next(&remaining, inst, &v)?;
    let atom = remaining.swap_remove(idx);
    // `remaining` now holds the rest in swap_remove order — the exact
    // layout the sequential search recurses with, which matters because
    // `pick_next` breaks score ties by position.
    let rest: Vec<Atom> = remaining.into_iter().cloned().collect();
    let Some(rel) = inst.relation(atom.relation.as_str()) else {
        // Missing relation: the sequential search finds no candidates.
        return Some(SeededConjunction {
            seeds: Vec::new(),
            rest,
        });
    };
    let ids: Vec<TupleId> = match mode {
        MatchMode::Indexed => best_probe(atom, rel, &v),
        MatchMode::Scan => None,
    }
    .unwrap_or_else(|| rel.row_ids().to_vec());
    let mut seeds = Vec::new();
    for &id in &ids {
        let mut sv = Valuation::new();
        let mut undo = Vec::new();
        if unify_row(atom, rel, id, &mut sv, &mut undo) {
            seeds.push(sv);
        }
    }
    Some(SeededConjunction { seeds, rest })
}

/// One step of a static premise-matching plan: which atom the greedy
/// optimizer matches next, which of its positions are index-probable at
/// that point, and which variables it newly binds.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct PremiseStep {
    /// Index of the atom in the original conjunction.
    pub atom: usize,
    /// Positions whose term is already determined when this atom is
    /// matched (a constant, a bound variable, or a function term over
    /// bound variables). The runtime probes whichever of these has the
    /// shortest posting list; an empty list means a full relation scan.
    pub probe_positions: Vec<usize>,
    /// Variables first bound by matching this atom, in argument order.
    pub binds: Vec<Name>,
}

/// A static premise plan: the greedy atom order of [`extend_matches`]
/// replayed without instance statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct PremisePlan {
    /// Planned matching steps, one per atom of the conjunction.
    pub steps: Vec<PremiseStep>,
}

impl PremiseStep {
    /// Does this step fall back to a full relation scan?
    pub fn is_scan(&self) -> bool {
        self.probe_positions.is_empty()
    }
}

/// Compute the static premise plan for `atoms`: the atom order the
/// greedy optimizer in [`extend_matches`] would choose when every
/// relation has the same size (fewest unbound variables first, earlier
/// atom on ties), and for each step the positions that are
/// index-probable given the variables bound so far. `pre_bound` lists
/// variables bound before matching starts — e.g. by semi-naive delta
/// seeding ([`unify_with_tuple`]) or an `extend_matches` partial
/// valuation.
///
/// This is a size-agnostic approximation of the runtime order: at run
/// time ties (and near-ties) are broken by live relation cardinality,
/// so two atoms with equally many unbound variables may swap. The probe
/// positions are exact — determinedness depends only on the binding
/// order, not on the data.
pub fn premise_plan(atoms: &[Atom], pre_bound: &[Name]) -> PremisePlan {
    let mut bound: Vec<Name> = pre_bound.to_vec();
    // Mirror `search`: `remaining` shrinks by swap_remove, and the
    // greedy score is (unbound-vars, relation-size) with strict `<`,
    // so with sizes unknown the earliest minimum wins.
    let mut remaining: Vec<(usize, &Atom)> = atoms.iter().enumerate().collect();
    let mut steps = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let unbound_count = |a: &Atom| a.variables().iter().filter(|x| !bound.contains(x)).count();
        let mut best = 0;
        let mut best_score = unbound_count(remaining[0].1);
        for (i, (_, a)) in remaining.iter().enumerate().skip(1) {
            let s = unbound_count(a);
            if s < best_score {
                best = i;
                best_score = s;
            }
        }
        let (atom_idx, atom) = remaining.swap_remove(best);
        let determined = |t: &Term| {
            let mut vars = Vec::new();
            t.collect_vars(&mut vars);
            match t {
                Term::Var(v) => bound.contains(v),
                Term::Const(_) => true,
                Term::Func(..) => vars.iter().all(|v| bound.contains(v)),
            }
        };
        let probe_positions = atom
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| determined(t))
            .map(|(pos, _)| pos)
            .collect();
        let mut binds = Vec::new();
        for v in atom.variables() {
            if !bound.contains(&v) && !binds.contains(&v) {
                binds.push(v);
            }
        }
        bound.extend(binds.iter().cloned());
        steps.push(PremiseStep {
            atom: atom_idx,
            probe_positions,
            binds,
        });
    }
    PremisePlan { steps }
}

fn pick_next(remaining: &[&Atom], inst: &Instance, v: &Valuation) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let score = |a: &Atom| -> (usize, usize) {
        let bound = a
            .variables()
            .iter()
            .filter(|x| v.contains_key(x.as_str()))
            .count();
        let unbound = a.variables().len() - bound;
        let size = inst
            .relation(a.relation.as_str())
            .map(|r| r.len())
            .unwrap_or(0);
        (unbound, size)
    };
    let mut best = 0;
    let mut best_score = score(remaining[0]);
    for (i, a) in remaining.iter().enumerate().skip(1) {
        let s = score(a);
        if s < best_score {
            best = i;
            best_score = s;
        }
    }
    Some(best)
}

/// The shortest index probe available for `atom` under `v`: among the
/// positions whose term is already determined (a constant, a bound
/// variable, or an evaluable function term), probe the one with the
/// fewest matching tuples. `None` if no position is determined. The
/// probe yields tuple *ids*; candidates are unified by reading the
/// relation's columns in place.
fn best_probe(atom: &Atom, rel: &Relation, v: &Valuation) -> Option<Vec<TupleId>> {
    let bound: Vec<(usize, Value)> = atom
        .args
        .iter()
        .enumerate()
        .filter_map(|(pos, term)| term.eval(v).map(|val| (pos, val)))
        .collect();
    let (pos, val) = bound
        .iter()
        .min_by_key(|(pos, val)| rel.posting_len(*pos, val))?;
    Some(rel.probe_ids(*pos, val))
}

/// Depth-first join search. `emit` is called on every complete match;
/// returning `true` stops the search (used by `has_match`). Returns
/// whether the search was stopped.
fn search(
    remaining: &mut Vec<&Atom>,
    inst: &Instance,
    v: &mut Valuation,
    undo: &mut Vec<Name>,
    mode: MatchMode,
    emit: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    let Some(idx) = pick_next(remaining, inst, v) else {
        return emit(v);
    };
    let atom = remaining.swap_remove(idx);
    let stopped = match inst.relation(atom.relation.as_str()) {
        None => false,
        Some(rel) => {
            let probe = match mode {
                MatchMode::Indexed => best_probe(atom, rel, v),
                MatchMode::Scan => None,
            };
            match probe {
                Some(ids) => try_candidates(rel, &ids, atom, remaining, inst, v, undo, mode, emit),
                None => {
                    // Full scan (no determined position, or oracle
                    // mode): all live rows in canonical order.
                    let ids = rel.row_ids();
                    try_candidates(rel, &ids, atom, remaining, inst, v, undo, mode, emit)
                }
            }
        }
    };
    remaining.push(atom);
    stopped
}

#[allow(clippy::too_many_arguments)]
fn try_candidates(
    rel: &Relation,
    candidates: &[TupleId],
    atom: &Atom,
    remaining: &mut Vec<&Atom>,
    inst: &Instance,
    v: &mut Valuation,
    undo: &mut Vec<Name>,
    mode: MatchMode,
    emit: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    for &id in candidates {
        let mark = undo.len();
        if unify_row(atom, rel, id, v, undo) && search(remaining, inst, v, undo, mode, emit) {
            rollback(v, undo, mark);
            return true;
        }
        rollback(v, undo, mark);
    }
    false
}

/// Unbind every variable bound after `mark`.
fn rollback(v: &mut Valuation, undo: &mut Vec<Name>, mark: usize) {
    for name in undo.drain(mark..) {
        v.remove(name.as_str());
    }
}

/// Unify one atom's terms against a tuple, extending `v` and recording
/// fresh bindings in `undo`. Returns `false` on mismatch; the caller
/// rolls back to its mark either way.
fn unify_atom(atom: &Atom, tuple: &Tuple, v: &mut Valuation, undo: &mut Vec<Name>) -> bool {
    debug_assert_eq!(atom.arity(), tuple.arity());
    for (term, val) in atom.args.iter().zip(tuple.iter()) {
        if !unify_term(term, val, v, undo) {
            return false;
        }
    }
    true
}

/// Like [`unify_atom`] against the arena row `id` of `rel`, reading
/// each position straight out of the column store — the matcher's hot
/// path never materializes candidate rows.
fn unify_row(
    atom: &Atom,
    rel: &Relation,
    id: TupleId,
    v: &mut Valuation,
    undo: &mut Vec<Name>,
) -> bool {
    for (col, term) in atom.args.iter().enumerate() {
        if !unify_term(term, rel.value_at(id, col), v, undo) {
            return false;
        }
    }
    true
}

fn unify_term(term: &Term, val: &Value, v: &mut Valuation, undo: &mut Vec<Name>) -> bool {
    match term {
        Term::Var(x) => match v.get(x.as_str()) {
            Some(bound) => bound == val,
            None => {
                v.insert(x.clone(), val.clone());
                undo.push(x.clone());
                true
            }
        },
        Term::Const(c) => matches!(val, Value::Const(vc) if vc == c),
        Term::Func(_, _) => {
            // Function terms match only if fully evaluable under the
            // current valuation, by syntactic equality.
            match term.eval(v) {
                Some(ev) => &ev == val,
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_relational::{tuple, RelSchema, Schema};

    fn db() -> Instance {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("Student", vec!["id", "name"]).unwrap(),
            RelSchema::untyped("Assgn", vec!["name", "course"]).unwrap(),
        ])
        .unwrap();
        Instance::with_facts(
            schema,
            vec![
                ("Student", vec![tuple![1i64, "Alice"], tuple![2i64, "Bob"]]),
                (
                    "Assgn",
                    vec![
                        tuple!["Alice", "DB"],
                        tuple!["Alice", "PL"],
                        tuple!["Bob", "DB"],
                    ],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_atom_all_matches() {
        let ms = match_conjunction(&[Atom::vars("Student", &["i", "n"])], &db());
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn join_via_shared_variable() {
        // Student(i, n) ∧ Assgn(n, c): 3 joined rows.
        let atoms = vec![
            Atom::vars("Student", &["i", "n"]),
            Atom::vars("Assgn", &["n", "c"]),
        ];
        let ms = match_conjunction(&atoms, &db());
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.len() == 3));
    }

    #[test]
    fn constants_filter() {
        let atoms = vec![Atom::new("Assgn", vec![Term::var("n"), Term::cnst("DB")])];
        let ms = match_conjunction(&atoms, &db());
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn repeated_variable_requires_equal_values() {
        // Assgn(x, x): no row has name == course.
        let atoms = vec![Atom::vars("Assgn", &["x", "x"])];
        assert!(match_conjunction(&atoms, &db()).is_empty());
    }

    #[test]
    fn partial_valuation_restricts() {
        let mut partial = Valuation::new();
        partial.insert(Name::new("n"), Value::str("Alice"));
        let ms = extend_matches(&[Atom::vars("Assgn", &["n", "c"])], &db(), &partial);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m["n"] == Value::str("Alice")));
    }

    #[test]
    fn has_match_early_exit_agrees() {
        let atoms = vec![
            Atom::vars("Student", &["i", "n"]),
            Atom::vars("Assgn", &["n", "c"]),
        ];
        assert!(has_match(&atoms, &db(), &Valuation::new()));
        let none = vec![Atom::new(
            "Student",
            vec![Term::var("i"), Term::cnst("Zed")],
        )];
        assert!(!has_match(&none, &db(), &Valuation::new()));
    }

    #[test]
    fn indexed_and_scan_agree_exactly() {
        // Same matches in the same order, across shapes: single atom,
        // join, constants, repeated vars, cartesian.
        let cases: Vec<Vec<Atom>> = vec![
            vec![Atom::vars("Student", &["i", "n"])],
            vec![
                Atom::vars("Student", &["i", "n"]),
                Atom::vars("Assgn", &["n", "c"]),
            ],
            vec![Atom::new("Assgn", vec![Term::var("n"), Term::cnst("DB")])],
            vec![Atom::vars("Assgn", &["x", "x"])],
            vec![
                Atom::vars("Student", &["i", "n"]),
                Atom::vars("Assgn", &["m", "c"]),
            ],
        ];
        for atoms in cases {
            let indexed = match_conjunction_mode(&atoms, &db(), MatchMode::Indexed);
            let scan = match_conjunction_mode(&atoms, &db(), MatchMode::Scan);
            assert_eq!(indexed, scan, "atoms: {atoms:?}");
            assert_eq!(
                has_match_mode(&atoms, &db(), &Valuation::new(), MatchMode::Indexed),
                has_match_mode(&atoms, &db(), &Valuation::new(), MatchMode::Scan),
            );
        }
    }

    #[test]
    fn seeded_enumeration_reproduces_sequential_order() {
        // Extending the seeds of `seed_conjunction` in seed order must
        // reproduce `match_conjunction_mode` exactly — the invariant
        // the parallel chase's shard merge depends on.
        let cases: Vec<Vec<Atom>> = vec![
            vec![Atom::vars("Student", &["i", "n"])],
            vec![
                Atom::vars("Student", &["i", "n"]),
                Atom::vars("Assgn", &["n", "c"]),
            ],
            vec![
                Atom::vars("Assgn", &["n", "c"]),
                Atom::vars("Student", &["i", "n"]),
                Atom::vars("Assgn", &["n", "c2"]),
            ],
            vec![Atom::new("Assgn", vec![Term::var("n"), Term::cnst("DB")])],
            vec![
                Atom::vars("Student", &["i", "n"]),
                Atom::vars("Assgn", &["m", "c"]),
            ],
            vec![Atom::vars("Nope", &["x"])],
        ];
        for atoms in cases {
            for mode in [MatchMode::Indexed, MatchMode::Scan] {
                let seq = match_conjunction_mode(&atoms, &db(), mode);
                let sc = seed_conjunction(&atoms, &db(), mode).expect("non-empty conjunction");
                let merged: Vec<Valuation> = sc
                    .seeds
                    .iter()
                    .flat_map(|s| extend_matches_mode(&sc.rest, &db(), s, mode))
                    .collect();
                assert_eq!(merged, seq, "atoms: {atoms:?} mode: {mode:?}");
            }
        }
        assert!(seed_conjunction(&[], &db(), MatchMode::Indexed).is_none());
    }

    #[test]
    fn empty_conjunction_matches_once() {
        let ms = match_conjunction(&[], &db());
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_empty());
    }

    #[test]
    fn unknown_relation_no_match() {
        let ms = match_conjunction(&[Atom::vars("Nope", &["x"])], &db());
        assert!(ms.is_empty());
    }

    #[test]
    fn cartesian_when_no_shared_vars() {
        let atoms = vec![
            Atom::vars("Student", &["i", "n"]),
            Atom::vars("Assgn", &["m", "c"]),
        ];
        let ms = match_conjunction(&atoms, &db());
        assert_eq!(ms.len(), 6);
    }

    #[test]
    fn premise_plan_orders_by_unbound_vars() {
        // Emp(x) has one unbound var, Manager(x, y) two: Emp first,
        // after which Manager's first position is probable.
        let atoms = vec![
            Atom::vars("Manager", &["x", "y"]),
            Atom::vars("Emp", &["x"]),
        ];
        let plan = premise_plan(&atoms, &[]);
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].atom, 1);
        assert!(plan.steps[0].is_scan());
        assert_eq!(plan.steps[0].binds, vec![Name::new("x")]);
        assert_eq!(plan.steps[1].atom, 0);
        assert_eq!(plan.steps[1].probe_positions, vec![0]);
        assert_eq!(plan.steps[1].binds, vec![Name::new("y")]);
    }

    #[test]
    fn premise_plan_constants_and_prebound_probe() {
        // Assgn(n, "DB") with n pre-bound: both positions determined.
        let atoms = vec![Atom::new("Assgn", vec![Term::var("n"), Term::cnst("DB")])];
        let plan = premise_plan(&atoms, &[Name::new("n")]);
        assert_eq!(plan.steps[0].probe_positions, vec![0, 1]);
        assert!(plan.steps[0].binds.is_empty());
        // Without the pre-binding only the constant is determined.
        let cold = premise_plan(&atoms, &[]);
        assert_eq!(cold.steps[0].probe_positions, vec![1]);
        assert_eq!(cold.steps[0].binds, vec![Name::new("n")]);
    }

    #[test]
    fn premise_plan_function_term_determined_when_args_bound() {
        let atoms = vec![
            Atom::vars("Emp", &["x"]),
            Atom::new(
                "Boss",
                vec![Term::var("x"), Term::func("f", vec![Term::var("x")])],
            ),
        ];
        let plan = premise_plan(&atoms, &[]);
        assert_eq!(plan.steps[1].atom, 1);
        // x bound by Emp, so both Boss positions (var + skolem) probe.
        assert_eq!(plan.steps[1].probe_positions, vec![0, 1]);
    }

    #[test]
    fn function_term_matches_by_evaluation() {
        use dex_relational::Tuple;
        let schema =
            Schema::with_relations(vec![RelSchema::untyped("Boss", vec!["emp", "mgr"]).unwrap()])
                .unwrap();
        let mut inst = Instance::empty(schema);
        inst.insert(
            "Boss",
            Tuple::new(vec![
                Value::str("Alice"),
                Value::skolem("f", vec![Value::str("Alice")]),
            ]),
        )
        .unwrap();
        // Boss(x, f(x)) should match with x = Alice.
        let atoms = vec![Atom::new(
            "Boss",
            vec![Term::var("x"), Term::func("f", vec![Term::var("x")])],
        )];
        let ms = match_conjunction(&atoms, &inst);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0]["x"], Value::str("Alice"));
    }
}
