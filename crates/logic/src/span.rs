//! Source spans for parsed mappings.
//!
//! The parser tokenizes with 1-based line/column positions; a [`Span`]
//! is a half-open region of the input delimited by the start of its
//! first token and the end of its last token. Spans never affect the
//! semantics (or equality) of the AST — they live in a [`SourceMap`]
//! side table aligned index-for-index with the [`crate::Mapping`]
//! returned by [`crate::parser::parse_mapping_with_spans`], so
//! downstream tooling (the `dex-analyze` lint pass, error reporting)
//! can point back at concrete source text.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A region of mapping source text, with 1-based inclusive start and
/// exclusive end positions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
    /// 1-based line of the character just past the region.
    pub end_line: usize,
    /// 1-based column of the character just past the region.
    pub end_col: usize,
}

impl Span {
    /// A span covering a single point (used for end-of-input).
    pub fn point(line: usize, col: usize) -> Span {
        Span {
            line,
            col,
            end_line: line,
            end_col: col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        let (end_line, end_col) =
            if (self.end_line, self.end_col) >= (other.end_line, other.end_col) {
                (self.end_line, self.end_col)
            } else {
                (other.end_line, other.end_col)
            };
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Where each piece of a parsed [`crate::Mapping`] came from.
///
/// Every vector is aligned with the corresponding accessor of the
/// mapping: `st_tgds[i]` is the span of `mapping.st_tgds()[i]`, and so
/// on. Key declarations expand to one egd per non-key column; each such
/// egd carries the span of the `key …;` declaration that produced it.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SourceMap {
    /// Span of each st-tgd rule, in mapping order.
    pub st_tgds: Vec<Span>,
    /// Span of each target tgd rule, in mapping order.
    pub target_tgds: Vec<Span>,
    /// Span of each target egd (explicit rules and key expansions), in
    /// mapping order.
    pub target_egds: Vec<Span>,
    /// Span of each `source Rel(…);` declaration, keyed by relation
    /// name.
    pub source_decls: Vec<(String, Span)>,
    /// Span of each `target Rel(…);` declaration, keyed by relation
    /// name.
    pub target_decls: Vec<(String, Span)>,
}

impl SourceMap {
    /// The span of the `source` declaration of `rel`, if recorded.
    pub fn source_decl(&self, rel: &str) -> Option<Span> {
        self.source_decls
            .iter()
            .find(|(n, _)| n == rel)
            .map(|(_, s)| *s)
    }

    /// The span of the `target` declaration of `rel`, if recorded.
    pub fn target_decl(&self, rel: &str) -> Option<Span> {
        self.target_decls
            .iter()
            .find(|(n, _)| n == rel)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span {
            line: 2,
            col: 5,
            end_line: 2,
            end_col: 9,
        };
        let b = Span {
            line: 1,
            col: 7,
            end_line: 3,
            end_col: 1,
        };
        let m = a.merge(b);
        assert_eq!((m.line, m.col), (1, 7));
        assert_eq!((m.end_line, m.end_col), (3, 1));
        assert_eq!(a.merge(a), a);
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::point(4, 2).to_string(), "4:2");
    }
}
