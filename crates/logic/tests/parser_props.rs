//! Property tests for the mapping language: display → re-parse is the
//! identity on randomly generated tgds.

use dex_logic::{parse_disj_tgd, parse_tgd, Atom, DisjTgd, StTgd, Term};
use proptest::prelude::*;

/// Render a tgd in the *input* syntax (`&`-joined atoms, `->`).
fn render_tgd(t: &StTgd) -> String {
    let side = |atoms: &[Atom]| {
        atoms
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" & ")
    };
    format!("{} -> {}", side(&t.lhs), side(&t.rhs))
}

fn render_disj(t: &DisjTgd) -> String {
    let side = |atoms: &[Atom]| {
        atoms
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" & ")
    };
    format!(
        "{} -> {}",
        side(&t.lhs),
        t.disjuncts
            .iter()
            .map(|d| side(d))
            .collect::<Vec<_>>()
            .join(" | ")
    )
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0usize..6).prop_map(|i| Term::var(format!("v{i}"))),
        (-5i64..100).prop_map(Term::cnst),
        "[a-z]{1,6}".prop_map(|s| Term::cnst(s.as_str())),
        any::<bool>().prop_map(Term::cnst),
    ]
}

fn arb_atom(rel_pool: &'static [&'static str]) -> impl Strategy<Value = Atom> {
    (
        proptest::sample::select(rel_pool),
        proptest::collection::vec(arb_term(), 1..4),
    )
        .prop_map(|(r, args)| Atom::new(r, args))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse(render(t)) == t for arbitrary tgds.
    #[test]
    fn tgd_display_parse_round_trip(
        lhs in proptest::collection::vec(arb_atom(&["R", "S", "T"]), 1..3),
        rhs in proptest::collection::vec(arb_atom(&["U", "V"]), 1..3),
    ) {
        let t = StTgd::new(lhs, rhs);
        let text = render_tgd(&t);
        let back = parse_tgd(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(back, t);
    }

    /// Same for disjunctive rules.
    #[test]
    fn disj_tgd_round_trip(
        lhs in proptest::collection::vec(arb_atom(&["R"]), 1..3),
        disjuncts in proptest::collection::vec(
            proptest::collection::vec(arb_atom(&["U", "V"]), 1..3), 1..3),
    ) {
        let t = DisjTgd::new(lhs, disjuncts);
        let text = render_disj(&t);
        let back = parse_disj_tgd(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(back, t);
    }

    /// The tokenizer never panics on arbitrary input (errors are fine).
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,60}") {
        let _ = parse_tgd(&s);
        let _ = dex_logic::parse_mapping(&s);
    }

    /// Near-miss fuzzing: single-character corruptions of a valid
    /// mapping file hit the parser's error paths (unbalanced parens,
    /// truncated rules, stray operators) much more often than uniform
    /// garbage does; none of them may panic.
    #[test]
    fn parser_total_on_near_miss_mappings(
        pos in 0usize..WELL_FORMED_LEN,
        op in 0u8..4,
        ch in "\\PC",
    ) {
        let mutated = mutate(WELL_FORMED, pos, op, &ch);
        let _ = dex_logic::parse_mapping(&mutated);
        let _ = dex_logic::parse_mapping_with_spans(&mutated);
    }
}

/// A representative well-formed mapping exercising every declaration
/// form (source/target/key), egds, comments, and a multi-atom rule.
const WELL_FORMED: &str = "\
source Takes(name, course); -- comment\n\
target Student(id, name);\n\
target Assgn(name, course);\n\
key Student(id);\n\
Takes(x, y) -> Student(z, x) & Assgn(x, y);\n\
Student(i, n) & Student(i, m) -> n = m;\n";

const WELL_FORMED_LEN: usize = 190; // ≥ WELL_FORMED.len(), positions clamp

/// Apply one small corruption at (roughly) byte `pos`: delete, insert,
/// replace, or truncate.
fn mutate(base: &str, pos: usize, op: u8, ch: &str) -> String {
    // Snap to the nearest char boundary at or below `pos`.
    let mut at = pos.min(base.len());
    while !base.is_char_boundary(at) {
        at -= 1;
    }
    let (head, tail) = base.split_at(at);
    match op {
        0 => {
            // delete one char
            let rest: String = tail.chars().skip(1).collect();
            format!("{head}{rest}")
        }
        1 => format!("{head}{ch}{tail}"), // insert
        2 => {
            // replace one char
            let rest: String = tail.chars().skip(1).collect();
            format!("{head}{ch}{rest}")
        }
        _ => head.to_string(), // truncate
    }
}
