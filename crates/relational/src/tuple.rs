//! Tuples: fixed-width sequences of values.

use crate::value::{NullId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A tuple of values. Width is fixed at construction; positional access
/// is paired with schema-aware (named) access at the [`crate::Relation`]
/// level.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into_boxed_slice())
    }

    /// Tuple width.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Positional access.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// The underlying values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> + '_ {
        self.0.iter()
    }

    /// Is every value a ground constant?
    pub fn is_ground(&self) -> bool {
        self.0.iter().all(Value::is_ground)
    }

    /// Does the tuple contain any labeled null (including inside Skolem
    /// terms)?
    pub fn has_nulls(&self) -> bool {
        let mut s = BTreeSet::new();
        self.collect_nulls(&mut s);
        !s.is_empty()
    }

    /// Collect all null ids into `out`.
    pub fn collect_nulls(&self, out: &mut BTreeSet<NullId>) {
        for v in self.0.iter() {
            v.collect_nulls(out);
        }
    }

    /// Approximate heap footprint in bytes (see
    /// [`Value::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.0.iter().map(Value::approx_bytes).sum::<usize>()
    }

    /// Apply a null substitution to every value.
    pub fn substitute_nulls(&self, subst: &BTreeMap<NullId, Value>) -> Tuple {
        Tuple(self.0.iter().map(|v| v.substitute_nulls(subst)).collect())
    }

    /// Project onto the given positions (positions may repeat or reorder).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// A new tuple with position `i` replaced by `v`.
    pub fn with_value(&self, i: usize, v: Value) -> Tuple {
        let mut vals: Vec<Value> = self.0.to_vec();
        vals[i] = v;
        Tuple::new(vals)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

/// Convenience macro: `tuple!["Alice", 7, Value::null(0)]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_mixed_tuple() {
        let t = crate::tuple!["Alice", 30i64, true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::str("Alice"));
        assert_eq!(t[1], Value::int(30));
        assert_eq!(t[2], Value::bool(true));
    }

    #[test]
    fn groundness_and_nulls() {
        let t = Tuple::new(vec![Value::str("a"), Value::null(1)]);
        assert!(!t.is_ground());
        assert!(t.has_nulls());
        let mut s = BTreeSet::new();
        t.collect_nulls(&mut s);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn projection_can_reorder_and_repeat() {
        let t = crate::tuple![1i64, 2i64, 3i64];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, crate::tuple![3i64, 1i64, 1i64]);
    }

    #[test]
    fn concat_widths_add() {
        let a = crate::tuple![1i64];
        let b = crate::tuple!["x", "y"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c[2], Value::str("y"));
    }

    #[test]
    fn substitute_nulls_in_tuple() {
        let t = Tuple::new(vec![Value::null(0), Value::str("k")]);
        let mut s = BTreeMap::new();
        s.insert(NullId(0), Value::int(42));
        assert_eq!(t.substitute_nulls(&s), crate::tuple![42i64, "k"]);
    }

    #[test]
    fn with_value_replaces_one_position() {
        let t = crate::tuple![1i64, 2i64];
        let u = t.with_value(1, Value::int(9));
        assert_eq!(u, crate::tuple![1i64, 9i64]);
        assert_eq!(t[1], Value::int(2), "original untouched");
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::str("Bob"), Value::null(2)]);
        assert_eq!(t.to_string(), "(Bob, ⊥2)");
    }

    #[test]
    fn ordering_is_lexicographic_on_values() {
        let a = crate::tuple![1i64, 5i64];
        let b = crate::tuple![2i64, 0i64];
        assert!(a < b);
    }
}
