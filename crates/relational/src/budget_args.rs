//! Shared textual [`Budget`] construction — one parser for every
//! surface that accepts budget limits as strings.
//!
//! `dexcli` exposes budgets as command-line flags (`--timeout 2s`,
//! `--max-memory 64k`); `dexd` exposes the same five knobs as JSON
//! request overrides (`{"budget": {"timeout": "2s", …}}`). Both go
//! through [`BudgetArgs`], so the two surfaces parse identical syntax
//! by construction and cannot drift: a new budget axis added here shows
//! up (or fails loudly) on both sides at once.
//!
//! Keys are the flag names without the `--` prefix; see
//! [`BudgetArgs::KEYS`]. Values use the same human-friendly grammar the
//! CLI has always accepted: durations as `500ms`/`2s`/`1m` (bare
//! number = milliseconds), sizes as `64k`/`10m`/`1g` (bare number =
//! bytes), counts as plain non-negative integers.

use crate::governor::Budget;
use std::time::Duration;

/// Incremental [`Budget`] builder keyed by textual limit names.
///
/// ```
/// use dex_relational::budget_args::BudgetArgs;
/// let mut args = BudgetArgs::new();
/// args.set("timeout", "250ms").unwrap();
/// args.set("max-tuples", "1000").unwrap();
/// let b = args.budget();
/// assert_eq!(b.max_tuples, Some(1000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BudgetArgs {
    budget: Budget,
}

impl BudgetArgs {
    /// Every recognized limit key, in documentation order. The CLI
    /// derives its `--timeout`/`--max-*` flags from this list; `dexd`
    /// matches request-override object keys against it (with `_`
    /// normalized to `-`).
    pub const KEYS: &'static [&'static str] = &[
        "timeout",
        "max-rounds",
        "max-tuples",
        "max-nulls",
        "max-memory",
    ];

    /// An empty builder (no limits set).
    pub fn new() -> Self {
        BudgetArgs::default()
    }

    /// Start from an already-built budget (e.g. a server default) and
    /// let later [`set`](Self::set) calls override individual axes.
    pub fn from_budget(budget: Budget) -> Self {
        BudgetArgs { budget }
    }

    /// Set one limit from its textual form. `key` must be one of
    /// [`KEYS`](Self::KEYS) (underscores are accepted in place of
    /// dashes); the error message names the key and the expected
    /// grammar, without any flag-syntax prefix, so callers can wrap it
    /// for their surface (`--timeout …` vs `"budget.timeout": …`).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let canonical = key.replace('_', "-");
        match canonical.as_str() {
            "timeout" => self.budget.deadline = Some(parse_duration(value, "timeout")?),
            "max-rounds" => self.budget.max_rounds = Some(parse_count(value, "max-rounds")?),
            "max-tuples" => self.budget.max_tuples = Some(parse_count(value, "max-tuples")?),
            "max-nulls" => self.budget.max_nulls = Some(parse_count(value, "max-nulls")?),
            "max-memory" => self.budget.max_memory_bytes = Some(parse_size(value, "max-memory")?),
            other => {
                return Err(format!(
                    "unknown budget limit `{other}` (expected one of {})",
                    Self::KEYS.join(", ")
                ))
            }
        }
        Ok(())
    }

    /// The budget built so far.
    pub fn budget(&self) -> Budget {
        self.budget
    }
}

/// Parse a human duration: `500ms`, `2s`, `1m`, or a bare number of
/// milliseconds. `key` names the limit in the error message.
pub fn parse_duration(s: &str, key: &str) -> Result<Duration, String> {
    let bad = || format!("{key} takes a duration like 500ms, 2s or 1m, got `{s}`");
    let (digits, mult_ms) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('m') {
        (d, 60_000)
    } else {
        (s, 1)
    };
    let n = digits.parse::<u64>().map_err(|_| bad())?;
    n.checked_mul(mult_ms)
        .map(Duration::from_millis)
        .ok_or_else(bad)
}

/// Parse a non-negative count. `key` names the limit in the error
/// message.
pub fn parse_count(s: &str, key: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("{key} takes a non-negative integer, got `{s}`"))
}

/// Parse a human size: `64k`, `10m`, `1g`, or a bare number of bytes.
/// `key` names the limit in the error message.
pub fn parse_size(s: &str, key: &str) -> Result<u64, String> {
    let bad = || format!("{key} takes a size like 64k, 10m or 1g, got `{s}`");
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = lower.strip_suffix('k') {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = lower.strip_suffix('g') {
        (d, 1 << 30)
    } else {
        (lower.as_str(), 1)
    };
    let n = digits.parse::<u64>().map_err(|_| bad())?;
    n.checked_mul(mult).ok_or_else(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_keys_round_trip() {
        let mut args = BudgetArgs::new();
        for key in BudgetArgs::KEYS {
            args.set(key, "7").unwrap();
        }
        let b = args.budget();
        assert_eq!(b.deadline, Some(Duration::from_millis(7)));
        assert_eq!(b.max_rounds, Some(7));
        assert_eq!(b.max_tuples, Some(7));
        assert_eq!(b.max_nulls, Some(7));
        assert_eq!(b.max_memory_bytes, Some(7));
    }

    #[test]
    fn underscore_keys_are_normalized() {
        let mut args = BudgetArgs::new();
        args.set("max_rounds", "3").unwrap();
        assert_eq!(args.budget().max_rounds, Some(3));
    }

    #[test]
    fn duration_and_size_suffixes() {
        assert_eq!(
            parse_duration("2s", "timeout").unwrap(),
            Duration::from_secs(2)
        );
        assert_eq!(
            parse_duration("1m", "timeout").unwrap(),
            Duration::from_secs(60)
        );
        assert_eq!(parse_size("64k", "max-memory").unwrap(), 64 << 10);
        assert_eq!(parse_size("1g", "max-memory").unwrap(), 1 << 30);
        assert_eq!(parse_size("42", "max-memory").unwrap(), 42);
    }

    #[test]
    fn errors_name_the_key_and_grammar() {
        let mut args = BudgetArgs::new();
        let e = args.set("timeout", "soon").unwrap_err();
        assert!(e.contains("timeout") && e.contains("500ms"), "{e}");
        let e = args.set("frobs", "1").unwrap_err();
        assert!(e.contains("unknown budget limit"), "{e}");
        let e = args.set("max-memory", "lots").unwrap_err();
        assert!(e.contains("max-memory") && e.contains("64k"), "{e}");
    }

    #[test]
    fn overflowing_values_are_rejected_not_wrapped() {
        assert!(parse_duration("999999999999999999m", "timeout").is_err());
        assert!(parse_size("999999999999999999g", "max-memory").is_err());
    }

    #[test]
    fn from_budget_overrides_axis_by_axis() {
        let default = Budget::unlimited().with_max_rounds(10).with_max_tuples(20);
        let mut args = BudgetArgs::from_budget(default);
        args.set("max-rounds", "5").unwrap();
        let b = args.budget();
        assert_eq!(b.max_rounds, Some(5), "override wins");
        assert_eq!(b.max_tuples, Some(20), "untouched axis keeps default");
    }
}
