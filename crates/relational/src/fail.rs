//! Deterministic fail-point fault injection (feature `failpoints`).
//!
//! A *fail point* is a named site in a hot path that a test can arm to
//! error or panic on its Nth hit, sled/fail-rs style. Sites are
//! compiled in only when the `failpoints` feature is enabled; without
//! it, [`hit`] is an inlined `None` and every site disappears from the
//! generated code.
//!
//! The registered site inventory (see DESIGN.md for semantics):
//!
//! | site                    | where                                        |
//! |-------------------------|----------------------------------------------|
//! | `chase.fire`            | `dex-chase` — before a tgd firing mutates    |
//! | `relation.extend_delta` | delta commit, after validation, before insert|
//! | `index.build`           | lazy index (re)build, before mutating cache  |
//! | `store.wal_append`      | `dex-store` — before a WAL record write      |
//! | `store.snapshot_write`  | `dex-store` — before the snapshot temp write |
//! | `store.snapshot_rename` | `dex-store` — before the atomic rename       |
//! | `migrate.plan`          | `dex-store` — before writing the staging plan|
//! | `migrate.round_commit`  | migration — before persisting a chase round  |
//! | `migrate.finalize`      | migration — before the commit-marker write   |
//! | `server.accept`         | `dexd` — after accepting a connection        |
//! | `server.read_request`   | `dexd` — before parsing the HTTP request     |
//! | `server.dispatch`       | `dexd` — before executing the operation      |
//! | `server.write_response` | `dexd` — before writing the HTTP response    |
//!
//! The `store.*` sites are probed through [`hit_io`], which can also
//! inject [`FailAction::ShortWrite`]: the store's write path then
//! writes only a prefix of the record before erroring, simulating a
//! torn write at a byte granularity the `Error` action cannot reach.
//!
//! Arming is one-shot and deterministic: `arm(site, action, nth)`
//! triggers on exactly the `nth` hit of `site` after arming, then
//! disarms itself. `Error` actions surface as
//! [`RelationalError::FaultInjected`] through the normal typed-error
//! plumbing; `Panic` actions unwind (and every lock on the recovery
//! path tolerates the resulting poison). Sites placed *before* any
//! mutation guarantee the faulted operation leaves its inputs
//! unmodified — the property the injection matrix tests pin down.
//!
//! Tests arming fail points must hold the `exclusive` guard: the
//! registry is process-global, so concurrently running fail-point
//! tests would otherwise trip each other's faults.

#[cfg(not(feature = "failpoints"))]
use crate::error::RelationalError;

/// What an armed fail point does when it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Return a typed [`RelationalError::FaultInjected`].
    Error,
    /// Panic (exercises unwind safety and the CLI panic barrier).
    Panic,
    /// Write only the first `n` bytes of the faulted IO operation,
    /// then error — a torn write. Only meaningful at `store.*` sites
    /// probed via [`hit_io`]; [`hit`] treats it like `Error`.
    ShortWrite(u64),
}

/// Every registered in-memory fail-point site, for matrix tests.
pub const SITES: &[&str] = &["chase.fire", "relation.extend_delta", "index.build"];

/// Every registered store IO fail-point site (probed via [`hit_io`]),
/// for the crash-matrix tests in `dex-store`.
pub const STORE_SITES: &[&str] = &[
    "store.wal_append",
    "store.snapshot_write",
    "store.snapshot_rename",
];

/// Every registered live-migration fail-point site (probed via
/// [`hit_io`], so `ShortWrite` can tear the staged file mid-write),
/// for the migration crash-matrix tests in `dex-store`. The nested
/// staging store additionally fires every `store.*` site, so a
/// migration run is covered by both inventories.
pub const MIGRATE_SITES: &[&str] = &["migrate.plan", "migrate.round_commit", "migrate.finalize"];

/// Every registered `dexd` network-layer fail-point site, for the
/// chaos-matrix tests in `crates/dexd`. All are probed via [`hit`]:
/// an injected `Error` makes the server degrade that request (drop the
/// connection at `server.accept`, answer 4xx/5xx elsewhere), an
/// injected `Panic` exercises the per-request panic barrier — in both
/// cases the daemon itself must keep serving.
pub const SERVER_SITES: &[&str] = &[
    "server.accept",
    "server.read_request",
    "server.dispatch",
    "server.write_response",
];

/// Probe a fail-point site. Returns the injected error when the site
/// is armed and this is the triggering hit; panics instead when the
/// armed action is [`FailAction::Panic`]. A no-op without the
/// `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) -> Option<RelationalError> {
    None
}

/// Probe an IO fail-point site. Unlike [`hit`], the triggering action
/// is handed back to the caller so IO code can interpret
/// [`FailAction::ShortWrite`] (write a prefix, then fail) itself;
/// `Panic` still unwinds from here. A no-op without the `failpoints`
/// feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit_io(_site: &str) -> Option<FailAction> {
    None
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, clear, exclusive, hit, hit_io};

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use crate::error::RelationalError;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Armed {
        action: FailAction,
        /// Trigger on this hit count (1-based).
        nth: u64,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Poison-tolerant lock: a panic-action fail point must not wedge
    /// the registry for the rest of the process.
    fn lock() -> MutexGuard<'static, HashMap<String, Armed>> {
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arm `site` to perform `action` on its `nth` hit (1-based) after
    /// arming, then disarm itself.
    pub fn arm(site: &str, action: FailAction, nth: u64) {
        assert!(nth >= 1, "fail points trigger on a 1-based hit count");
        lock().insert(
            site.to_string(),
            Armed {
                action,
                nth,
                hits: 0,
            },
        );
    }

    /// Disarm every fail point and reset hit counters.
    pub fn clear() {
        lock().clear();
    }

    /// Serialize fail-point tests: hold the returned guard for the
    /// duration of any test that arms fail points.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// See the crate-level [`hit`](super::hit) docs.
    pub fn hit(site: &str) -> Option<RelationalError> {
        match trigger(site)? {
            // Non-IO sites have no byte-level write to tear; an armed
            // short write degrades to the plain typed error.
            FailAction::Error | FailAction::ShortWrite(_) => {
                Some(RelationalError::FaultInjected(site.to_string()))
            }
            FailAction::Panic => panic!("injected panic at fail point `{site}`"),
        }
    }

    /// See the crate-level [`hit_io`](super::hit_io) docs.
    pub fn hit_io(site: &str) -> Option<FailAction> {
        match trigger(site)? {
            FailAction::Panic => panic!("injected panic at fail point `{site}`"),
            action => Some(action),
        }
    }

    /// Shared trigger bookkeeping: count the hit, disarm on the Nth,
    /// and hand the armed action back with the registry lock released.
    fn trigger(site: &str) -> Option<FailAction> {
        let mut reg = lock();
        let armed = reg.get_mut(site)?;
        armed.hits += 1;
        if armed.hits != armed.nth {
            return None;
        }
        let action = armed.action;
        reg.remove(site); // one-shot: disarm before acting
        Some(action)
    }
}

/// Probe a fail-point site from a `Result`-returning function: on an
/// injected `Error` action, returns it (converted via `From`) from the
/// enclosing function. `Panic` actions unwind from the macro itself.
/// Compiles to nothing without the `failpoints` feature.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if let Some(e) = $crate::fail::hit($site) {
            return Err(e.into());
        }
    };
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::error::RelationalError;

    #[test]
    fn nth_hit_triggers_once_then_disarms() {
        let _gate = exclusive();
        clear();
        arm("chase.fire", FailAction::Error, 3);
        assert!(hit("chase.fire").is_none());
        assert!(hit("chase.fire").is_none());
        let e = hit("chase.fire").expect("third hit triggers");
        assert_eq!(e, RelationalError::FaultInjected("chase.fire".into()));
        assert!(hit("chase.fire").is_none(), "one-shot: disarmed");
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _gate = exclusive();
        clear();
        assert!(hit("relation.extend_delta").is_none());
    }

    #[test]
    fn panic_action_unwinds_and_registry_survives() {
        let _gate = exclusive();
        clear();
        arm("index.build", FailAction::Panic, 1);
        let unwound =
            std::panic::catch_unwind(|| hit("index.build")).expect_err("injected panic expected");
        let msg = unwound
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("index.build"), "payload names the site: {msg}");
        // The registry keeps working after the unwind.
        arm("index.build", FailAction::Error, 1);
        assert!(hit("index.build").is_some());
        clear();
    }

    #[test]
    fn io_probe_hands_back_the_action() {
        let _gate = exclusive();
        clear();
        arm("store.wal_append", FailAction::ShortWrite(5), 1);
        assert_eq!(hit_io("store.wal_append"), Some(FailAction::ShortWrite(5)));
        assert!(hit_io("store.wal_append").is_none(), "one-shot: disarmed");
        arm("store.snapshot_rename", FailAction::Error, 1);
        assert_eq!(hit_io("store.snapshot_rename"), Some(FailAction::Error));
        // A short write armed at a non-IO site degrades to the typed
        // error through the plain probe.
        arm("chase.fire", FailAction::ShortWrite(3), 1);
        assert_eq!(
            hit("chase.fire"),
            Some(RelationalError::FaultInjected("chase.fire".into()))
        );
        clear();
    }
}
