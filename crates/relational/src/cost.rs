//! Static chase-cost vocabulary: saturating bounds and source statistics.
//!
//! The chase on a weakly (or jointly) acyclic mapping is guaranteed to
//! terminate in polynomially many steps in the size of the source
//! instance — the termination classifier (dex-chase) proves *that* it
//! stops, and the cost analyzer (dex-analyze) computes *how big* the
//! result can get. This module holds the layer-neutral vocabulary both
//! sides share:
//!
//! * [`Bound`] — a certified upper bound: either a finite `u64` or
//!   `Unbounded`. All arithmetic is *checked*: any overflow collapses to
//!   `Unbounded` rather than wrapping, so a `Finite(n)` is always an
//!   honest claim. Every operation is monotone in its operands, which is
//!   what makes the derived bounds monotone in source cardinalities.
//! * [`ChaseBounds`] — the aggregate per-run bounds (rounds, firings,
//!   tuples, nulls, bytes) that [`Budget::from_bounds`] turns into
//!   governor caps for admission control.
//! * [`SourceStats`] — per-relation source cardinalities (measured from
//!   an [`Instance`] or assumed uniform) that parameterize the bounds.
//!
//! [`Budget::from_bounds`]: crate::governor::Budget::from_bounds

use crate::instance::Instance;
use crate::name::Name;
use crate::value::Value;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;
use std::fmt;

/// A certified upper bound on some chase quantity.
///
/// Ordering: `Finite(a) < Finite(b)` iff `a < b`, and every finite
/// bound is below `Unbounded` (derived variant order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bound {
    /// The quantity is provably at most this many.
    Finite(u64),
    /// No finite bound could be certified (non-terminating
    /// classification, or the bound overflowed `u64` — either way the
    /// number is useless as a cap).
    Unbounded,
}

impl Bound {
    /// The zero bound.
    pub const ZERO: Bound = Bound::Finite(0);
    /// The unit bound.
    pub const ONE: Bound = Bound::Finite(1);

    /// Is this bound finite?
    pub fn is_finite(&self) -> bool {
        matches!(self, Bound::Finite(_))
    }

    /// The finite value, if any.
    pub fn finite(&self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(*n),
            Bound::Unbounded => None,
        }
    }

    /// Checked addition: overflow collapses to `Unbounded`.
    ///
    /// Deliberately a plain method rather than `std::ops::Add` — the
    /// name doubles as a fold step (`fold(Bound::ZERO, Bound::add)`)
    /// and the saturating-to-`Unbounded` semantics should be visible
    /// at the call site, not hidden behind `+`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, rhs: Bound) -> Bound {
        match (self, rhs) {
            (Bound::Finite(a), Bound::Finite(b)) => {
                a.checked_add(b).map_or(Bound::Unbounded, Bound::Finite)
            }
            _ => Bound::Unbounded,
        }
    }

    /// Checked multiplication: overflow collapses to `Unbounded`.
    /// Note `Finite(0) * Unbounded = Unbounded` — the analyzer never
    /// relies on annihilation, and keeping `Unbounded` absorbing makes
    /// monotonicity trivial.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Bound) -> Bound {
        match (self, rhs) {
            (Bound::Finite(a), Bound::Finite(b)) => {
                a.checked_mul(b).map_or(Bound::Unbounded, Bound::Finite)
            }
            _ => Bound::Unbounded,
        }
    }

    /// Checked exponentiation: overflow collapses to `Unbounded`.
    /// `pow(0)` is `Finite(1)` for any finite base.
    #[must_use]
    pub fn pow(self, exp: u32) -> Bound {
        match self {
            Bound::Finite(a) => a.checked_pow(exp).map_or(Bound::Unbounded, Bound::Finite),
            Bound::Unbounded => {
                if exp == 0 {
                    Bound::ONE
                } else {
                    Bound::Unbounded
                }
            }
        }
    }

    /// The larger of two bounds (`Unbounded` absorbs).
    #[must_use]
    pub fn max(self, rhs: Bound) -> Bound {
        std::cmp::max(self, rhs)
    }

    /// The smaller of two bounds.
    #[must_use]
    pub fn min(self, rhs: Bound) -> Bound {
        std::cmp::min(self, rhs)
    }

    /// Does this bound exceed a finite admission threshold?
    /// `Unbounded` exceeds every threshold.
    pub fn exceeds(&self, threshold: u64) -> bool {
        match self {
            Bound::Finite(n) => *n > threshold,
            Bound::Unbounded => true,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

impl From<u64> for Bound {
    fn from(n: u64) -> Self {
        Bound::Finite(n)
    }
}

impl From<usize> for Bound {
    fn from(n: usize) -> Self {
        Bound::Finite(n as u64)
    }
}

// JSON shape: a bare number, or the string "unbounded" — readable in
// `dexcli explain --format json` and stable in goldens.
impl Serialize for Bound {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Bound::Finite(n) => s.serialize_u64(*n),
            Bound::Unbounded => s.serialize_str("unbounded"),
        }
    }
}

impl<'de> Deserialize<'de> for Bound {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use serde::__private::Content;
        match d.take_content()? {
            Content::U64(n) => Ok(Bound::Finite(n)),
            Content::I64(n) if n >= 0 => Ok(Bound::Finite(n as u64)),
            Content::Str(s) if s == "unbounded" => Ok(Bound::Unbounded),
            other => Err(de::Error::custom(format_args!(
                "expected bound (u64 or \"unbounded\"), got {other:?}"
            ))),
        }
    }
}

/// Aggregate static bounds for one chase run — the quantities the
/// [`Governor`](crate::governor::Governor) meters, bounded up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaseBounds {
    /// Committed (instance-changing) target-chase rounds.
    pub rounds: Bound,
    /// Total firings as counted by `ExchangeResult::firings`: st-tgd
    /// firings + target-tgd firings + egd merges.
    pub firings: Bound,
    /// Tuples in the final target instance (hence also an upper bound
    /// on genuinely-new insertions).
    pub tuples: Bound,
    /// Fresh labeled nulls invented.
    pub nulls: Bound,
    /// Approximate bytes of target tuple data (the governor's
    /// memory-accounting model).
    pub bytes: Bound,
}

impl ChaseBounds {
    /// Bounds that certify nothing.
    pub fn unbounded() -> Self {
        ChaseBounds {
            rounds: Bound::Unbounded,
            firings: Bound::Unbounded,
            tuples: Bound::Unbounded,
            nulls: Bound::Unbounded,
            bytes: Bound::Unbounded,
        }
    }

    /// Are all five bounds finite?
    pub fn all_finite(&self) -> bool {
        self.rounds.is_finite()
            && self.firings.is_finite()
            && self.tuples.is_finite()
            && self.nulls.is_finite()
            && self.bytes.is_finite()
    }

    /// The largest single bound — the headline number `--deny-cost`
    /// compares against (bytes excluded: it is a product of tuples and
    /// row width, so it would dominate artificially).
    pub fn headline(&self) -> Bound {
        self.rounds
            .max(self.firings)
            .max(self.tuples)
            .max(self.nulls)
    }
}

/// Source-instance statistics that parameterize the static bounds.
///
/// The analyzer only needs per-relation cardinalities and a per-value
/// byte estimate. Either measure them from a concrete instance
/// ([`SourceStats::measure`]) or assume a uniform cardinality for every
/// relation ([`SourceStats::uniform`]) to get instance-independent
/// bounds as polynomials evaluated at `n`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceStats {
    /// Per-relation tuple counts. Relations absent from the map fall
    /// back to [`default_card`](Self::default_card).
    pub cards: BTreeMap<Name, u64>,
    /// Cardinality assumed for relations not listed in `cards`.
    pub default_card: u64,
    /// Largest `Value::approx_bytes` over the source (used to bound the
    /// width of derived rows; invented nulls are never wider than a
    /// `Value` slot).
    pub max_value_bytes: u64,
    /// Labeled nulls already present in the measured instance (egd
    /// enforcement can merge these too, so they enter the rounds
    /// bound). Zero for uniform stats.
    pub initial_nulls: u64,
}

impl SourceStats {
    /// Uniform statistics: every relation has `n` tuples, values are
    /// bare slots (no heap payload).
    pub fn uniform(n: u64) -> Self {
        SourceStats {
            cards: BTreeMap::new(),
            default_card: n,
            max_value_bytes: std::mem::size_of::<Value>() as u64,
            initial_nulls: 0,
        }
    }

    /// Measure statistics from a concrete source instance.
    pub fn measure(src: &Instance) -> Self {
        let mut cards = BTreeMap::new();
        let mut max_value_bytes = std::mem::size_of::<Value>() as u64;
        let mut nulls: std::collections::BTreeSet<crate::value::NullId> =
            std::collections::BTreeSet::new();
        for rel in src.relations() {
            cards.insert(rel.name().clone(), rel.len() as u64);
            for t in rel.iter() {
                for v in t.values() {
                    max_value_bytes = max_value_bytes.max(v.approx_bytes() as u64);
                    if let Value::Null(id) = v {
                        nulls.insert(*id);
                    }
                }
            }
        }
        SourceStats {
            cards,
            default_card: 0,
            max_value_bytes,
            initial_nulls: nulls.len() as u64,
        }
    }

    /// Override one relation's cardinality (builder style).
    #[must_use]
    pub fn with_card(mut self, rel: impl Into<Name>, n: u64) -> Self {
        self.cards.insert(rel.into(), n);
        self
    }

    /// The cardinality assumed for `rel`.
    pub fn card(&self, rel: &Name) -> u64 {
        self.cards.get(rel).copied().unwrap_or(self.default_card)
    }

    /// Total source tuples across all listed relations (each unlisted
    /// relation contributes `default_card` only through [`card`](Self::card),
    /// so callers summing over a schema should iterate its relations).
    pub fn total_listed(&self) -> u64 {
        self.cards.values().fold(0u64, |a, n| a.saturating_add(*n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_arithmetic_saturates_to_unbounded() {
        let big = Bound::Finite(u64::MAX);
        assert_eq!(big.add(Bound::ONE), Bound::Unbounded);
        assert_eq!(big.mul(Bound::Finite(2)), Bound::Unbounded);
        assert_eq!(Bound::Finite(1 << 33).pow(2), Bound::Unbounded);
        assert_eq!(Bound::Finite(10).pow(0), Bound::ONE);
        assert_eq!(Bound::Unbounded.pow(0), Bound::ONE);
        assert_eq!(Bound::Unbounded.pow(3), Bound::Unbounded);
    }

    #[test]
    fn bound_ordering_and_threshold() {
        assert!(Bound::Finite(3) < Bound::Finite(4));
        assert!(Bound::Finite(u64::MAX) < Bound::Unbounded);
        assert!(Bound::Unbounded.exceeds(u64::MAX));
        assert!(!Bound::Finite(5).exceeds(5));
        assert!(Bound::Finite(6).exceeds(5));
    }

    #[test]
    fn bound_json_shape() {
        let fin = serde_json::to_string(&Bound::Finite(42)).expect("ser");
        assert_eq!(fin, "42");
        let unb = serde_json::to_string(&Bound::Unbounded).expect("ser");
        assert_eq!(unb, "\"unbounded\"");
        let back: Bound = serde_json::from_str("\"unbounded\"").expect("de");
        assert_eq!(back, Bound::Unbounded);
        let back: Bound = serde_json::from_str("7").expect("de");
        assert_eq!(back, Bound::Finite(7));
    }

    #[test]
    fn source_stats_card_fallback() {
        let s = SourceStats::uniform(10).with_card(Name::new("E"), 3);
        assert_eq!(s.card(&Name::new("E")), 3);
        assert_eq!(s.card(&Name::new("F")), 10);
    }
}
