//! Relation instances: sets of tuples conforming to a relation schema.

use crate::error::RelationalError;
use crate::fd::FdViolation;
use crate::index::{IndexState, Probe};
use crate::name::Name;
use crate::schema::RelSchema;
use crate::tuple::Tuple;
use crate::value::{NullId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relation instance: the schema of the relation plus a *set* of
/// tuples (set semantics, canonical `BTreeSet` order).
///
/// Alongside the tuple set, every relation carries an [`IndexState`]:
/// lazily built hash indexes (attribute position -> value -> tuple
/// ids over a versioned arena) plus the delta log for
/// [`insert_delta`](Relation::insert_delta). The index state is pure
/// cache: it is skipped by serde, ignored by `PartialEq`, kept warm
/// incrementally across inserts, and invalidated by destructive
/// mutations, so observable behavior (iteration order, serialization,
/// equality) is exactly that of the plain tuple set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Relation {
    schema: RelSchema,
    tuples: BTreeSet<Tuple>,
    #[serde(skip)]
    index: IndexState,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty instance of `schema`.
    pub fn empty(schema: RelSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
            index: IndexState::default(),
        }
    }

    /// Build an instance and insert `tuples`, validating each.
    pub fn from_tuples(
        schema: RelSchema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelationalError> {
        let mut r = Relation::empty(schema);
        r.extend_validated(tuples)?;
        Ok(r)
    }

    /// The relation schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &Name {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Validate a tuple against arity and attribute types.
    pub fn validate(&self, t: &Tuple) -> Result<(), RelationalError> {
        if t.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().clone(),
                expected: self.schema.arity(),
                actual: t.arity(),
            });
        }
        for ((attr, ty), v) in self.schema.attrs().iter().zip(t.iter()) {
            if !ty.admits(v) {
                return Err(RelationalError::TypeMismatch {
                    relation: self.name().clone(),
                    attribute: attr.clone(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple (validated). Returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelationalError> {
        self.validate(&t)?;
        let added = self.tuples.insert(t.clone());
        if added {
            self.index.append(&t);
        }
        Ok(added)
    }

    /// Insert a tuple (validated) and, if it is new, record it in the
    /// delta log for a later [`drain_delta`](Relation::drain_delta).
    /// Returns `true` if it was new.
    pub fn insert_delta(&mut self, t: Tuple) -> Result<bool, RelationalError> {
        self.validate(&t)?;
        if self.tuples.contains(&t) {
            return Ok(false);
        }
        self.tuples.insert(t.clone());
        self.index.append(&t);
        self.index.log_delta(t);
        Ok(true)
    }

    /// Bulk insert. The whole batch is validated before anything is
    /// inserted, so on error the relation is unchanged. Returns the
    /// number of tuples that were new.
    pub fn extend_validated(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, RelationalError> {
        let batch: Vec<Tuple> = tuples.into_iter().collect();
        for t in &batch {
            self.validate(t)?;
        }
        let mut added = 0;
        for t in batch {
            if self.tuples.insert(t.clone()) {
                self.index.append(&t);
                added += 1;
            }
        }
        Ok(added)
    }

    /// Bulk insert with delta logging: like
    /// [`extend_validated`](Relation::extend_validated), but every new
    /// tuple is also recorded in the delta log.
    pub fn extend_validated_delta(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, RelationalError> {
        let batch: Vec<Tuple> = tuples.into_iter().collect();
        for t in &batch {
            self.validate(t)?;
        }
        // Fault-injection site for the delta commit: placed after
        // validation and before any insertion, so an injected fault
        // leaves the relation unmodified.
        crate::fail_point!("relation.extend_delta");
        let mut added = 0;
        for t in batch {
            if !self.tuples.contains(&t) {
                self.tuples.insert(t.clone());
                self.index.append(&t);
                self.index.log_delta(t);
                added += 1;
            }
        }
        Ok(added)
    }

    /// Take the tuples inserted through the delta-tracking APIs since
    /// the last drain (in insertion order; duplicates never appear
    /// because only genuinely new tuples are logged).
    pub fn drain_delta(&mut self) -> Vec<Tuple> {
        self.index.take_delta()
    }

    /// Number of undrained delta tuples.
    pub fn delta_len(&self) -> usize {
        self.index.delta_len()
    }

    /// The undrained delta log, without consuming it (insertion order).
    pub fn peek_delta(&self) -> &[Tuple] {
        self.index.peek_delta()
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.tuples.remove(t);
        if removed {
            self.index.bump();
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// The tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        if !self.tuples.is_empty() {
            self.index.bump();
        }
        self.tuples.clear();
    }

    /// Keep only tuples satisfying `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) {
        let before = self.tuples.len();
        self.tuples.retain(|t| pred(t));
        if self.tuples.len() != before {
            self.index.bump();
        }
    }

    /// All tuples whose value at position `pos` equals `value`,
    /// answered from the lazily built hash index for that position.
    /// Results come back in canonical (`BTreeSet`) order.
    pub fn probe(&self, pos: usize, value: &Value) -> Probe {
        self.index.probe(&self.tuples, pos, value)
    }

    /// How many tuples carry `value` at position `pos` (index-backed;
    /// used to order join probes by selectivity).
    pub fn posting_len(&self, pos: usize, value: &Value) -> usize {
        self.index.posting_len(&self.tuples, pos, value)
    }

    /// Cumulative (index builds, index probes) served by this
    /// relation instance.
    pub fn index_stats(&self) -> (u64, u64) {
        self.index.stats()
    }

    /// Named access: the value of attribute `attr` in tuple `t`.
    pub fn value_of<'t>(&self, t: &'t Tuple, attr: &str) -> Option<&'t Value> {
        self.schema.position(attr).and_then(|i| t.get(i))
    }

    /// Collect every null id occurring in the instance.
    pub fn collect_nulls(&self, out: &mut BTreeSet<NullId>) {
        for t in &self.tuples {
            t.collect_nulls(out);
        }
    }

    /// Apply a null substitution to every tuple (tuples may merge).
    pub fn substitute_nulls(&self, subst: &BTreeMap<NullId, Value>) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .map(|t| t.substitute_nulls(subst))
                .collect(),
            index: IndexState::default(),
        }
    }

    /// Check the relation's declared FDs, reporting every violating pair.
    ///
    /// Null semantics: two values agree only if they are identical (a
    /// labeled null agrees with itself). This is the standard semantics
    /// for egd checking over instances with nulls.
    pub fn fd_violations(&self) -> Vec<FdViolation> {
        let mut out = Vec::new();
        let tuples: Vec<&Tuple> = self.tuples.iter().collect();
        for fd in self.schema.fds().iter() {
            let lhs_pos: Vec<usize> = fd
                .lhs()
                .iter()
                .filter_map(|a| self.schema.position(a.as_str()))
                .collect();
            let rhs_pos: Vec<usize> = fd
                .rhs()
                .iter()
                .filter_map(|a| self.schema.position(a.as_str()))
                .collect();
            // Group by LHS projection.
            let mut groups: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
            for t in &tuples {
                groups.entry(t.project(&lhs_pos)).or_default().push(t);
            }
            for group in groups.values() {
                for i in 0..group.len() {
                    for j in (i + 1)..group.len() {
                        if group[i].project(&rhs_pos) != group[j].project(&rhs_pos) {
                            out.push(FdViolation {
                                fd: fd.clone(),
                                tuple_a: group[i].to_string(),
                                tuple_b: group[j].to_string(),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Does the instance satisfy all its declared FDs?
    pub fn satisfies_fds(&self) -> bool {
        self.fd_violations().is_empty()
    }

    /// Replace the schema (used by rename/evolution operators). The new
    /// schema must have the same arity.
    pub fn with_schema(self, schema: RelSchema) -> Result<Relation, RelationalError> {
        if schema.arity() != self.schema.arity() {
            return Err(RelationalError::SchemaMismatch {
                context: format!(
                    "with_schema: arity {} -> {}",
                    self.schema.arity(),
                    schema.arity()
                ),
            });
        }
        Ok(Relation {
            schema,
            tuples: self.tuples,
            index: self.index,
        })
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use crate::schema::AttrType;
    use crate::tuple;

    fn emp_schema() -> RelSchema {
        RelSchema::untyped("Emp", vec!["name"]).unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut r = Relation::empty(emp_schema());
        assert!(r.insert(tuple!["Alice"]).unwrap());
        let err = r.insert(tuple!["Alice", "Bob"]).unwrap_err();
        assert!(matches!(err, RelationalError::ArityMismatch { .. }));
    }

    #[test]
    fn insert_validates_types() {
        let s = RelSchema::new("R", vec![("n", AttrType::Int)]).unwrap();
        let mut r = Relation::empty(s);
        assert!(r.insert(tuple![1i64]).is_ok());
        assert!(matches!(
            r.insert(tuple!["x"]).unwrap_err(),
            RelationalError::TypeMismatch { .. }
        ));
        // Nulls are always admitted.
        assert!(r.insert(Tuple::new(vec![Value::null(0)])).is_ok());
    }

    #[test]
    fn set_semantics_dedupe() {
        let mut r = Relation::empty(emp_schema());
        assert!(r.insert(tuple!["Alice"]).unwrap());
        assert!(!r.insert(tuple!["Alice"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn named_access() {
        let s = RelSchema::untyped("P", vec!["id", "name"]).unwrap();
        let r = Relation::from_tuples(s, vec![tuple![1i64, "Alice"]]).unwrap();
        let t = r.iter().next().unwrap();
        assert_eq!(r.value_of(t, "name"), Some(&Value::str("Alice")));
        assert_eq!(r.value_of(t, "zip"), None);
    }

    #[test]
    fn fd_violation_detection() {
        let s = RelSchema::untyped("P", vec!["id", "name"])
            .unwrap()
            .with_fd(Fd::new(vec!["id"], vec!["name"]))
            .unwrap();
        let mut r = Relation::empty(s);
        r.insert(tuple![1i64, "Alice"]).unwrap();
        r.insert(tuple![1i64, "Bob"]).unwrap();
        r.insert(tuple![2i64, "Carol"]).unwrap();
        let v = r.fd_violations();
        assert_eq!(v.len(), 1);
        assert!(!r.satisfies_fds());
    }

    #[test]
    fn fd_nulls_agree_only_with_themselves() {
        let s = RelSchema::untyped("P", vec!["id", "name"])
            .unwrap()
            .with_fd(Fd::new(vec!["id"], vec!["name"]))
            .unwrap();
        let mut r = Relation::empty(s);
        r.insert(Tuple::new(vec![Value::int(1), Value::null(0)]))
            .unwrap();
        r.insert(Tuple::new(vec![Value::int(1), Value::null(0)]))
            .unwrap(); // same tuple, set-deduped
        assert!(r.satisfies_fds());
        r.insert(Tuple::new(vec![Value::int(1), Value::null(1)]))
            .unwrap();
        assert!(!r.satisfies_fds(), "distinct nulls disagree");
    }

    #[test]
    fn substitution_merges_tuples() {
        let s = emp_schema();
        let mut r = Relation::empty(s);
        r.insert(Tuple::new(vec![Value::null(0)])).unwrap();
        r.insert(Tuple::new(vec![Value::null(1)])).unwrap();
        assert_eq!(r.len(), 2);
        let mut sub = BTreeMap::new();
        sub.insert(NullId(0), Value::str("x"));
        sub.insert(NullId(1), Value::str("x"));
        let r2 = r.substitute_nulls(&sub);
        assert_eq!(r2.len(), 1);
    }

    #[test]
    fn with_schema_checks_arity() {
        let r = Relation::empty(emp_schema());
        let wide = RelSchema::untyped("E2", vec!["a", "b"]).unwrap();
        assert!(r.clone().with_schema(wide).is_err());
        let same = RelSchema::untyped("E2", vec!["a"]).unwrap();
        let r2 = r.with_schema(same).unwrap();
        assert_eq!(r2.name(), "E2");
    }

    #[test]
    fn collect_nulls_over_instance() {
        let mut r = Relation::empty(emp_schema());
        r.insert(Tuple::new(vec![Value::null(3)])).unwrap();
        r.insert(Tuple::new(vec![Value::str("a")])).unwrap();
        let mut s = BTreeSet::new();
        r.collect_nulls(&mut s);
        assert_eq!(s, BTreeSet::from([NullId(3)]));
    }
}
