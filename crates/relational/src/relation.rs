//! Relation instances: sets of tuples conforming to a relation schema.

use crate::columns::ColumnStore;
use crate::error::RelationalError;
use crate::fd::FdViolation;
use crate::index::{IndexState, Probe, TupleId};
use crate::name::Name;
use crate::schema::RelSchema;
use crate::tuple::Tuple;
use crate::value::{NullId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A relation instance: the schema of the relation plus a *set* of
/// tuples (set semantics, canonical lexicographic order).
///
/// Physically the tuples live in a [`ColumnStore`]: a tuple-id arena
/// with one column-major `Vec<Value>` per attribute position. [`Tuple`]
/// stays the value type at the API boundary — [`Relation::iter`]
/// materializes rows in canonical order, inserts take tuples — but hot
/// paths read positions directly by `(tuple_id, col)` via
/// [`Relation::value_at`] and probe the per-position hash indexes for
/// *ids* via [`Relation::probe_ids`], never touching whole rows.
///
/// Alongside the store, every relation carries an [`IndexState`]:
/// lazily built hash indexes (attribute position -> value -> tuple-id
/// postings) plus the delta log backing
/// [`insert_delta`](Relation::insert_delta). The index state is pure
/// cache: it is skipped by serialization, ignored by `PartialEq`, kept
/// warm incrementally across inserts, and invalidated by destructive
/// mutations, so observable behavior (iteration order, serialization,
/// equality) is exactly that of a plain ordered tuple set.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: RelSchema,
    store: ColumnStore,
    index: IndexState,
    /// Reused validation buffer for the bulk-insert paths: the chase
    /// calls `extend_validated_delta` every round, and collecting each
    /// batch into a fresh `Vec` showed up as allocation churn.
    scratch: Vec<Tuple>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.store.len() != other.store.len() {
            return false;
        }
        let a = self.store.ordered_ids();
        let b = other.store.ordered_ids();
        a.iter()
            .zip(b.iter())
            .all(|(&ia, &ib)| self.row_eq_other(ia, other, ib))
    }
}

impl Eq for Relation {}

/// Serialization image of a relation: schema plus tuples in canonical
/// order. Field-compatible with the pre-columnar on-disk format (which
/// derived serialization from `{schema, tuples: BTreeSet<Tuple>}`).
#[derive(Serialize, Deserialize)]
struct RelationWire {
    schema: RelSchema,
    tuples: Vec<Tuple>,
}

impl Serialize for Relation {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        RelationWire {
            schema: self.schema.clone(),
            tuples: self.iter().collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Relation {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = RelationWire::deserialize(deserializer)?;
        // Trust the wire data the way the derived impl did: rebuild the
        // store without re-validating against the schema.
        let mut rel = Relation::empty(wire.schema);
        for t in wire.tuples {
            rel.store.push(&t);
        }
        Ok(rel)
    }
}

impl Relation {
    /// The empty instance of `schema`.
    pub fn empty(schema: RelSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            store: ColumnStore::new(arity),
            index: IndexState::default(),
            scratch: Vec::new(),
        }
    }

    /// Build an instance and insert `tuples`, validating each.
    pub fn from_tuples(
        schema: RelSchema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelationalError> {
        let mut r = Relation::empty(schema);
        r.extend_validated(tuples)?;
        Ok(r)
    }

    /// The relation schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &Name {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Validate a tuple against arity and attribute types.
    pub fn validate(&self, t: &Tuple) -> Result<(), RelationalError> {
        if t.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().clone(),
                expected: self.schema.arity(),
                actual: t.arity(),
            });
        }
        for ((attr, ty), v) in self.schema.attrs().iter().zip(t.iter()) {
            if !ty.admits(v) {
                return Err(RelationalError::TypeMismatch {
                    relation: self.name().clone(),
                    attribute: attr.clone(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple (validated). Returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelationalError> {
        self.validate(&t)?;
        if self.store.push(&t).is_some() {
            self.index.note_append(self.store.version());
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Insert a tuple (validated) and, if it is new, record it in the
    /// delta log for a later [`drain_delta`](Relation::drain_delta).
    /// Returns `true` if it was new.
    pub fn insert_delta(&mut self, t: Tuple) -> Result<bool, RelationalError> {
        self.validate(&t)?;
        match self.store.push(&t) {
            Some(id) => {
                self.index.note_append(self.store.version());
                self.index.log_delta(id);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Bulk insert. The whole batch is validated before anything is
    /// inserted, so on error the relation is unchanged. Returns the
    /// number of tuples that were new.
    pub fn extend_validated(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, RelationalError> {
        self.extend_impl(tuples, false)
    }

    /// Bulk insert with delta logging: like
    /// [`extend_validated`](Relation::extend_validated), but every new
    /// tuple is also recorded in the delta log.
    pub fn extend_validated_delta(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, RelationalError> {
        self.extend_impl(tuples, true)
    }

    fn extend_impl(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        log_delta: bool,
    ) -> Result<usize, RelationalError> {
        // The batch is staged in a scratch buffer reused across calls
        // (the chase bulk-inserts every round; a fresh allocation per
        // round was measurable churn).
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        batch.extend(tuples);
        let put_back = |this: &mut Self, mut batch: Vec<Tuple>| {
            batch.clear();
            this.scratch = batch;
        };
        for t in &batch {
            if let Err(e) = self.validate(t) {
                put_back(self, batch);
                return Err(e);
            }
        }
        if log_delta {
            // Fault-injection site for the delta commit: placed after
            // validation and before any insertion, so an injected fault
            // leaves the relation unmodified.
            if let Some(e) = crate::fail::hit("relation.extend_delta") {
                put_back(self, batch);
                return Err(e);
            }
        }
        let mut added = 0;
        for t in &batch {
            if let Some(id) = self.store.push(t) {
                self.index.note_append(self.store.version());
                if log_delta {
                    self.index.log_delta(id);
                }
                added += 1;
            }
        }
        put_back(self, batch);
        Ok(added)
    }

    /// Take the tuples inserted through the delta-tracking APIs since
    /// the last drain (in insertion order; duplicates never appear
    /// because only genuinely new tuples are logged). Rows are
    /// materialized lazily from the drained ids — see
    /// [`drain_delta_ids`](Relation::drain_delta_ids) for the id form.
    pub fn drain_delta(&mut self) -> Vec<Tuple> {
        self.index
            .take_delta()
            .into_iter()
            .map(|id| self.store.materialize(id))
            .collect()
    }

    /// Take the arena ids logged through the delta-tracking APIs since
    /// the last drain (insertion order). Ids stay valid (readable via
    /// [`value_at`](Relation::value_at) / [`tuple_at`](Relation::tuple_at))
    /// even if the row is later removed.
    pub fn drain_delta_ids(&mut self) -> Vec<TupleId> {
        self.index.take_delta()
    }

    /// Number of undrained delta tuples.
    pub fn delta_len(&self) -> usize {
        self.index.delta_len()
    }

    /// The undrained delta log, without consuming it (insertion order).
    pub fn peek_delta(&self) -> Vec<Tuple> {
        self.index
            .peek_delta()
            .iter()
            .map(|&id| self.store.materialize(id))
            .collect()
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.store.remove(t).is_some()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.store.contains(t)
    }

    /// Iterate over tuples in canonical order (rows are materialized
    /// lazily from the column arena).
    pub fn iter(&self) -> RelIter<'_> {
        RelIter {
            rel: self,
            ids: self.store.ordered_ids(),
            next: 0,
        }
    }

    /// The tuple set, materialized in canonical order.
    pub fn tuples(&self) -> BTreeSet<Tuple> {
        self.iter().collect()
    }

    /// Live tuple ids in canonical order. The `Arc` is a stable
    /// snapshot: later mutations produce a fresh permutation.
    pub fn row_ids(&self) -> Arc<Vec<TupleId>> {
        self.store.ordered_ids()
    }

    /// The value at `(tuple_id, col)` — the columnar hot-path read.
    pub fn value_at(&self, id: TupleId, col: usize) -> &Value {
        self.store.value(id, col)
    }

    /// Materialize the row with id `id`.
    pub fn tuple_at(&self, id: TupleId) -> Tuple {
        self.store.materialize(id)
    }

    /// Deterministic content hash of row `id` (stable across runs and
    /// threads; used to shard parallel matching work).
    pub fn row_hash(&self, id: TupleId) -> u64 {
        self.store.row_hash(id)
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.store.clear();
    }

    /// Keep only tuples satisfying `pred`.
    pub fn retain(&mut self, pred: impl FnMut(&Tuple) -> bool) {
        self.store.retain(pred);
    }

    /// All tuples whose value at position `pos` equals `value`,
    /// answered from the lazily built hash index for that position.
    /// Results come back in canonical order.
    pub fn probe(&self, pos: usize, value: &Value) -> Probe {
        let ids = self.index.probe_ids(&self.store, pos, value);
        Probe::new(
            ids.into_iter()
                .map(|id| self.store.materialize(id))
                .collect(),
        )
    }

    /// Ids of the tuples whose value at position `pos` equals `value`,
    /// in canonical order — the non-materializing form of
    /// [`probe`](Relation::probe) used by the premise matcher.
    pub fn probe_ids(&self, pos: usize, value: &Value) -> Vec<TupleId> {
        self.index.probe_ids(&self.store, pos, value)
    }

    /// How many tuples carry `value` at position `pos` (index-backed;
    /// used to order join probes by selectivity).
    pub fn posting_len(&self, pos: usize, value: &Value) -> usize {
        self.index.posting_len(&self.store, pos, value)
    }

    /// Cumulative (index builds, index probes) served by this
    /// relation instance.
    pub fn index_stats(&self) -> (u64, u64) {
        self.index.stats()
    }

    /// Named access: the value of attribute `attr` in tuple `t`.
    pub fn value_of<'t>(&self, t: &'t Tuple, attr: &str) -> Option<&'t Value> {
        self.schema.position(attr).and_then(|i| t.get(i))
    }

    /// Collect every null id occurring in the instance (column scan,
    /// no row materialization).
    pub fn collect_nulls(&self, out: &mut BTreeSet<NullId>) {
        for id in self.store.live_ids() {
            for col in 0..self.schema.arity() {
                self.store.value(id, col).collect_nulls(out);
            }
        }
    }

    /// Apply a null substitution to every tuple (tuples may merge).
    pub fn substitute_nulls(&self, subst: &BTreeMap<NullId, Value>) -> Relation {
        let mut out = Relation::empty(self.schema.clone());
        for t in self.iter() {
            out.store.push(&t.substitute_nulls(subst));
        }
        out
    }

    /// Check the relation's declared FDs, reporting every violating pair.
    ///
    /// Null semantics: two values agree only if they are identical (a
    /// labeled null agrees with itself). This is the standard semantics
    /// for egd checking over instances with nulls.
    pub fn fd_violations(&self) -> Vec<FdViolation> {
        let mut out = Vec::new();
        let tuples: Vec<Tuple> = self.iter().collect();
        for fd in self.schema.fds().iter() {
            let lhs_pos: Vec<usize> = fd
                .lhs()
                .iter()
                .filter_map(|a| self.schema.position(a.as_str()))
                .collect();
            let rhs_pos: Vec<usize> = fd
                .rhs()
                .iter()
                .filter_map(|a| self.schema.position(a.as_str()))
                .collect();
            // Group by LHS projection.
            let mut groups: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
            for t in &tuples {
                groups.entry(t.project(&lhs_pos)).or_default().push(t);
            }
            for group in groups.values() {
                for i in 0..group.len() {
                    for j in (i + 1)..group.len() {
                        if group[i].project(&rhs_pos) != group[j].project(&rhs_pos) {
                            out.push(FdViolation {
                                fd: fd.clone(),
                                tuple_a: group[i].to_string(),
                                tuple_b: group[j].to_string(),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Does the instance satisfy all its declared FDs?
    pub fn satisfies_fds(&self) -> bool {
        self.fd_violations().is_empty()
    }

    /// Replace the schema (used by rename/evolution operators). The new
    /// schema must have the same arity.
    pub fn with_schema(self, schema: RelSchema) -> Result<Relation, RelationalError> {
        if schema.arity() != self.schema.arity() {
            return Err(RelationalError::SchemaMismatch {
                context: format!(
                    "with_schema: arity {} -> {}",
                    self.schema.arity(),
                    schema.arity()
                ),
            });
        }
        Ok(Relation {
            schema,
            store: self.store,
            index: self.index,
            scratch: self.scratch,
        })
    }

    /// Row-level equality against a row of another relation.
    fn row_eq_other(&self, id: TupleId, other: &Relation, other_id: TupleId) -> bool {
        (0..self.schema.arity())
            .all(|col| self.store.value(id, col) == other.store.value(other_id, col))
    }
}

/// Iterator over a relation's tuples in canonical order, materializing
/// each row from the column arena on demand.
pub struct RelIter<'a> {
    rel: &'a Relation,
    ids: Arc<Vec<TupleId>>,
    next: usize,
}

impl Iterator for RelIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let id = *self.ids.get(self.next)?;
        self.next += 1;
        Some(self.rel.store.materialize(id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.ids.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RelIter<'_> {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in self.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = Tuple;
    type IntoIter = RelIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use crate::schema::AttrType;
    use crate::tuple;

    fn emp_schema() -> RelSchema {
        RelSchema::untyped("Emp", vec!["name"]).unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut r = Relation::empty(emp_schema());
        assert!(r.insert(tuple!["Alice"]).unwrap());
        let err = r.insert(tuple!["Alice", "Bob"]).unwrap_err();
        assert!(matches!(err, RelationalError::ArityMismatch { .. }));
    }

    #[test]
    fn insert_validates_types() {
        let s = RelSchema::new("R", vec![("n", AttrType::Int)]).unwrap();
        let mut r = Relation::empty(s);
        assert!(r.insert(tuple![1i64]).is_ok());
        assert!(matches!(
            r.insert(tuple!["x"]).unwrap_err(),
            RelationalError::TypeMismatch { .. }
        ));
        // Nulls are always admitted.
        assert!(r.insert(Tuple::new(vec![Value::null(0)])).is_ok());
    }

    #[test]
    fn set_semantics_dedupe() {
        let mut r = Relation::empty(emp_schema());
        assert!(r.insert(tuple!["Alice"]).unwrap());
        assert!(!r.insert(tuple!["Alice"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn named_access() {
        let s = RelSchema::untyped("P", vec!["id", "name"]).unwrap();
        let r = Relation::from_tuples(s, vec![tuple![1i64, "Alice"]]).unwrap();
        let t = r.iter().next().unwrap();
        assert_eq!(r.value_of(&t, "name"), Some(&Value::str("Alice")));
        assert_eq!(r.value_of(&t, "zip"), None);
    }

    #[test]
    fn iteration_is_canonical_order() {
        let s = RelSchema::untyped("P", vec!["id"]).unwrap();
        let mut r = Relation::empty(s);
        r.insert(tuple![3i64]).unwrap();
        r.insert(tuple![1i64]).unwrap();
        r.insert(tuple![2i64]).unwrap();
        let got: Vec<Tuple> = r.iter().collect();
        assert_eq!(got, vec![tuple![1i64], tuple![2i64], tuple![3i64]]);
        // Removal keeps the order canonical over the survivors.
        r.remove(&tuple![2i64]);
        let got: Vec<Tuple> = r.iter().collect();
        assert_eq!(got, vec![tuple![1i64], tuple![3i64]]);
    }

    #[test]
    fn columnar_position_reads() {
        let s = RelSchema::untyped("P", vec!["id", "name"]).unwrap();
        let mut r = Relation::empty(s);
        r.insert(tuple![2i64, "Bob"]).unwrap();
        r.insert(tuple![1i64, "Alice"]).unwrap();
        let ids = r.row_ids();
        assert_eq!(r.value_at(ids[0], 1), &Value::str("Alice"));
        assert_eq!(r.value_at(ids[1], 0), &Value::int(2));
        assert_eq!(r.tuple_at(ids[1]), tuple![2i64, "Bob"]);
    }

    #[test]
    fn probe_ids_agree_with_probe() {
        let s = RelSchema::untyped("P", vec!["k", "v"]).unwrap();
        let mut r = Relation::empty(s);
        r.insert(tuple!["x", 2i64]).unwrap();
        r.insert(tuple!["x", 1i64]).unwrap();
        r.insert(tuple!["y", 3i64]).unwrap();
        let via_ids: Vec<Tuple> = r
            .probe_ids(0, &Value::str("x"))
            .into_iter()
            .map(|id| r.tuple_at(id))
            .collect();
        let via_probe: Vec<Tuple> = r.probe(0, &Value::str("x")).iter().cloned().collect();
        assert_eq!(via_ids, via_probe);
        assert_eq!(via_ids, vec![tuple!["x", 1i64], tuple!["x", 2i64]]);
    }

    #[test]
    fn scratch_buffer_survives_failed_batches() {
        let s = RelSchema::new("R", vec![("n", AttrType::Int)]).unwrap();
        let mut r = Relation::empty(s);
        // A failing batch must leave the relation unchanged…
        assert!(r
            .extend_validated(vec![tuple![1i64], tuple!["oops"]])
            .is_err());
        assert!(r.is_empty());
        // …and the scratch buffer must still work for later batches.
        assert_eq!(
            r.extend_validated(vec![tuple![1i64], tuple![2i64]])
                .unwrap(),
            2
        );
        assert_eq!(r.extend_validated_delta(vec![tuple![3i64]]).unwrap(), 1);
        assert_eq!(r.drain_delta(), vec![tuple![3i64]]);
    }

    #[test]
    fn delta_ids_materialize_lazily() {
        let mut r = Relation::empty(emp_schema());
        r.insert_delta(tuple!["Alice"]).unwrap();
        r.insert_delta(tuple!["Bob"]).unwrap();
        assert_eq!(r.delta_len(), 2);
        assert_eq!(r.peek_delta(), vec![tuple!["Alice"], tuple!["Bob"]]);
        let ids = r.drain_delta_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(r.tuple_at(ids[0]), tuple!["Alice"]);
        assert_eq!(r.delta_len(), 0);
    }

    #[test]
    fn fd_violation_detection() {
        let s = RelSchema::untyped("P", vec!["id", "name"])
            .unwrap()
            .with_fd(Fd::new(vec!["id"], vec!["name"]))
            .unwrap();
        let mut r = Relation::empty(s);
        r.insert(tuple![1i64, "Alice"]).unwrap();
        r.insert(tuple![1i64, "Bob"]).unwrap();
        r.insert(tuple![2i64, "Carol"]).unwrap();
        let v = r.fd_violations();
        assert_eq!(v.len(), 1);
        assert!(!r.satisfies_fds());
    }

    #[test]
    fn fd_nulls_agree_only_with_themselves() {
        let s = RelSchema::untyped("P", vec!["id", "name"])
            .unwrap()
            .with_fd(Fd::new(vec!["id"], vec!["name"]))
            .unwrap();
        let mut r = Relation::empty(s);
        r.insert(Tuple::new(vec![Value::int(1), Value::null(0)]))
            .unwrap();
        r.insert(Tuple::new(vec![Value::int(1), Value::null(0)]))
            .unwrap(); // same tuple, set-deduped
        assert!(r.satisfies_fds());
        r.insert(Tuple::new(vec![Value::int(1), Value::null(1)]))
            .unwrap();
        assert!(!r.satisfies_fds(), "distinct nulls disagree");
    }

    #[test]
    fn substitution_merges_tuples() {
        let s = emp_schema();
        let mut r = Relation::empty(s);
        r.insert(Tuple::new(vec![Value::null(0)])).unwrap();
        r.insert(Tuple::new(vec![Value::null(1)])).unwrap();
        assert_eq!(r.len(), 2);
        let mut sub = BTreeMap::new();
        sub.insert(NullId(0), Value::str("x"));
        sub.insert(NullId(1), Value::str("x"));
        let r2 = r.substitute_nulls(&sub);
        assert_eq!(r2.len(), 1);
    }

    #[test]
    fn with_schema_checks_arity() {
        let r = Relation::empty(emp_schema());
        let wide = RelSchema::untyped("E2", vec!["a", "b"]).unwrap();
        assert!(r.clone().with_schema(wide).is_err());
        let same = RelSchema::untyped("E2", vec!["a"]).unwrap();
        let r2 = r.with_schema(same).unwrap();
        assert_eq!(r2.name(), "E2");
    }

    #[test]
    fn collect_nulls_over_instance() {
        let mut r = Relation::empty(emp_schema());
        r.insert(Tuple::new(vec![Value::null(3)])).unwrap();
        r.insert(Tuple::new(vec![Value::str("a")])).unwrap();
        let mut s = BTreeSet::new();
        r.collect_nulls(&mut s);
        assert_eq!(s, BTreeSet::from([NullId(3)]));
    }

    #[test]
    fn serde_wire_format_is_schema_plus_tuples() {
        let s = RelSchema::untyped("P", vec!["id"]).unwrap();
        let mut r = Relation::empty(s);
        r.insert(tuple![2i64]).unwrap();
        r.insert(tuple![1i64]).unwrap();
        let js = serde_json::to_string(&r).unwrap();
        assert!(
            js.contains("\"tuples\""),
            "wire keeps the tuples field: {js}"
        );
        let back: Relation = serde_json::from_str(&js).unwrap();
        assert_eq!(back, r);
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            vec![tuple![1i64], tuple![2i64]]
        );
    }
}
