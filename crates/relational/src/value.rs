//! Values: constants, labeled nulls, and Skolem terms.
//!
//! Data exchange distinguishes *constants* (ordinary data values) from
//! *labeled nulls* — placeholders invented by the chase for existentially
//! quantified positions (the `⊥₁`, `⊥₂` of the paper's Example 1). A
//! homomorphism may map a null to anything but must fix constants, which
//! is what makes the null-filled solution `J*` the *most general* one.
//!
//! Skolem terms (`f(a, b)`) appear when second-order tgds are chased:
//! composition of mappings (the paper's Example 2) requires existentials
//! to be resolved by *functions* of the source values rather than by
//! independent fresh nulls.

use crate::name::Name;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordinary data constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Constant {
    /// Boolean constant.
    Bool(bool),
    /// 64-bit integer constant.
    Int(i64),
    /// String constant.
    Str(String),
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}
impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::Str(s.to_owned())
    }
}
impl From<String> for Constant {
    fn from(s: String) -> Self {
        Constant::Str(s)
    }
}
impl From<bool> for Constant {
    fn from(b: bool) -> Self {
        Constant::Bool(b)
    }
}

/// Identifier of a labeled null. Two nulls are *the same unknown value*
/// iff their ids are equal.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug, Default,
)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// A value occurring in a tuple: a constant, a labeled null, or a Skolem
/// term over values.
///
/// Ordering places constants before nulls before Skolem terms so that
/// canonical instance printouts lead with ground data.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A ground constant.
    Const(Constant),
    /// A labeled null, invented for an existential position.
    Null(NullId),
    /// A Skolem term `f(v₁, …, vₙ)` produced by SO-tgd chasing.
    Skolem(Name, Vec<Value>),
}

impl Value {
    /// Integer constant shorthand.
    pub fn int(i: i64) -> Self {
        Value::Const(Constant::Int(i))
    }

    /// String constant shorthand.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Const(Constant::Str(s.into()))
    }

    /// Boolean constant shorthand.
    pub fn bool(b: bool) -> Self {
        Value::Const(Constant::Bool(b))
    }

    /// Labeled-null shorthand.
    pub fn null(id: u64) -> Self {
        Value::Null(NullId(id))
    }

    /// Skolem-term shorthand.
    pub fn skolem(f: impl Into<Name>, args: Vec<Value>) -> Self {
        Value::Skolem(f.into(), args)
    }

    /// Is this a ground constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this a labeled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Is this a Skolem term (at the top level)?
    pub fn is_skolem(&self) -> bool {
        matches!(self, Value::Skolem(..))
    }

    /// Does this value contain no nulls and no Skolem terms anywhere?
    pub fn is_ground(&self) -> bool {
        match self {
            Value::Const(_) => true,
            Value::Null(_) => false,
            Value::Skolem(_, args) => args.iter().all(Value::is_ground),
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The integer inside, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Const(Constant::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if this is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Const(Constant::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Collect every [`NullId`] occurring in this value (including inside
    /// Skolem arguments) into `out`.
    pub fn collect_nulls(&self, out: &mut std::collections::BTreeSet<NullId>) {
        match self {
            Value::Const(_) => {}
            Value::Null(n) => {
                out.insert(*n);
            }
            Value::Skolem(_, args) => {
                for a in args {
                    a.collect_nulls(out);
                }
            }
        }
    }

    /// Approximate heap footprint in bytes: the enum slot plus owned
    /// string data and Skolem arguments. Used for the governor's
    /// approximate memory budget, not for exact allocator accounting.
    pub fn approx_bytes(&self) -> usize {
        let slot = std::mem::size_of::<Value>();
        match self {
            Value::Const(Constant::Str(s)) => slot + s.len(),
            Value::Const(_) | Value::Null(_) => slot,
            Value::Skolem(f, args) => {
                slot + f.as_str().len() + args.iter().map(Value::approx_bytes).sum::<usize>()
            }
        }
    }

    /// Replace nulls according to `subst`, leaving unmapped nulls alone.
    pub fn substitute_nulls(&self, subst: &std::collections::BTreeMap<NullId, Value>) -> Value {
        match self {
            Value::Const(_) => self.clone(),
            Value::Null(n) => subst.get(n).cloned().unwrap_or_else(|| self.clone()),
            Value::Skolem(f, args) => Value::Skolem(
                f.clone(),
                args.iter().map(|a| a.substitute_nulls(subst)).collect(),
            ),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
            Value::Skolem(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c:?}"),
            other => write!(f, "{other}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Const(Constant::Str(s))
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bool(b)
    }
}
impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

/// A generator of fresh labeled nulls.
///
/// The chase, the lens `put` policies, and test harnesses all need fresh
/// nulls; threading one generator through guarantees global freshness
/// within an exchange run.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct NullGen {
    next: u64,
}

impl NullGen {
    /// A generator starting at `⊥0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose first null will be `⊥start` — used to resume
    /// after an instance that already contains nulls.
    pub fn starting_at(start: u64) -> Self {
        NullGen { next: start }
    }

    /// A generator guaranteed to be fresh for every null in `values`.
    pub fn fresh_for<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut nulls = std::collections::BTreeSet::new();
        for v in values {
            v.collect_nulls(&mut nulls);
        }
        let start = nulls.iter().next_back().map(|n| n.0 + 1).unwrap_or(0);
        NullGen::starting_at(start)
    }

    /// The id the next [`fresh_id`](NullGen::fresh_id) call will
    /// return, without consuming it. Lets a checkpoint record the
    /// generator's position so a resumed run allocates the exact same
    /// null ids as the uninterrupted one.
    pub fn peek_next(&self) -> u64 {
        self.next
    }

    /// Produce the next fresh null id.
    pub fn fresh_id(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// Produce the next fresh null as a [`Value`].
    pub fn fresh(&mut self) -> Value {
        Value::Null(self.fresh_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn constants_order_before_nulls_before_skolems() {
        let c = Value::int(99);
        let n = Value::null(0);
        let s = Value::skolem("f", vec![Value::int(1)]);
        assert!(c < n);
        assert!(n < s);
    }

    #[test]
    fn groundness() {
        assert!(Value::str("Alice").is_ground());
        assert!(!Value::null(3).is_ground());
        assert!(Value::skolem("f", vec![Value::int(1)]).is_ground());
        assert!(!Value::skolem("f", vec![Value::null(1)]).is_ground());
    }

    #[test]
    fn collect_nulls_descends_into_skolems() {
        let v = Value::skolem(
            "f",
            vec![Value::null(7), Value::skolem("g", vec![Value::null(2)])],
        );
        let mut out = BTreeSet::new();
        v.collect_nulls(&mut out);
        assert_eq!(out, BTreeSet::from([NullId(2), NullId(7)]));
    }

    #[test]
    fn substitution_is_capture_free_and_partial() {
        let v = Value::skolem("f", vec![Value::null(1), Value::null(2)]);
        let mut s = BTreeMap::new();
        s.insert(NullId(1), Value::str("Alice"));
        let w = v.substitute_nulls(&s);
        assert_eq!(
            w,
            Value::skolem("f", vec![Value::str("Alice"), Value::null(2)])
        );
    }

    #[test]
    fn nullgen_freshness_respects_existing_nulls() {
        let existing = [Value::null(4), Value::skolem("f", vec![Value::null(9)])];
        let mut g = NullGen::fresh_for(existing.iter());
        assert_eq!(g.fresh_id(), NullId(10));
        assert_eq!(g.fresh_id(), NullId(11));
    }

    #[test]
    fn nullgen_from_empty_starts_at_zero() {
        let mut g = NullGen::fresh_for(std::iter::empty());
        assert_eq!(g.fresh(), Value::null(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::null(2).to_string(), "⊥2");
        assert_eq!(
            Value::skolem("f", vec![Value::str("a"), Value::null(1)]).to_string(),
            "f(a, ⊥1)"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(true), Value::bool(true));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::skolem("f", vec![Value::int(1), Value::null(2)]);
        let js = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&js).unwrap();
        assert_eq!(back, v);
    }
}
