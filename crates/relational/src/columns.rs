//! Column-major tuple storage.
//!
//! A [`ColumnStore`] is the physical layer behind
//! [`Relation`](crate::Relation): a tuple-id arena laid out as one
//! `Vec<Value>` per attribute position, plus the bookkeeping that keeps
//! set semantics and canonical order observable at the typed API:
//!
//! * **Arena ids are stable.** Rows are appended and never moved;
//!   removal tombstones a row (its values stay readable), so a
//!   [`TupleId`] handed out by an insert, an index posting, or a delta
//!   log stays valid for the lifetime of the store. This is what lets
//!   hot paths (index probes, premise matching, codecs) read positions
//!   by `(tuple_id, col)` without materializing rows, and lets delta
//!   logs hold ids and materialize lazily.
//! * **Set semantics** are enforced by a content-hash dedup map (row
//!   hash → candidate ids, collisions resolved by column comparison).
//!   Row hashes are computed with fixed-key [`DefaultHasher`]s, so
//!   they are deterministic across runs — the same hashes double as
//!   the shard key for parallel premise matching.
//! * **Canonical order** (the old `BTreeSet` iteration order) is a
//!   cached permutation: [`ColumnStore::ordered_ids`] sorts the live
//!   ids lexicographically by row content and caches the result behind
//!   an `RwLock` until the next mutation. Full scans are off the
//!   indexed hot path, so sorting on demand costs less than keeping a
//!   B-tree balanced on every insert of a 10⁶-row chase.
//!
//! Everything observable — iteration order, equality, serialization —
//! is defined over the *live, canonically ordered* rows; the arena
//! layout (insertion order, tombstones) is private physical detail.

use crate::index::TupleId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

/// Deterministic content hash of a row, shared by the dedup map and
/// the parallel matcher's shard partitioning. `DefaultHasher::new()`
/// uses fixed keys, so the value is stable across runs and threads.
pub fn hash_values<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Cached canonical permutation of the live ids (version 0 = stale).
#[derive(Default)]
struct OrderCache {
    version: u64,
    ids: Arc<Vec<TupleId>>,
}

/// Column-major tuple arena with tombstoned removal and hash dedup.
pub struct ColumnStore {
    arity: usize,
    /// One column per attribute position; all columns have `rows`
    /// entries (dead rows keep their values).
    columns: Vec<Vec<Value>>,
    /// Total arena rows, including tombstones (needed when `arity == 0`).
    rows: usize,
    /// Liveness per arena row.
    live: Vec<bool>,
    /// Number of tombstoned rows.
    dead: usize,
    /// Deterministic content hash per arena row.
    hashes: Vec<u64>,
    /// Row hash → live ids with that hash (collisions compared by value).
    dedup: HashMap<u64, Vec<TupleId>>,
    /// Bumped on every mutation of the live set. Starts at 1 so the
    /// default `OrderCache` (and index caches keyed on this version)
    /// are always stale.
    version: u64,
    order: RwLock<OrderCache>,
}

impl ColumnStore {
    /// An empty store for rows of width `arity`.
    pub fn new(arity: usize) -> Self {
        ColumnStore {
            arity,
            columns: (0..arity).map(|_| Vec::new()).collect(),
            rows: 0,
            live: Vec::new(),
            dead: 0,
            hashes: Vec::new(),
            dedup: HashMap::new(),
            version: 1,
            order: RwLock::new(OrderCache::default()),
        }
    }

    /// Row width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows - self.dead
    }

    /// Are there no live rows?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total arena rows including tombstones (the exclusive upper bound
    /// of valid [`TupleId`]s).
    pub fn arena_len(&self) -> usize {
        self.rows
    }

    /// Version of the live set; bumped by every mutation. Index caches
    /// key their freshness on this.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Is arena row `id` live (not tombstoned)?
    pub fn is_live(&self, id: TupleId) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// The value at `(id, col)` — the columnar hot-path read. Valid for
    /// tombstoned rows too (delta logs materialize lazily).
    pub fn value(&self, id: TupleId, col: usize) -> &Value {
        &self.columns[col][id as usize]
    }

    /// Deterministic content hash of arena row `id`.
    pub fn row_hash(&self, id: TupleId) -> u64 {
        self.hashes[id as usize]
    }

    /// Materialize arena row `id` as an owned [`Tuple`].
    pub fn materialize(&self, id: TupleId) -> Tuple {
        self.columns
            .iter()
            .map(|c| c[id as usize].clone())
            .collect()
    }

    /// Lexicographic comparison of two arena rows by column values.
    pub fn row_cmp(&self, a: TupleId, b: TupleId) -> Ordering {
        for col in &self.columns {
            match col[a as usize].cmp(&col[b as usize]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Does arena row `id` hold exactly the values of `t`?
    pub fn row_eq_tuple(&self, id: TupleId, t: &Tuple) -> bool {
        self.arity == t.arity()
            && self
                .columns
                .iter()
                .zip(t.iter())
                .all(|(col, v)| &col[id as usize] == v)
    }

    /// The live row holding exactly the values of `t`, if any.
    pub fn find(&self, t: &Tuple) -> Option<TupleId> {
        if t.arity() != self.arity {
            return None;
        }
        let h = hash_values(t.iter());
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&id| self.row_eq_tuple(id, t))
    }

    /// Membership test over live rows.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.find(t).is_some()
    }

    /// Insert `t` if no live row equals it. Returns the new row's id,
    /// or `None` if it was already present (set semantics).
    pub fn push(&mut self, t: &Tuple) -> Option<TupleId> {
        debug_assert_eq!(t.arity(), self.arity);
        let h = hash_values(t.iter());
        if let Some(ids) = self.dedup.get(&h) {
            if ids.iter().any(|&id| self.row_eq_tuple(id, t)) {
                return None;
            }
        }
        let id = self.rows as TupleId;
        for (col, v) in self.columns.iter_mut().zip(t.iter()) {
            col.push(v.clone());
        }
        self.rows += 1;
        self.live.push(true);
        self.hashes.push(h);
        self.dedup.entry(h).or_default().push(id);
        self.version += 1;
        Some(id)
    }

    /// Tombstone the live row equal to `t`. Returns its id if present.
    /// The row's values stay readable; its id is never reused.
    pub fn remove(&mut self, t: &Tuple) -> Option<TupleId> {
        let id = self.find(t)?;
        self.tombstone(id);
        Some(id)
    }

    /// Tombstone live row `id` (no-op on dead rows).
    pub fn tombstone(&mut self, id: TupleId) {
        if !self.is_live(id) {
            return;
        }
        self.live[id as usize] = false;
        self.dead += 1;
        let h = self.hashes[id as usize];
        if let Some(ids) = self.dedup.get_mut(&h) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.dedup.remove(&h);
            }
        }
        self.version += 1;
    }

    /// Tombstone every live row failing `pred` (which sees the
    /// materialized row). Returns how many rows were removed.
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) -> usize {
        let mut removed = 0;
        for id in 0..self.rows as TupleId {
            if self.is_live(id) && !pred(&self.materialize(id)) {
                self.tombstone(id);
                removed += 1;
            }
        }
        removed
    }

    /// Drop all rows (arena included — ids from before `clear` are
    /// invalid afterwards).
    pub fn clear(&mut self) {
        for col in &mut self.columns {
            col.clear();
        }
        self.rows = 0;
        self.live.clear();
        self.dead = 0;
        self.hashes.clear();
        self.dedup.clear();
        self.version += 1;
    }

    /// Live ids in arena (insertion) order.
    pub fn live_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.rows as TupleId).filter(|&id| self.is_live(id))
    }

    /// Live ids in canonical (lexicographic row) order — the old
    /// `BTreeSet` iteration order. Cached until the next mutation; the
    /// `Arc` lets iterators and worker threads hold the permutation
    /// without keeping a lock.
    pub fn ordered_ids(&self) -> Arc<Vec<TupleId>> {
        {
            let cache = self.order.read().unwrap_or_else(|p| p.into_inner());
            if cache.version == self.version {
                return Arc::clone(&cache.ids);
            }
        }
        let mut cache = self.order.write().unwrap_or_else(|p| p.into_inner());
        if cache.version != self.version {
            let mut ids: Vec<TupleId> = self.live_ids().collect();
            ids.sort_unstable_by(|&a, &b| self.row_cmp(a, b));
            cache.ids = Arc::new(ids);
            cache.version = self.version;
        }
        Arc::clone(&cache.ids)
    }

    /// Sort `ids` in place into canonical row order (used by index
    /// probes to restore `BTreeSet`-equivalent enumeration order).
    pub fn sort_canonical(&self, ids: &mut [TupleId]) {
        ids.sort_unstable_by(|&a, &b| self.row_cmp(a, b));
    }
}

impl Clone for ColumnStore {
    fn clone(&self) -> Self {
        ColumnStore {
            arity: self.arity,
            columns: self.columns.clone(),
            rows: self.rows,
            live: self.live.clone(),
            dead: self.dead,
            hashes: self.hashes.clone(),
            dedup: self.dedup.clone(),
            version: self.version,
            order: RwLock::new(OrderCache::default()),
        }
    }
}

impl std::fmt::Debug for ColumnStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnStore")
            .field("arity", &self.arity)
            .field("rows", &self.rows)
            .field("dead", &self.dead)
            .field("version", &self.version)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn push_dedupes_and_orders() {
        let mut s = ColumnStore::new(2);
        assert_eq!(s.push(&tuple!["b", 2i64]), Some(0));
        assert_eq!(s.push(&tuple!["a", 1i64]), Some(1));
        assert_eq!(s.push(&tuple!["b", 2i64]), None, "set semantics");
        assert_eq!(s.len(), 2);
        let ids = s.ordered_ids();
        assert_eq!(&*ids, &[1, 0], "canonical order sorts (a,1) first");
        assert_eq!(s.materialize(1), tuple!["a", 1i64]);
        assert_eq!(s.value(0, 0), &Value::str("b"));
    }

    #[test]
    fn tombstone_keeps_values_readable() {
        let mut s = ColumnStore::new(1);
        let id = s.push(&tuple!["x"]).unwrap();
        assert!(s.contains(&tuple!["x"]));
        s.remove(&tuple!["x"]);
        assert!(!s.contains(&tuple!["x"]), "dead rows leave the live set");
        assert_eq!(s.len(), 0);
        assert_eq!(s.materialize(id), tuple!["x"], "values stay readable");
        // Re-insert gets a fresh id; the old one stays dead.
        let id2 = s.push(&tuple!["x"]).unwrap();
        assert_ne!(id, id2);
        assert!(s.is_live(id2) && !s.is_live(id));
    }

    #[test]
    fn order_cache_tracks_mutations() {
        let mut s = ColumnStore::new(1);
        s.push(&tuple!["b"]);
        assert_eq!(s.ordered_ids().len(), 1);
        s.push(&tuple!["a"]);
        assert_eq!(&*s.ordered_ids(), &[1, 0], "cache refreshed after push");
        s.remove(&tuple!["a"]);
        assert_eq!(&*s.ordered_ids(), &[0], "cache refreshed after remove");
    }

    #[test]
    fn row_hash_is_content_based() {
        let mut s = ColumnStore::new(2);
        let a = s.push(&tuple!["x", 1i64]).unwrap();
        assert_eq!(s.row_hash(a), hash_values(tuple!["x", 1i64].iter()));
        let b = s.push(&tuple!["x", 2i64]).unwrap();
        assert_ne!(s.row_hash(a), s.row_hash(b));
    }

    #[test]
    fn retain_tombstones_by_predicate() {
        let mut s = ColumnStore::new(1);
        s.push(&tuple![1i64]);
        s.push(&tuple![2i64]);
        s.push(&tuple![3i64]);
        let removed = s.retain(|t| t[0] != Value::int(2));
        assert_eq!(removed, 1);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&tuple![2i64]));
    }
}
