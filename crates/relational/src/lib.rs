//! # dex-relational — the relational substrate
//!
//! This crate implements the typed relational model that every other layer
//! of `dex` builds on: constants and **labeled nulls** (the paper's `⊥₁`,
//! `⊥₂` in Example 1), Skolem terms (needed by SO-tgd composition), typed
//! schemas, relation and database instances with set semantics,
//! functional dependencies with closure/key reasoning, homomorphisms
//! between instances (the yardstick by which data exchange ranks
//! solutions), a scalar predicate language, and a full relational-algebra
//! evaluator.
//!
//! Design notes:
//! * Every observable collection is canonically ordered: schemas live in
//!   `BTreeMap`s, and relations — physically column-major tuple arenas
//!   (see [`columns`]) — iterate, print, serialize, and compare in
//!   lexicographic row order, so equality of instances is semantic set
//!   equality and printed output is deterministic.
//! * Names are interned behind [`Name`] (`Arc<str>`) — cloning a schema or
//!   a tuple never re-allocates attribute/relation names.
//! * Instances validate arity and (optionally) attribute types on insert;
//!   constraint checking (FDs, keys) is explicit and returns structured
//!   violations rather than panicking.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod algebra;
pub mod budget_args;
pub mod columns;
pub mod cost;
pub mod error;
pub mod expr;
pub mod fail;
pub mod fd;
pub mod governor;
pub mod homomorphism;
pub mod index;
pub mod instance;
pub mod name;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use budget_args::BudgetArgs;
pub use columns::{hash_values, ColumnStore};
pub use cost::{Bound, ChaseBounds, SourceStats};
pub use error::RelationalError;
pub use expr::{ArithOp, BinCmp, Expr};
pub use fd::{Fd, FdSet, FdViolation};
pub use governor::{Budget, CancelToken, ExhaustionReport, Governor, TripReason};
pub use homomorphism::{
    find_homomorphism, homomorphically_equivalent, is_homomorphic_to, Homomorphism,
};
pub use index::{Probe, TupleId, TupleIndex};
pub use instance::Instance;
pub use name::Name;
pub use relation::{RelIter, Relation};
pub use schema::{AttrType, RelSchema, Schema};
pub use tuple::Tuple;
pub use value::{Constant, NullGen, NullId, Value};
