//! Database instances: one relation instance per relation of a schema.

use crate::error::RelationalError;
use crate::fd::FdViolation;
use crate::name::Name;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{Constant, NullGen, NullId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database instance over a [`Schema`].
///
/// ```
/// use dex_relational::{tuple, Instance, RelSchema, Schema};
///
/// let schema = Schema::with_relations(vec![
///     RelSchema::untyped("Emp", vec!["name"]).unwrap(),
/// ]).unwrap();
/// let mut db = Instance::empty(schema);
/// db.insert("Emp", tuple!["Alice"]).unwrap();
/// assert!(db.contains("Emp", &tuple!["Alice"]));
/// assert_eq!(db.fact_count(), 1);
/// assert!(db.is_ground()); // no labeled nulls anywhere
/// ```
///
/// Every relation of the schema is always present (possibly empty), so
/// iteration order and printing are schema-determined and deterministic.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Instance {
    schema: Schema,
    relations: BTreeMap<Name, Relation>,
}

impl Instance {
    /// The empty instance of `schema`.
    pub fn empty(schema: Schema) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name().clone(), Relation::empty(r.clone())))
            .collect();
        Instance { schema, relations }
    }

    /// Build an instance and add the given facts.
    ///
    /// `facts` pairs a relation name with the tuples to insert, e.g.
    /// `[("Emp", vec![tuple!["Alice"], tuple!["Bob"]])]`.
    pub fn with_facts(
        schema: Schema,
        facts: Vec<(&str, Vec<Tuple>)>,
    ) -> Result<Self, RelationalError> {
        let mut inst = Instance::empty(schema);
        for (rel, tuples) in facts {
            inst.relations
                .get_mut(rel)
                .ok_or_else(|| RelationalError::UnknownRelation(Name::new(rel)))?
                .extend_validated(tuples)?;
        }
        Ok(inst)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The instance of relation `name`.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Like [`Instance::relation`] but returns a structured error.
    pub fn expect_relation(&self, name: &str) -> Result<&Relation, RelationalError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(Name::new(name)))
    }

    /// Mutable access to a relation instance.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Iterate over relation instances in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        self.relations.values()
    }

    /// Insert a fact into relation `rel`.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool, RelationalError> {
        self.relations
            .get_mut(rel)
            .ok_or_else(|| RelationalError::UnknownRelation(Name::new(rel)))?
            .insert(t)
    }

    /// Insert a fact with delta logging (see
    /// [`Relation::insert_delta`]). Returns `true` if it was new.
    pub fn insert_delta(&mut self, rel: &str, t: Tuple) -> Result<bool, RelationalError> {
        self.relations
            .get_mut(rel)
            .ok_or_else(|| RelationalError::UnknownRelation(Name::new(rel)))?
            .insert_delta(t)
    }

    /// Drain every relation's delta log, returning the relations that
    /// had pending deltas (in name order) with their new tuples.
    pub fn drain_deltas(&mut self) -> Vec<(Name, Vec<Tuple>)> {
        self.relations
            .iter_mut()
            .filter(|(_, r)| r.delta_len() > 0)
            .map(|(n, r)| (n.clone(), r.drain_delta()))
            .collect()
    }

    /// Copy every relation's pending delta log without draining it —
    /// the relations that have pending deltas (in name order) with
    /// their new tuples. Used by chase checkpointing to hand the
    /// round's insertions to a WAL while leaving the semi-naive
    /// bookkeeping untouched.
    pub fn peek_deltas(&self) -> Vec<(Name, Vec<Tuple>)> {
        self.relations
            .iter()
            .filter(|(_, r)| r.delta_len() > 0)
            .map(|(n, r)| (n.clone(), r.peek_delta()))
            .collect()
    }

    /// Total number of undrained delta tuples across all relations.
    pub fn delta_len(&self) -> usize {
        self.relations.values().map(Relation::delta_len).sum()
    }

    /// Cumulative (index builds, index probes) summed over all
    /// relation instances.
    pub fn index_stats(&self) -> (u64, u64) {
        self.relations
            .values()
            .map(Relation::index_stats)
            .fold((0, 0), |(b, p), (rb, rp)| (b + rb, p + rp))
    }

    /// Remove a fact; `true` if it was present.
    pub fn remove(&mut self, rel: &str, t: &Tuple) -> Result<bool, RelationalError> {
        Ok(self
            .relations
            .get_mut(rel)
            .ok_or_else(|| RelationalError::UnknownRelation(Name::new(rel)))?
            .remove(t))
    }

    /// Membership test for a fact.
    pub fn contains(&self, rel: &str, t: &Tuple) -> bool {
        self.relations.get(rel).is_some_and(|r| r.contains(t))
    }

    /// Total number of facts across all relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Is the instance entirely empty?
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Relation::is_empty)
    }

    /// Iterate over all facts as `(relation, tuple)` pairs. Tuples are
    /// materialized lazily from each relation's column arena.
    pub fn facts(&self) -> impl Iterator<Item = (&Name, Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|(n, r)| r.iter().map(move |t| (n, t)))
    }

    /// Every null id occurring anywhere in the instance.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        let mut out = BTreeSet::new();
        for r in self.relations.values() {
            r.collect_nulls(&mut out);
        }
        out
    }

    /// Is the instance ground (no nulls, no Skolem terms)?
    pub fn is_ground(&self) -> bool {
        self.facts().all(|(_, t)| t.is_ground())
    }

    /// Every constant occurring in the instance (the active domain's
    /// ground part).
    pub fn constants(&self) -> BTreeSet<Constant> {
        fn visit(v: &Value, out: &mut BTreeSet<Constant>) {
            match v {
                Value::Const(c) => {
                    out.insert(c.clone());
                }
                Value::Null(_) => {}
                Value::Skolem(_, args) => args.iter().for_each(|a| visit(a, out)),
            }
        }
        let mut out = BTreeSet::new();
        for (_, t) in self.facts() {
            for v in t.iter() {
                visit(v, &mut out);
            }
        }
        out
    }

    /// A null generator fresh for this instance.
    pub fn null_gen(&self) -> NullGen {
        let start = self
            .nulls()
            .iter()
            .next_back()
            .map(|n| n.0 + 1)
            .unwrap_or(0);
        NullGen::starting_at(start)
    }

    /// Apply a null substitution across the whole instance.
    pub fn substitute_nulls(&self, subst: &BTreeMap<NullId, Value>) -> Instance {
        Instance {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.substitute_nulls(subst)))
                .collect(),
        }
    }

    /// All FD violations across all relations.
    pub fn fd_violations(&self) -> Vec<(Name, FdViolation)> {
        self.relations
            .iter()
            .flat_map(|(n, r)| r.fd_violations().into_iter().map(move |v| (n.clone(), v)))
            .collect()
    }

    /// Does every relation satisfy its FDs?
    pub fn satisfies_fds(&self) -> bool {
        self.relations.values().all(Relation::satisfies_fds)
    }

    /// Is `self` a sub-instance of `other` (every fact of `self` in
    /// `other`)? Relations missing from `other` count as empty.
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.facts().all(|(n, t)| other.contains(n.as_str(), &t))
    }

    /// Union of two instances over the same schema.
    pub fn union(&self, other: &Instance) -> Result<Instance, RelationalError> {
        if self.schema != other.schema {
            return Err(RelationalError::SchemaMismatch {
                context: "instance union over different schemas".into(),
            });
        }
        let mut out = self.clone();
        for (n, t) in other.facts() {
            out.insert(n.as_str(), t)?;
        }
        Ok(out)
    }

    /// Merge an instance over a *different* schema into a combined
    /// instance over the disjoint union of the two schemas. Used to stage
    /// source ∪ target for the chase.
    pub fn merge_disjoint(&self, other: &Instance) -> Result<Instance, RelationalError> {
        let schema = self.schema.disjoint_union(&other.schema)?;
        let mut out = Instance::empty(schema);
        for (n, t) in self.facts().chain(other.facts()) {
            out.insert(n.as_str(), t)?;
        }
        Ok(out)
    }

    /// Restrict the instance to the relations of `sub` (which must be a
    /// sub-schema). Facts in other relations are dropped.
    pub fn project_to_schema(&self, sub: &Schema) -> Result<Instance, RelationalError> {
        let mut out = Instance::empty(sub.clone());
        for rel in sub.relations() {
            let src = self.expect_relation(rel.name().as_str())?;
            for t in src.iter() {
                out.insert(rel.name().as_str(), t)?;
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, r) in &self.relations {
            if r.is_empty() {
                continue;
            }
            if !first {
                writeln!(f)?;
            }
            first = false;
            writeln!(f, "{n}:")?;
            for t in r.iter() {
                writeln!(f, "  {t}")?;
            }
        }
        if first {
            writeln!(f, "(empty instance)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use crate::tuple;

    fn emp_schema() -> Schema {
        Schema::with_relations(vec![RelSchema::untyped("Emp", vec!["name"]).unwrap()]).unwrap()
    }

    fn mgr_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap()
        ])
        .unwrap()
    }

    #[test]
    fn empty_instance_has_all_relations() {
        let i = Instance::empty(emp_schema());
        assert!(i.relation("Emp").is_some());
        assert!(i.is_empty());
        assert_eq!(i.fact_count(), 0);
    }

    #[test]
    fn with_facts_builder() {
        let i = Instance::with_facts(
            emp_schema(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        assert_eq!(i.fact_count(), 2);
        assert!(i.contains("Emp", &tuple!["Alice"]));
    }

    #[test]
    fn unknown_relation_errors() {
        let mut i = Instance::empty(emp_schema());
        assert!(matches!(
            i.insert("Nope", tuple!["x"]).unwrap_err(),
            RelationalError::UnknownRelation(_)
        ));
    }

    #[test]
    fn nulls_and_null_gen() {
        let mut i = Instance::empty(mgr_schema());
        i.insert(
            "Manager",
            Tuple::new(vec![Value::str("Alice"), Value::null(5)]),
        )
        .unwrap();
        assert_eq!(i.nulls(), BTreeSet::from([NullId(5)]));
        let mut g = i.null_gen();
        assert_eq!(g.fresh_id(), NullId(6));
        assert!(!i.is_ground());
    }

    #[test]
    fn constants_collects_ground_values() {
        let i = Instance::with_facts(
            mgr_schema(),
            vec![("Manager", vec![tuple!["Alice", "Bob"]])],
        )
        .unwrap();
        let cs = i.constants();
        assert!(cs.contains(&Constant::Str("Alice".into())));
        assert!(cs.contains(&Constant::Str("Bob".into())));
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn subinstance_ordering() {
        let small =
            Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let big = Instance::with_facts(
            emp_schema(),
            vec![("Emp", vec![tuple!["Alice"], tuple!["Bob"]])],
        )
        .unwrap();
        assert!(small.is_subinstance_of(&big));
        assert!(!big.is_subinstance_of(&small));
    }

    #[test]
    fn union_same_schema() {
        let a = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let b = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Bob"]])]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);
        // Union over different schemas is an error.
        let m = Instance::empty(mgr_schema());
        assert!(a.union(&m).is_err());
    }

    #[test]
    fn merge_disjoint_and_project_back() {
        let src = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let tgt = Instance::with_facts(
            mgr_schema(),
            vec![("Manager", vec![tuple!["Alice", "Bob"]])],
        )
        .unwrap();
        let merged = src.merge_disjoint(&tgt).unwrap();
        assert_eq!(merged.fact_count(), 2);
        let back = merged.project_to_schema(&emp_schema()).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn substitute_nulls_across_instance() {
        let mut i = Instance::empty(mgr_schema());
        i.insert(
            "Manager",
            Tuple::new(vec![Value::str("Alice"), Value::null(0)]),
        )
        .unwrap();
        let mut s = BTreeMap::new();
        s.insert(NullId(0), Value::str("Ted"));
        let j = i.substitute_nulls(&s);
        assert!(j.contains("Manager", &tuple!["Alice", "Ted"]));
        assert!(j.is_ground());
    }

    #[test]
    fn display_skips_empty_relations() {
        let i = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let s = i.to_string();
        assert!(s.contains("Emp:"));
        assert!(s.contains("(Alice)"));
    }

    #[test]
    fn serde_round_trip() {
        let i = Instance::with_facts(emp_schema(), vec![("Emp", vec![tuple!["Alice"]])]).unwrap();
        let js = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&js).unwrap();
        assert_eq!(back, i);
    }
}
