//! A small scalar expression / predicate language over named attributes.
//!
//! Used by the algebra's selection operator, by relational-lens
//! selection templates, and by schema evolution's horizontal split.
//!
//! Semantics over nulls: equality compares values syntactically (a
//! labeled null equals itself only — the same convention used for FD
//! checking), while ordering comparisons require ground constants of the
//! same type and report an [`RelationalError::EvalError`] otherwise.

use crate::error::RelationalError;
use crate::name::Name;
use crate::schema::RelSchema;
use crate::tuple::Tuple;
use crate::value::{Constant, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BinCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for BinCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinCmp::Eq => "=",
            BinCmp::Ne => "<>",
            BinCmp::Lt => "<",
            BinCmp::Le => "<=",
            BinCmp::Gt => ">",
            BinCmp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators (integers only).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        };
        f.write_str(s)
    }
}

/// A boolean/scalar expression evaluated against one tuple.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// The value of an attribute.
    Attr(Name),
    /// A literal constant.
    Lit(Constant),
    /// Comparison of two sub-expressions.
    Cmp(BinCmp, Box<Expr>, Box<Expr>),
    /// Integer arithmetic on two sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// String concatenation of two sub-expressions.
    Concat(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Is the sub-expression a labeled null (or Skolem term)?
    IsNull(Box<Expr>),
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
}

impl Expr {
    /// Attribute reference.
    pub fn attr(a: impl Into<Name>) -> Expr {
        Expr::Attr(a.into())
    }

    /// Literal.
    pub fn lit(c: impl Into<Constant>) -> Expr {
        Expr::Lit(c.into())
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(BinCmp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(BinCmp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(BinCmp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(BinCmp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(BinCmp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(BinCmp::Ge, Box::new(self), Box::new(other))
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + other` (integers).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other` (integers).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other` (integers).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self || other` — string concatenation.
    pub fn concat(self, other: Expr) -> Expr {
        Expr::Concat(Box::new(self), Box::new(other))
    }

    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Evaluate to a [`Value`] against `tuple` under `schema`.
    pub fn eval(&self, schema: &RelSchema, tuple: &Tuple) -> Result<Value, RelationalError> {
        match self {
            Expr::Attr(a) => {
                let pos = schema
                    .position(a.as_str())
                    .ok_or_else(|| RelationalError::UnboundAttribute(a.clone()))?;
                Ok(tuple[pos].clone())
            }
            Expr::Lit(c) => Ok(Value::Const(c.clone())),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(schema, tuple)?;
                let rv = r.eval(schema, tuple)?;
                compare(*op, &lv, &rv).map(Value::Const)
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(schema, tuple)?;
                let rv = r.eval(schema, tuple)?;
                match (lv.as_int(), rv.as_int()) {
                    (Some(a), Some(b)) => {
                        let v = match op {
                            ArithOp::Add => a.checked_add(b),
                            ArithOp::Sub => a.checked_sub(b),
                            ArithOp::Mul => a.checked_mul(b),
                        }
                        .ok_or_else(|| {
                            RelationalError::EvalError(format!(
                                "integer overflow computing {a} {op} {b}"
                            ))
                        })?;
                        Ok(Value::int(v))
                    }
                    _ => Err(RelationalError::EvalError(format!(
                        "arithmetic `{lv} {op} {rv}` requires integer constants"
                    ))),
                }
            }
            Expr::Concat(l, r) => {
                let lv = l.eval(schema, tuple)?;
                let rv = r.eval(schema, tuple)?;
                match (lv.as_str(), rv.as_str()) {
                    (Some(a), Some(b)) => Ok(Value::str(format!("{a}{b}"))),
                    _ => Err(RelationalError::EvalError(format!(
                        "concatenation `{lv} || {rv}` requires string constants"
                    ))),
                }
            }
            Expr::And(l, r) => {
                let lv = l.eval_bool(schema, tuple)?;
                if !lv {
                    return Ok(Value::bool(false));
                }
                Ok(Value::bool(r.eval_bool(schema, tuple)?))
            }
            Expr::Or(l, r) => {
                let lv = l.eval_bool(schema, tuple)?;
                if lv {
                    return Ok(Value::bool(true));
                }
                Ok(Value::bool(r.eval_bool(schema, tuple)?))
            }
            Expr::Not(e) => Ok(Value::bool(!e.eval_bool(schema, tuple)?)),
            Expr::IsNull(e) => {
                let v = e.eval(schema, tuple)?;
                Ok(Value::bool(!v.is_const()))
            }
            Expr::True => Ok(Value::bool(true)),
            Expr::False => Ok(Value::bool(false)),
        }
    }

    /// Evaluate, requiring a boolean result.
    pub fn eval_bool(&self, schema: &RelSchema, tuple: &Tuple) -> Result<bool, RelationalError> {
        match self.eval(schema, tuple)? {
            Value::Const(Constant::Bool(b)) => Ok(b),
            other => Err(RelationalError::EvalError(format!(
                "expected boolean, got {other}"
            ))),
        }
    }

    /// Attribute names referenced by the expression.
    pub fn referenced_attrs(&self) -> Vec<Name> {
        fn go(e: &Expr, out: &mut Vec<Name>) {
            match e {
                Expr::Attr(a) => {
                    if !out.contains(a) {
                        out.push(a.clone());
                    }
                }
                Expr::Lit(_) | Expr::True | Expr::False => {}
                Expr::Cmp(_, l, r)
                | Expr::Arith(_, l, r)
                | Expr::Concat(l, r)
                | Expr::And(l, r)
                | Expr::Or(l, r) => {
                    go(l, out);
                    go(r, out);
                }
                Expr::Not(x) | Expr::IsNull(x) => go(x, out),
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }
}

fn compare(op: BinCmp, l: &Value, r: &Value) -> Result<Constant, RelationalError> {
    match op {
        // Equality is syntactic: nulls equal only themselves.
        BinCmp::Eq => Ok(Constant::Bool(l == r)),
        BinCmp::Ne => Ok(Constant::Bool(l != r)),
        _ => {
            let (lc, rc) = match (l, r) {
                (Value::Const(a), Value::Const(b)) => (a, b),
                _ => {
                    return Err(RelationalError::EvalError(format!(
                        "ordering comparison `{l} {op} {r}` requires ground constants"
                    )))
                }
            };
            let ord = match (lc, rc) {
                (Constant::Int(a), Constant::Int(b)) => a.cmp(b),
                (Constant::Str(a), Constant::Str(b)) => a.cmp(b),
                (Constant::Bool(a), Constant::Bool(b)) => a.cmp(b),
                _ => {
                    return Err(RelationalError::EvalError(format!(
                        "cannot order {lc} against {rc}: mismatched types"
                    )))
                }
            };
            let b = match op {
                BinCmp::Lt => ord.is_lt(),
                BinCmp::Le => ord.is_le(),
                BinCmp::Gt => ord.is_gt(),
                BinCmp::Ge => ord.is_ge(),
                BinCmp::Eq | BinCmp::Ne => unreachable!(),
            };
            Ok(Constant::Bool(b))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Lit(Constant::Str(s)) => write!(f, "{s:?}"),
            Expr::Lit(c) => write!(f, "{c}"),
            Expr::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
            Expr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Concat(l, r) => write!(f, "({l} || {r})"),
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::True => write!(f, "TRUE"),
            Expr::False => write!(f, "FALSE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn person() -> RelSchema {
        RelSchema::untyped("P", vec!["id", "name", "age"]).unwrap()
    }

    #[test]
    fn attribute_lookup_and_literals() {
        let s = person();
        let t = tuple![1i64, "Alice", 30i64];
        assert_eq!(
            Expr::attr("name").eval(&s, &t).unwrap(),
            Value::str("Alice")
        );
        assert_eq!(Expr::lit(5i64).eval(&s, &t).unwrap(), Value::int(5));
        assert!(matches!(
            Expr::attr("zip").eval(&s, &t).unwrap_err(),
            RelationalError::UnboundAttribute(_)
        ));
    }

    #[test]
    fn comparisons() {
        let s = person();
        let t = tuple![1i64, "Alice", 30i64];
        let e = Expr::attr("age").ge(Expr::lit(18i64));
        assert!(e.eval_bool(&s, &t).unwrap());
        let e = Expr::attr("name").lt(Expr::lit("Bob"));
        assert!(e.eval_bool(&s, &t).unwrap());
        let e = Expr::attr("age").eq(Expr::lit(31i64));
        assert!(!e.eval_bool(&s, &t).unwrap());
    }

    #[test]
    fn mixed_type_ordering_errors() {
        let s = person();
        let t = tuple![1i64, "Alice", 30i64];
        let e = Expr::attr("name").lt(Expr::lit(5i64));
        assert!(e.eval_bool(&s, &t).is_err());
    }

    #[test]
    fn null_equality_is_syntactic() {
        let s = person();
        let t = Tuple::new(vec![Value::null(0), Value::str("x"), Value::null(0)]);
        // id = age: both ⊥0 → true.
        assert!(Expr::attr("id")
            .eq(Expr::attr("age"))
            .eval_bool(&s, &t)
            .unwrap());
        // id = 1 → false (null ≠ constant).
        assert!(!Expr::attr("id")
            .eq(Expr::lit(1i64))
            .eval_bool(&s, &t)
            .unwrap());
        // Ordering against a null errors.
        assert!(Expr::attr("id")
            .lt(Expr::lit(1i64))
            .eval_bool(&s, &t)
            .is_err());
    }

    #[test]
    fn is_null_predicate() {
        let s = person();
        let t = Tuple::new(vec![Value::null(0), Value::str("x"), Value::int(3)]);
        assert!(Expr::attr("id").is_null().eval_bool(&s, &t).unwrap());
        assert!(!Expr::attr("age").is_null().eval_bool(&s, &t).unwrap());
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        let s = person();
        let t = tuple![1i64, "Alice", 30i64];
        // RHS would error (ordering on string vs int), but AND
        // short-circuits on false LHS.
        let e = Expr::False.and(Expr::attr("name").lt(Expr::lit(5i64)));
        assert!(!e.eval_bool(&s, &t).unwrap());
        let e = Expr::True.or(Expr::attr("name").lt(Expr::lit(5i64)));
        assert!(e.eval_bool(&s, &t).unwrap());
        let e = Expr::True.and(Expr::False.not());
        assert!(e.eval_bool(&s, &t).unwrap());
    }

    #[test]
    fn arithmetic_and_concat() {
        let s = person();
        let t = tuple![1i64, "Alice", 30i64];
        // age * 1000 + 5
        let e = Expr::attr("age")
            .mul(Expr::lit(1000i64))
            .add(Expr::lit(5i64));
        assert_eq!(e.eval(&s, &t).unwrap(), Value::int(30_005));
        assert_eq!(e.to_string(), "((age * 1000) + 5)");
        // name || "!"
        let e = Expr::attr("name").concat(Expr::lit("!"));
        assert_eq!(e.eval(&s, &t).unwrap(), Value::str("Alice!"));
        // Type errors are loud.
        assert!(Expr::attr("name")
            .add(Expr::lit(1i64))
            .eval(&s, &t)
            .is_err());
        assert!(Expr::attr("age")
            .concat(Expr::lit("x"))
            .eval(&s, &t)
            .is_err());
        // Overflow is loud, not wrapping.
        let big = Expr::lit(i64::MAX).mul(Expr::lit(2i64));
        assert!(big.eval(&s, &t).is_err());
    }

    #[test]
    fn referenced_attrs_deduplicated() {
        let e = Expr::attr("a")
            .eq(Expr::attr("b"))
            .and(Expr::attr("a").is_null());
        assert_eq!(e.referenced_attrs(), vec![Name::new("a"), Name::new("b")]);
    }

    #[test]
    fn display() {
        let e = Expr::attr("age")
            .ge(Expr::lit(18i64))
            .and(Expr::attr("name").eq(Expr::lit("Bob")));
        assert_eq!(e.to_string(), "(age >= 18 AND name = \"Bob\")");
    }
}
