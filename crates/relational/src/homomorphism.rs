//! Homomorphisms between instances with labeled nulls.
//!
//! A homomorphism `h : I → J` maps the values of `I` to values of `J`
//! such that (i) `h` is the identity on constants, and (ii) for every
//! fact `R(v₁, …, vₙ)` of `I`, `R(h(v₁), …, h(vₙ))` is a fact of `J`.
//! Labeled nulls (and Skolem terms, which behave as structured nulls
//! here) may map to anything, consistently.
//!
//! Homomorphisms are the ordering by which data exchange ranks solutions
//! (paper §2, Example 1): a *universal* solution maps homomorphically
//! into every solution, which is why the null-filled `J*` is preferred.

use crate::instance::Instance;
use crate::name::Name;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;

/// A value mapping witnessing a homomorphism. Keys are the non-constant
/// values (nulls / Skolem terms) of the domain instance.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Homomorphism {
    map: BTreeMap<Value, Value>,
}

impl Homomorphism {
    /// The empty (identity-on-constants) mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Image of a value: constants map to themselves, mapped nulls to
    /// their images; unmapped nulls map to themselves.
    pub fn apply(&self, v: &Value) -> Value {
        match v {
            Value::Const(_) => v.clone(),
            other => self
                .map
                .get(other)
                .cloned()
                .unwrap_or_else(|| other.clone()),
        }
    }

    /// Image of a tuple.
    pub fn apply_tuple(&self, t: &Tuple) -> Tuple {
        t.iter().map(|v| self.apply(v)).collect()
    }

    /// Try to extend with `v ↦ w`. Fails (returns `false`) if `v` is a
    /// constant different from `w`, or if `v` is already mapped to a
    /// different image.
    pub fn bind(&mut self, v: &Value, w: &Value) -> bool {
        match v {
            Value::Const(_) => v == w,
            _ => match self.map.get(v) {
                Some(existing) => existing == w,
                None => {
                    self.map.insert(v.clone(), w.clone());
                    true
                }
            },
        }
    }

    /// The raw mapping on non-constant values.
    pub fn mapping(&self) -> &BTreeMap<Value, Value> {
        &self.map
    }

    /// Number of mapped values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the mapping empty (identity)?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Compose: `(g ∘ self)(v) = g(self(v))`.
    pub fn then(&self, g: &Homomorphism) -> Homomorphism {
        let mut out = g.clone();
        for (k, v) in &self.map {
            out.map.insert(k.clone(), g.apply(v));
        }
        out
    }

    /// Check that this mapping really is a homomorphism from `from` to
    /// `to`.
    pub fn verify(&self, from: &Instance, to: &Instance) -> bool {
        from.facts()
            .all(|(n, t)| to.contains(n.as_str(), &self.apply_tuple(&t)))
    }
}

/// Search for a homomorphism `from → to`. Returns a witness if one
/// exists.
///
/// Backtracking search over the facts of `from`, matching each against
/// same-relation facts of `to` under the partial mapping built so far.
/// Facts are processed most-constrained-first (fewest candidate targets)
/// to keep the search shallow on realistic exchange outputs.
pub fn find_homomorphism(from: &Instance, to: &Instance) -> Option<Homomorphism> {
    // Collect the facts of `from`; fail fast if a relation has facts but
    // no candidates in `to`.
    let mut facts: Vec<(&Name, Tuple)> = from.facts().collect();
    let candidate_count =
        |rel: &Name| -> usize { to.relation(rel.as_str()).map(|r| r.len()).unwrap_or(0) };
    for (n, _) in &facts {
        if candidate_count(n) == 0 {
            return None;
        }
    }
    facts.sort_by_key(|(n, _)| candidate_count(n));

    fn search(facts: &[(&Name, Tuple)], idx: usize, to: &Instance, h: &mut Homomorphism) -> bool {
        if idx == facts.len() {
            return true;
        }
        let (rel, t) = &facts[idx];
        let target = match to.relation(rel.as_str()) {
            Some(r) => r,
            None => return false,
        };
        // Bind value-by-value against the candidate rows, reading the
        // target's columns in place rather than materializing rows.
        for &cand in target.row_ids().iter() {
            let saved = h.clone();
            let mut ok = true;
            for (col, v) in t.iter().enumerate() {
                if !h.bind(v, target.value_at(cand, col)) {
                    ok = false;
                    break;
                }
            }
            if ok && search(facts, idx + 1, to, h) {
                return true;
            }
            *h = saved;
        }
        false
    }

    let mut h = Homomorphism::new();
    if search(&facts, 0, to, &mut h) {
        Some(h)
    } else {
        None
    }
}

/// Does a homomorphism `from → to` exist?
pub fn is_homomorphic_to(from: &Instance, to: &Instance) -> bool {
    find_homomorphism(from, to).is_some()
}

/// Are the two instances homomorphically equivalent (maps both ways)?
pub fn homomorphically_equivalent(a: &Instance, b: &Instance) -> bool {
    is_homomorphic_to(a, b) && is_homomorphic_to(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelSchema, Schema};
    use crate::tuple;

    fn mgr_schema() -> Schema {
        Schema::with_relations(vec![
            RelSchema::untyped("Manager", vec!["emp", "mgr"]).unwrap()
        ])
        .unwrap()
    }

    fn mk(facts: Vec<Tuple>) -> Instance {
        Instance::with_facts(mgr_schema(), vec![("Manager", facts)]).unwrap()
    }

    /// Paper Example 1: J* (with nulls) maps into J1 and J2; not vice
    /// versa once J1 equates values the nulls keep distinct… actually J1
    /// maps back into J* only if its constants appear there — they don't.
    #[test]
    fn example1_universal_solution_maps_into_all_solutions() {
        let j_star = mk(vec![
            Tuple::new(vec![Value::str("Alice"), Value::null(1)]),
            Tuple::new(vec![Value::str("Bob"), Value::null(2)]),
        ]);
        let j1 = mk(vec![tuple!["Alice", "Alice"], tuple!["Bob", "Alice"]]);
        let j2 = mk(vec![tuple!["Alice", "Bob"], tuple!["Bob", "Ted"]]);

        let h1 = find_homomorphism(&j_star, &j1).expect("J* -> J1");
        assert!(h1.verify(&j_star, &j1));
        let h2 = find_homomorphism(&j_star, &j2).expect("J* -> J2");
        assert!(h2.verify(&j_star, &j2));

        // J1 contains the constant fact (Alice, Alice) which J* lacks, so
        // no homomorphism J1 -> J* exists (constants are fixed).
        assert!(!is_homomorphic_to(&j1, &j_star));
        assert!(!is_homomorphic_to(&j2, &j_star));
    }

    #[test]
    fn constants_must_match_exactly() {
        let a = mk(vec![tuple!["Alice", "Bob"]]);
        let b = mk(vec![tuple!["Alice", "Ted"]]);
        assert!(!is_homomorphic_to(&a, &b));
        assert!(is_homomorphic_to(&a, &a));
    }

    #[test]
    fn null_binding_is_consistent() {
        // (x, x) cannot map to (Alice, Bob).
        let a = mk(vec![Tuple::new(vec![Value::null(0), Value::null(0)])]);
        let b = mk(vec![tuple!["Alice", "Bob"]]);
        assert!(!is_homomorphic_to(&a, &b));
        let c = mk(vec![tuple!["Alice", "Alice"]]);
        assert!(is_homomorphic_to(&a, &c));
    }

    #[test]
    fn nulls_can_merge() {
        // (x, y) maps to (Alice, Alice): distinct nulls may share image.
        let a = mk(vec![Tuple::new(vec![Value::null(0), Value::null(1)])]);
        let b = mk(vec![tuple!["Alice", "Alice"]]);
        let h = find_homomorphism(&a, &b).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.verify(&a, &b));
    }

    #[test]
    fn empty_instance_maps_anywhere() {
        let e = Instance::empty(mgr_schema());
        let b = mk(vec![tuple!["Alice", "Bob"]]);
        assert!(is_homomorphic_to(&e, &b));
        assert!(!is_homomorphic_to(&b, &e));
    }

    #[test]
    fn backtracking_finds_non_greedy_assignment() {
        // a: (x, Bob), (x, Ted) — x must map to something with edges to
        // both Bob and Ted.
        let a = mk(vec![
            Tuple::new(vec![Value::null(0), Value::str("Bob")]),
            Tuple::new(vec![Value::null(0), Value::str("Ted")]),
        ]);
        let b = mk(vec![
            tuple!["Alice", "Bob"],
            tuple!["Carol", "Bob"],
            tuple!["Carol", "Ted"],
        ]);
        let h = find_homomorphism(&a, &b).expect("must pick Carol, not Alice");
        assert_eq!(h.apply(&Value::null(0)), Value::str("Carol"));
    }

    #[test]
    fn homomorphic_equivalence() {
        let a = mk(vec![Tuple::new(vec![Value::str("A"), Value::null(0)])]);
        let b = mk(vec![Tuple::new(vec![Value::str("A"), Value::null(9)])]);
        assert!(homomorphically_equivalent(&a, &b));
    }

    #[test]
    fn composition_of_homomorphisms() {
        let mut f = Homomorphism::new();
        f.bind(&Value::null(0), &Value::null(1));
        let mut g = Homomorphism::new();
        g.bind(&Value::null(1), &Value::str("x"));
        let fg = f.then(&g);
        assert_eq!(fg.apply(&Value::null(0)), Value::str("x"));
        assert_eq!(fg.apply(&Value::null(1)), Value::str("x"));
    }

    #[test]
    fn skolem_terms_act_as_structured_nulls() {
        let a = mk(vec![Tuple::new(vec![
            Value::str("Alice"),
            Value::skolem("f", vec![Value::str("Alice")]),
        ])]);
        let b = mk(vec![tuple!["Alice", "Ted"]]);
        let h = find_homomorphism(&a, &b).unwrap();
        assert_eq!(
            h.apply(&Value::skolem("f", vec![Value::str("Alice")])),
            Value::str("Ted")
        );
    }
}
