//! Functional dependencies: representation, closure, and checking.
//!
//! Functional dependencies drive the least-lossy update policy of
//! relational lenses (paper §3: “use a functional dependency c′ → c …
//! the least lossy” option) and the relational *revision* operator used
//! by lens `put`. This module provides the classical FD toolkit:
//! attribute-set closure (Armstrong), implication testing, key
//! derivation, and satisfaction checking over instances with nulls.

use crate::name::Name;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A functional dependency `lhs → rhs` over one relation's attributes.
///
/// Attribute lists are kept sorted and deduplicated, so two FDs written
/// in different orders compare equal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Fd {
    lhs: Vec<Name>,
    rhs: Vec<Name>,
}

impl Fd {
    /// Build `lhs → rhs`. Duplicates are removed and both sides sorted.
    pub fn new<A: Into<Name>, B: Into<Name>>(lhs: Vec<A>, rhs: Vec<B>) -> Self {
        let mut l: Vec<Name> = lhs.into_iter().map(Into::into).collect();
        let mut r: Vec<Name> = rhs.into_iter().map(Into::into).collect();
        l.sort();
        l.dedup();
        r.sort();
        r.dedup();
        Fd { lhs: l, rhs: r }
    }

    /// Determinant attributes.
    pub fn lhs(&self) -> &[Name] {
        &self.lhs
    }

    /// Determined attributes.
    pub fn rhs(&self) -> &[Name] {
        &self.rhs
    }

    /// Is this FD trivial (`rhs ⊆ lhs`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.iter().all(|a| self.lhs.contains(a))
    }

    /// Every attribute mentioned by the FD.
    pub fn attributes(&self) -> BTreeSet<Name> {
        self.lhs.iter().chain(self.rhs.iter()).cloned().collect()
    }

    /// Apply an attribute renaming, leaving unmapped attributes unchanged.
    pub fn rename(&self, renaming: &BTreeMap<Name, Name>) -> Fd {
        let map = |a: &Name| renaming.get(a).cloned().unwrap_or_else(|| a.clone());
        Fd::new(
            self.lhs.iter().map(map).collect::<Vec<_>>(),
            self.rhs.iter().map(map).collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |v: &[Name]| v.iter().map(Name::as_str).collect::<Vec<_>>().join(", ");
        write!(f, "{} -> {}", join(&self.lhs), join(&self.rhs))
    }
}

/// A set of functional dependencies over one relation.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct FdSet {
    fds: BTreeSet<Fd>,
}

impl FdSet {
    /// The empty FD set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of FDs.
    pub fn from_fds(fds: Vec<Fd>) -> Self {
        FdSet {
            fds: fds.into_iter().collect(),
        }
    }

    /// Add an FD.
    pub fn insert(&mut self, fd: Fd) {
        self.fds.insert(fd);
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Fd> + '_ {
        self.fds.iter()
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Attribute-set closure under these FDs (Armstrong's axioms).
    pub fn closure(&self, attrs: &BTreeSet<Name>) -> BTreeSet<Name> {
        let mut closure = attrs.clone();
        loop {
            let mut grew = false;
            for fd in &self.fds {
                if fd.lhs.iter().all(|a| closure.contains(a)) {
                    for a in &fd.rhs {
                        if closure.insert(a.clone()) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                return closure;
            }
        }
    }

    /// Does this set imply `fd`?
    pub fn implies(&self, fd: &Fd) -> bool {
        let start: BTreeSet<Name> = fd.lhs.iter().cloned().collect();
        let cl = self.closure(&start);
        fd.rhs.iter().all(|a| cl.contains(a))
    }

    /// Are two FD sets equivalent (each implies the other)?
    pub fn equivalent(&self, other: &FdSet) -> bool {
        self.fds.iter().all(|fd| other.implies(fd)) && other.fds.iter().all(|fd| self.implies(fd))
    }

    /// Is `candidate` a superkey for a relation with attributes
    /// `all_attrs`?
    pub fn is_superkey(&self, candidate: &BTreeSet<Name>, all_attrs: &BTreeSet<Name>) -> bool {
        let cl = self.closure(candidate);
        all_attrs.iter().all(|a| cl.contains(a))
    }

    /// All minimal keys of a relation with attributes `all_attrs`.
    ///
    /// Exponential in the worst case (key discovery is), but the
    /// relations in schema mappings are narrow; this searches subsets in
    /// ascending size and prunes supersets of found keys.
    pub fn minimal_keys(&self, all_attrs: &BTreeSet<Name>) -> Vec<BTreeSet<Name>> {
        let attrs: Vec<Name> = all_attrs.iter().cloned().collect();
        let n = attrs.len();
        let mut keys: Vec<BTreeSet<Name>> = Vec::new();
        // Subset enumeration by popcount-ascending order.
        let mut masks: Vec<u64> = (0..(1u64 << n)).collect();
        masks.sort_by_key(|m| m.count_ones());
        'outer: for mask in masks {
            let cand: BTreeSet<Name> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| attrs[i].clone())
                .collect();
            for k in &keys {
                if k.is_subset(&cand) {
                    continue 'outer;
                }
            }
            if self.is_superkey(&cand, all_attrs) {
                keys.push(cand);
            }
        }
        keys
    }

    /// Restrict to FDs that only mention attributes in `attrs`
    /// (projection of a dependency set — sound but not complete for
    /// implied FDs; callers needing completeness should close first).
    pub fn restrict_to(&self, attrs: &BTreeSet<Name>) -> FdSet {
        FdSet {
            fds: self
                .fds
                .iter()
                .filter(|fd| fd.attributes().is_subset(attrs))
                .cloned()
                .collect(),
        }
    }

    /// Apply an attribute renaming to every FD.
    pub fn rename(&self, renaming: &BTreeMap<Name, Name>) -> FdSet {
        FdSet {
            fds: self.fds.iter().map(|fd| fd.rename(renaming)).collect(),
        }
    }
}

impl fmt::Display for FdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fd) in self.fds.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{fd}")?;
        }
        Ok(())
    }
}

impl FromIterator<Fd> for FdSet {
    fn from_iter<T: IntoIterator<Item = Fd>>(iter: T) -> Self {
        FdSet {
            fds: iter.into_iter().collect(),
        }
    }
}

/// A reported violation of an FD by a pair of tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FdViolation {
    /// The violated dependency.
    pub fd: Fd,
    /// Index-free display of the first offending tuple.
    pub tuple_a: String,
    /// Index-free display of the second offending tuple.
    pub tuple_b: String,
}

impl fmt::Display for FdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FD {} violated by {} and {}",
            self.fd, self.tuple_a, self.tuple_b
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> BTreeSet<Name> {
        v.iter().map(Name::new).collect()
    }

    #[test]
    fn fd_normalizes_order_and_duplicates() {
        let a = Fd::new(vec!["b", "a", "a"], vec!["d", "c"]);
        let b = Fd::new(vec!["a", "b"], vec!["c", "d"]);
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_fd_detected() {
        assert!(Fd::new(vec!["a", "b"], vec!["a"]).is_trivial());
        assert!(!Fd::new(vec!["a"], vec!["b"]).is_trivial());
    }

    #[test]
    fn closure_follows_chains() {
        let fds = FdSet::from_fds(vec![
            Fd::new(vec!["a"], vec!["b"]),
            Fd::new(vec!["b"], vec!["c"]),
            Fd::new(vec!["c", "d"], vec!["e"]),
        ]);
        let cl = fds.closure(&names(&["a"]));
        assert_eq!(cl, names(&["a", "b", "c"]));
        let cl = fds.closure(&names(&["a", "d"]));
        assert_eq!(cl, names(&["a", "b", "c", "d", "e"]));
    }

    #[test]
    fn implication() {
        let fds = FdSet::from_fds(vec![
            Fd::new(vec!["a"], vec!["b"]),
            Fd::new(vec!["b"], vec!["c"]),
        ]);
        assert!(fds.implies(&Fd::new(vec!["a"], vec!["c"])));
        assert!(!fds.implies(&Fd::new(vec!["c"], vec!["a"])));
        // Trivial FDs are always implied.
        assert!(fds.implies(&Fd::new(vec!["x"], vec!["x"])));
    }

    #[test]
    fn equivalence() {
        let f1 = FdSet::from_fds(vec![Fd::new(vec!["a"], vec!["b", "c"])]);
        let f2 = FdSet::from_fds(vec![
            Fd::new(vec!["a"], vec!["b"]),
            Fd::new(vec!["a"], vec!["c"]),
        ]);
        assert!(f1.equivalent(&f2));
        let f3 = FdSet::from_fds(vec![Fd::new(vec!["a"], vec!["b"])]);
        assert!(!f1.equivalent(&f3));
    }

    #[test]
    fn minimal_keys_of_classic_example() {
        // R(a, b, c) with a→b, b→c: the only minimal key is {a}.
        let fds = FdSet::from_fds(vec![
            Fd::new(vec!["a"], vec!["b"]),
            Fd::new(vec!["b"], vec!["c"]),
        ]);
        let keys = fds.minimal_keys(&names(&["a", "b", "c"]));
        assert_eq!(keys, vec![names(&["a"])]);
    }

    #[test]
    fn minimal_keys_multiple() {
        // R(a, b) with a→b and b→a: both {a} and {b} are keys.
        let fds = FdSet::from_fds(vec![
            Fd::new(vec!["a"], vec!["b"]),
            Fd::new(vec!["b"], vec!["a"]),
        ]);
        let keys = fds.minimal_keys(&names(&["a", "b"]));
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&names(&["a"])));
        assert!(keys.contains(&names(&["b"])));
    }

    #[test]
    fn no_fds_key_is_everything() {
        let fds = FdSet::new();
        let keys = fds.minimal_keys(&names(&["a", "b"]));
        assert_eq!(keys, vec![names(&["a", "b"])]);
    }

    #[test]
    fn restrict_keeps_only_contained_fds() {
        let fds = FdSet::from_fds(vec![
            Fd::new(vec!["a"], vec!["b"]),
            Fd::new(vec!["b"], vec!["c"]),
        ]);
        let r = fds.restrict_to(&names(&["a", "b"]));
        assert_eq!(r.len(), 1);
        assert!(r.implies(&Fd::new(vec!["a"], vec!["b"])));
    }

    #[test]
    fn rename_maps_both_sides() {
        let fd = Fd::new(vec!["a"], vec!["b"]);
        let mut m = BTreeMap::new();
        m.insert(Name::new("a"), Name::new("x"));
        let r = fd.rename(&m);
        assert_eq!(r, Fd::new(vec!["x"], vec!["b"]));
    }

    #[test]
    fn display() {
        let fd = Fd::new(vec!["Zip"], vec!["City", "State"]);
        assert_eq!(fd.to_string(), "Zip -> City, State");
    }
}
