//! Cheap, clonable identifiers for relations and attributes.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned identifier (relation name, attribute name, Skolem-function
/// name, …).
///
/// `Name` wraps an `Arc<str>`, so cloning is a reference-count bump and
/// the same spelling compares equal regardless of provenance. Ordering is
/// lexicographic, which keeps every `BTreeMap<Name, _>` in the system in a
/// human-predictable order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Create a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// View the name as a `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", &*self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let s = String::deserialize(de)?;
        Ok(Name::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equality_is_by_spelling() {
        assert_eq!(Name::new("Emp"), Name::new(String::from("Emp")));
        assert_ne!(Name::new("Emp"), Name::new("emp"));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Name::new("Manager");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn btreemap_lookup_by_str_via_borrow() {
        let mut m: BTreeMap<Name, i32> = BTreeMap::new();
        m.insert(Name::new("R"), 1);
        assert_eq!(m.get("R"), Some(&1));
        assert_eq!(m.get("S"), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Name::new("b"), Name::new("a"), Name::new("ab")];
        v.sort();
        let strs: Vec<&str> = v.iter().map(Name::as_str).collect();
        assert_eq!(strs, ["a", "ab", "b"]);
    }

    #[test]
    fn display_and_debug() {
        let n = Name::new("Person1");
        assert_eq!(n.to_string(), "Person1");
        assert_eq!(format!("{n:?}"), "\"Person1\"");
    }

    #[test]
    fn serde_round_trip() {
        let n = Name::new("Takes");
        let js = serde_json::to_string(&n).unwrap();
        assert_eq!(js, "\"Takes\"");
        let back: Name = serde_json::from_str(&js).unwrap();
        assert_eq!(back, n);
    }
}
