//! Relational algebra over [`Relation`] instances.
//!
//! These are the *forward* (get) building blocks of relational lenses
//! (paper §3: “relational lenses have … general parity with relational
//! algebra”): selection, projection, renaming, natural join, union,
//! difference, and product. Each operator derives the result schema,
//! including a sound (conservative) propagation of functional
//! dependencies.

use crate::error::RelationalError;
use crate::expr::Expr;
use crate::fd::FdSet;
use crate::name::Name;
use crate::relation::Relation;
use crate::schema::{AttrType, RelSchema};
use crate::tuple::Tuple;
use std::collections::{BTreeMap, BTreeSet};

/// σ — keep the tuples satisfying `pred`. The schema (and FDs) are
/// unchanged except for the result name.
pub fn select(rel: &Relation, pred: &Expr, out_name: &str) -> Result<Relation, RelationalError> {
    let mut out_schema = rel.schema().clone().renamed(out_name);
    *out_schema.fds_mut() = rel.schema().fds().clone();
    let mut out = Relation::empty(out_schema);
    for t in rel.iter() {
        if pred.eval_bool(rel.schema(), &t)? {
            out.insert(t)?;
        }
    }
    Ok(out)
}

/// π — project onto `attrs` (order given). Duplicate output rows
/// collapse (set semantics). FDs that mention only kept attributes are
/// retained.
pub fn project(
    rel: &Relation,
    attrs: &[&str],
    out_name: &str,
) -> Result<Relation, RelationalError> {
    let mut positions = Vec::with_capacity(attrs.len());
    let mut out_attrs: Vec<(Name, AttrType)> = Vec::with_capacity(attrs.len());
    for a in attrs {
        let pos = rel
            .schema()
            .position(a)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                relation: rel.name().clone(),
                attribute: Name::new(*a),
            })?;
        positions.push(pos);
        out_attrs.push(rel.schema().attrs()[pos].clone());
    }
    let kept: BTreeSet<Name> = out_attrs.iter().map(|(a, _)| a.clone()).collect();
    let fds = rel.schema().fds().restrict_to(&kept);
    let mut schema = RelSchema::new(out_name, out_attrs)?;
    *schema.fds_mut() = fds;
    let mut out = Relation::empty(schema);
    for t in rel.iter() {
        out.insert(t.project(&positions))?;
    }
    Ok(out)
}

/// ρ — rename attributes according to `renaming` (unmapped attributes
/// keep their names). FDs are renamed along.
pub fn rename_attrs(
    rel: &Relation,
    renaming: &BTreeMap<Name, Name>,
    out_name: &str,
) -> Result<Relation, RelationalError> {
    for from in renaming.keys() {
        if rel.schema().position(from.as_str()).is_none() {
            return Err(RelationalError::UnknownAttribute {
                relation: rel.name().clone(),
                attribute: from.clone(),
            });
        }
    }
    let attrs: Vec<(Name, AttrType)> = rel
        .schema()
        .attrs()
        .iter()
        .map(|(a, t)| (renaming.get(a).cloned().unwrap_or_else(|| a.clone()), *t))
        .collect();
    let mut schema = RelSchema::new(out_name, attrs)?;
    *schema.fds_mut() = rel.schema().fds().rename(renaming);
    let mut out = Relation::empty(schema);
    for t in rel.iter() {
        out.insert(t)?;
    }
    Ok(out)
}

/// Shared/extra position layout plus the (empty) output relation of a
/// natural join.
struct JoinParts {
    out: Relation,
    shared_a: Vec<usize>,
    shared_b: Vec<usize>,
    b_extra: Vec<usize>,
}

fn join_parts(a: &Relation, b: &Relation, out_name: &str) -> Result<JoinParts, RelationalError> {
    let a_names: Vec<Name> = a.schema().attr_names().cloned().collect();
    let b_names: Vec<Name> = b.schema().attr_names().cloned().collect();
    let shared: Vec<Name> = a_names
        .iter()
        .filter(|n| b_names.contains(n))
        .cloned()
        .collect();
    // Shared names were intersected from both schemas, so position()
    // cannot miss; filter_map keeps that invariant panic-free.
    let shared_a: Vec<usize> = shared
        .iter()
        .filter_map(|n| a.schema().position(n.as_str()))
        .collect();
    let shared_b: Vec<usize> = shared
        .iter()
        .filter_map(|n| b.schema().position(n.as_str()))
        .collect();
    let b_extra: Vec<usize> = (0..b.schema().arity())
        .filter(|i| !shared_b.contains(i))
        .collect();

    let mut attrs: Vec<(Name, AttrType)> = a.schema().attrs().to_vec();
    for &i in &b_extra {
        attrs.push(b.schema().attrs()[i].clone());
    }
    let mut schema = RelSchema::new(out_name, attrs)?;
    let mut fds = FdSet::new();
    for fd in a.schema().fds().iter().chain(b.schema().fds().iter()) {
        fds.insert(fd.clone());
    }
    *schema.fds_mut() = fds;
    Ok(JoinParts {
        out: Relation::empty(schema),
        shared_a,
        shared_b,
        b_extra,
    })
}

/// ⋈ — natural join: match on all shared attribute names. The output
/// header is `a`'s attributes followed by `b`'s non-shared attributes.
/// FDs of both sides are retained (sound: both projections hold).
///
/// Probes `b`'s per-position hash index for tuple *ids* (see
/// [`Relation::probe_ids`]) on the first shared attribute, filtering
/// the candidates on the full shared projection by reading `b`'s
/// columns directly — matched rows are never materialized, only the
/// output rows are built. With no shared attributes this degenerates
/// to the cartesian product.
pub fn natural_join(
    a: &Relation,
    b: &Relation,
    out_name: &str,
) -> Result<Relation, RelationalError> {
    let JoinParts {
        mut out,
        shared_a,
        shared_b,
        b_extra,
    } = join_parts(a, b, out_name)?;
    if shared_a.is_empty() {
        for ta in a.iter() {
            for tb in b.iter() {
                out.insert(ta.concat(&tb.project(&b_extra)))?;
            }
        }
        return Ok(out);
    }
    for ta in a.iter() {
        let key = ta.project(&shared_a);
        for id in b.probe_ids(shared_b[0], &key[0]) {
            let matches = shared_b
                .iter()
                .zip(key.iter())
                .all(|(&pos, kv)| b.value_at(id, pos) == kv);
            if matches {
                let row: Tuple = ta
                    .iter()
                    .cloned()
                    .chain(b_extra.iter().map(|&pos| b.value_at(id, pos).clone()))
                    .collect();
                out.insert(row)?;
            }
        }
    }
    Ok(out)
}

/// [`natural_join`] computed by a full scan of `b` per `a` tuple via a
/// transient `BTreeMap` index — the pre-index implementation, kept as
/// the correctness oracle for the probe-based join.
#[doc(hidden)]
pub fn natural_join_scan(
    a: &Relation,
    b: &Relation,
    out_name: &str,
) -> Result<Relation, RelationalError> {
    let JoinParts {
        mut out,
        shared_a,
        shared_b,
        b_extra,
    } = join_parts(a, b, out_name)?;
    let mut index: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
    for tb in b.iter() {
        let key = tb.project(&shared_b);
        index.entry(key).or_default().push(tb);
    }
    for ta in a.iter() {
        if let Some(matches) = index.get(&ta.project(&shared_a)) {
            for tb in matches {
                out.insert(ta.concat(&tb.project(&b_extra)))?;
            }
        }
    }
    Ok(out)
}

fn require_same_header(a: &Relation, b: &Relation, op: &str) -> Result<(), RelationalError> {
    let ha: Vec<&Name> = a.schema().attr_names().collect();
    let hb: Vec<&Name> = b.schema().attr_names().collect();
    if ha != hb {
        return Err(RelationalError::SchemaMismatch {
            context: format!("{op}: headers differ ({} vs {})", a.schema(), b.schema()),
        });
    }
    Ok(())
}

/// ∪ — set union; headers must agree. Only FDs common to both sides are
/// sound for the union, so the result keeps the intersection.
pub fn union(a: &Relation, b: &Relation, out_name: &str) -> Result<Relation, RelationalError> {
    require_same_header(a, b, "union")?;
    let mut schema = a.schema().clone().renamed(out_name);
    let common: FdSet = a
        .schema()
        .fds()
        .iter()
        .filter(|fd| b.schema().fds().implies(fd))
        .cloned()
        .collect();
    *schema.fds_mut() = common;
    let mut out = Relation::empty(schema);
    for t in a.iter().chain(b.iter()) {
        out.insert(t)?;
    }
    Ok(out)
}

/// − — set difference; headers must agree.
pub fn difference(a: &Relation, b: &Relation, out_name: &str) -> Result<Relation, RelationalError> {
    require_same_header(a, b, "difference")?;
    let mut schema = a.schema().clone().renamed(out_name);
    *schema.fds_mut() = a.schema().fds().clone();
    let mut out = Relation::empty(schema);
    for t in a.iter() {
        if !b.contains(&t) {
            out.insert(t)?;
        }
    }
    Ok(out)
}

/// ∩ — set intersection; headers must agree.
pub fn intersection(
    a: &Relation,
    b: &Relation,
    out_name: &str,
) -> Result<Relation, RelationalError> {
    require_same_header(a, b, "intersection")?;
    let mut schema = a.schema().clone().renamed(out_name);
    *schema.fds_mut() = a.schema().fds().clone();
    let mut out = Relation::empty(schema);
    for t in a.iter() {
        if b.contains(&t) {
            out.insert(t)?;
        }
    }
    Ok(out)
}

/// × — cartesian product; attribute names must be disjoint.
pub fn product(a: &Relation, b: &Relation, out_name: &str) -> Result<Relation, RelationalError> {
    let a_names: BTreeSet<&Name> = a.schema().attr_names().collect();
    if b.schema().attr_names().any(|n| a_names.contains(n)) {
        return Err(RelationalError::SchemaMismatch {
            context: "product: attribute names must be disjoint (rename first)".into(),
        });
    }
    let mut attrs = a.schema().attrs().to_vec();
    attrs.extend_from_slice(b.schema().attrs());
    let schema = RelSchema::new(out_name, attrs)?;
    let mut out = Relation::empty(schema);
    for ta in a.iter() {
        for tb in b.iter() {
            out.insert(ta.concat(&tb))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use crate::tuple;
    use crate::value::Value;

    fn people() -> Relation {
        let s = RelSchema::untyped("People", vec!["id", "name", "city"])
            .unwrap()
            .with_fd(Fd::new(vec!["id"], vec!["name", "city"]))
            .unwrap();
        Relation::from_tuples(
            s,
            vec![
                tuple![1i64, "Alice", "Sydney"],
                tuple![2i64, "Bob", "Santiago"],
                tuple![3i64, "Carol", "Sydney"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_filters_and_keeps_schema() {
        let r = people();
        let out = select(
            &r,
            &Expr::attr("city").eq(Expr::lit("Sydney")),
            "SydneyFolk",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.name(), "SydneyFolk");
        assert_eq!(out.schema().arity(), 3);
        assert_eq!(out.schema().fds().len(), 1);
    }

    #[test]
    fn project_collapses_duplicates_and_restricts_fds() {
        let r = people();
        let out = project(&r, &["city"], "Cities").unwrap();
        assert_eq!(out.len(), 2, "Sydney deduplicated");
        assert_eq!(out.schema().fds().len(), 0, "id FD dropped");
        let out2 = project(&r, &["id", "name"], "IdName").unwrap();
        assert_eq!(out2.schema().fds().len(), 0, "fd mentions city, dropped");
        // Projection can reorder.
        let out3 = project(&r, &["name", "id"], "NI").unwrap();
        assert!(out3.contains(&tuple!["Alice", 1i64]));
    }

    #[test]
    fn project_unknown_attr_errors() {
        let r = people();
        assert!(project(&r, &["zip"], "X").is_err());
    }

    #[test]
    fn rename_moves_fds() {
        let r = people();
        let mut m = BTreeMap::new();
        m.insert(Name::new("id"), Name::new("pid"));
        let out = rename_attrs(&r, &m, "People2").unwrap();
        assert_eq!(out.schema().position("pid"), Some(0));
        assert!(out
            .schema()
            .fds()
            .implies(&Fd::new(vec!["pid"], vec!["name"])));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn natural_join_on_shared_attrs() {
        let cities = Relation::from_tuples(
            RelSchema::untyped("CityZip", vec!["city", "zip"]).unwrap(),
            vec![tuple!["Sydney", 2000i64], tuple!["Santiago", 8320000i64]],
        )
        .unwrap();
        let out = natural_join(&people(), &cities, "J").unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().arity(), 4);
        assert!(out.contains(&tuple![1i64, "Alice", "Sydney", 2000i64]));
    }

    #[test]
    fn join_with_no_shared_attrs_is_product() {
        let flags = Relation::from_tuples(
            RelSchema::untyped("F", vec!["flag"]).unwrap(),
            vec![tuple![true], tuple![false]],
        )
        .unwrap();
        let out = natural_join(&people(), &flags, "J").unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn join_nulls_match_syntactically() {
        let a = Relation::from_tuples(
            RelSchema::untyped("A", vec!["k", "x"]).unwrap(),
            vec![Tuple::new(vec![Value::null(0), Value::int(1)])],
        )
        .unwrap();
        let b = Relation::from_tuples(
            RelSchema::untyped("B", vec!["k", "y"]).unwrap(),
            vec![
                Tuple::new(vec![Value::null(0), Value::int(2)]),
                Tuple::new(vec![Value::null(1), Value::int(3)]),
            ],
        )
        .unwrap();
        let out = natural_join(&a, &b, "J").unwrap();
        assert_eq!(out.len(), 1, "⊥0 joins only with ⊥0");
    }

    #[test]
    fn indexed_join_agrees_with_scan_oracle() {
        let cities = Relation::from_tuples(
            RelSchema::untyped("CityZip", vec!["city", "zip"]).unwrap(),
            vec![
                tuple!["Sydney", 2000i64],
                tuple!["Sydney", 2001i64],
                tuple!["Santiago", 8320000i64],
            ],
        )
        .unwrap();
        let flags = Relation::from_tuples(
            RelSchema::untyped("F", vec!["flag"]).unwrap(),
            vec![tuple![true], tuple![false]],
        )
        .unwrap();
        for (a, b) in [
            (&people(), &cities),
            (&cities, &people()),
            (&people(), &flags),
            (&people(), &people()),
        ] {
            let indexed = natural_join(a, b, "J").unwrap();
            let scan = natural_join_scan(a, b, "J").unwrap();
            assert_eq!(indexed, scan);
            assert_eq!(indexed.schema(), scan.schema());
        }
    }

    #[test]
    fn union_requires_same_header_and_intersects_fds() {
        let r1 = people();
        let extra = Relation::from_tuples(
            RelSchema::untyped("More", vec!["id", "name", "city"]).unwrap(),
            vec![
                tuple![9i64, "Zed", "Quito"],
                tuple![1i64, "Alice", "Sydney"],
            ],
        )
        .unwrap();
        let out = union(&r1, &extra, "U").unwrap();
        assert_eq!(out.len(), 4, "duplicate Alice collapses");
        assert_eq!(
            out.schema().fds().len(),
            0,
            "FD not guaranteed by the un-keyed side"
        );
        let narrow = project(&r1, &["id"], "X").unwrap();
        assert!(union(&r1, &narrow, "U").is_err());
    }

    #[test]
    fn difference_and_intersection() {
        let r = people();
        let sydney = select(&r, &Expr::attr("city").eq(Expr::lit("Sydney")), "S").unwrap();
        let rest = difference(&r, &sydney, "D").unwrap();
        assert_eq!(rest.len(), 1);
        assert!(rest.contains(&tuple![2i64, "Bob", "Santiago"]));
        let both = intersection(&r, &sydney, "I").unwrap();
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn product_requires_disjoint_names() {
        let r = people();
        assert!(product(&r, &r, "P").is_err());
        let flags = Relation::from_tuples(
            RelSchema::untyped("F", vec!["flag"]).unwrap(),
            vec![tuple![true]],
        )
        .unwrap();
        let out = product(&r, &flags, "P").unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn composition_select_then_project() {
        // π_name(σ_city=Sydney(People)) — the textbook pipeline.
        let r = people();
        let s = select(&r, &Expr::attr("city").eq(Expr::lit("Sydney")), "t").unwrap();
        let p = project(&s, &["name"], "Names").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&tuple!["Alice"]));
        assert!(p.contains(&tuple!["Carol"]));
    }
}
