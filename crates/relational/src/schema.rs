//! Typed relational schemas.
//!
//! A [`Schema`] is a set of relation schemas ([`RelSchema`]), each giving
//! an ordered list of typed attributes plus its functional dependencies.
//! Schemas are the *source* and *target* vocabularies of a data-exchange
//! setting (paper §2): the mapping relates a source [`Schema`] to an
//! independent target [`Schema`].

use crate::error::RelationalError;
use crate::fd::{Fd, FdSet};
use crate::name::Name;
use crate::value::{Constant, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The type of an attribute.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum AttrType {
    /// Accepts any value — the dynamically-typed default, matching the
    /// untyped relational model used by the data-exchange literature.
    Any,
    /// 64-bit integers.
    Int,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
}

impl AttrType {
    /// Does `v` inhabit this type? Labeled nulls and Skolem terms inhabit
    /// every type (they stand for unknown values of the right type).
    #[allow(clippy::match_like_matches_macro)] // one arm per case reads better
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (AttrType::Any, _) => true,
            (_, Value::Null(_)) | (_, Value::Skolem(..)) => true,
            (AttrType::Int, Value::Const(Constant::Int(_))) => true,
            (AttrType::Str, Value::Const(Constant::Str(_))) => true,
            (AttrType::Bool, Value::Const(Constant::Bool(_))) => true,
            _ => false,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Any => "any",
            AttrType::Int => "int",
            AttrType::Str => "str",
            AttrType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// The schema of one relation: a name, an ordered list of typed
/// attributes, and a set of functional dependencies.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RelSchema {
    name: Name,
    attrs: Vec<(Name, AttrType)>,
    fds: FdSet,
}

impl RelSchema {
    /// Build a relation schema with explicitly typed attributes.
    ///
    /// Attribute names must be distinct.
    pub fn new<N, A>(name: N, attrs: Vec<(A, AttrType)>) -> Result<Self, RelationalError>
    where
        N: Into<Name>,
        A: Into<Name>,
    {
        let name = name.into();
        let attrs: Vec<(Name, AttrType)> = attrs.into_iter().map(|(a, t)| (a.into(), t)).collect();
        let mut seen = std::collections::BTreeSet::new();
        for (a, _) in &attrs {
            if !seen.insert(a.clone()) {
                return Err(RelationalError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(RelSchema {
            name,
            attrs,
            fds: FdSet::default(),
        })
    }

    /// Build a relation schema whose attributes all have type
    /// [`AttrType::Any`] — the common case in the data-exchange literature.
    pub fn untyped<N, A>(name: N, attrs: Vec<A>) -> Result<Self, RelationalError>
    where
        N: Into<Name>,
        A: Into<Name>,
    {
        RelSchema::new(
            name,
            attrs.into_iter().map(|a| (a, AttrType::Any)).collect(),
        )
    }

    /// Add a functional dependency; its attributes must exist here.
    pub fn with_fd(mut self, fd: Fd) -> Result<Self, RelationalError> {
        for a in fd.lhs().iter().chain(fd.rhs().iter()) {
            if self.position(a.as_str()).is_none() {
                return Err(RelationalError::UnknownAttribute {
                    relation: self.name.clone(),
                    attribute: a.clone(),
                });
            }
        }
        self.fds.insert(fd);
        Ok(self)
    }

    /// Declare `key_attrs` a key: the FD `key_attrs → (all other attrs)`.
    pub fn with_key<A: Into<Name>>(self, key_attrs: Vec<A>) -> Result<Self, RelationalError> {
        let lhs: Vec<Name> = key_attrs.into_iter().map(Into::into).collect();
        let rhs: Vec<Name> = self
            .attrs
            .iter()
            .map(|(a, _)| a.clone())
            .filter(|a| !lhs.contains(a))
            .collect();
        if rhs.is_empty() {
            // Key over all attributes: trivially satisfied, record nothing.
            return Ok(self);
        }
        self.with_fd(Fd::new(lhs, rhs))
    }

    /// The relation's name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Ordered attribute names.
    pub fn attr_names(&self) -> impl Iterator<Item = &Name> + '_ {
        self.attrs.iter().map(|(a, _)| a)
    }

    /// Ordered `(name, type)` attribute pairs.
    pub fn attrs(&self) -> &[(Name, AttrType)] {
        &self.attrs
    }

    /// Position of attribute `attr`, if present.
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|(a, _)| a == attr)
    }

    /// Type of attribute `attr`, if present.
    pub fn attr_type(&self, attr: &str) -> Option<AttrType> {
        self.attrs.iter().find(|(a, _)| a == attr).map(|(_, t)| *t)
    }

    /// The functional dependencies declared on this relation.
    pub fn fds(&self) -> &FdSet {
        &self.fds
    }

    /// Mutable access to the FD set (used by schema-evolution operators).
    pub fn fds_mut(&mut self) -> &mut FdSet {
        &mut self.fds
    }

    /// Rename this relation (schema-evolution primitive).
    pub fn renamed(mut self, new_name: impl Into<Name>) -> Self {
        self.name = new_name.into();
        self
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, (a, t)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *t == AttrType::Any {
                write!(f, "{a}")?;
            } else {
                write!(f, "{a}: {t}")?;
            }
        }
        write!(f, ")")
    }
}

/// A database schema: a collection of relation schemas keyed by name.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    relations: BTreeMap<Name, RelSchema>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from relation schemas; names must be distinct.
    pub fn with_relations(rels: Vec<RelSchema>) -> Result<Self, RelationalError> {
        let mut s = Schema::new();
        for r in rels {
            s.add_relation(r)?;
        }
        Ok(s)
    }

    /// Add one relation schema.
    pub fn add_relation(&mut self, rel: RelSchema) -> Result<(), RelationalError> {
        if self.relations.contains_key(rel.name()) {
            return Err(RelationalError::DuplicateRelation(rel.name().clone()));
        }
        self.relations.insert(rel.name().clone(), rel);
        Ok(())
    }

    /// Remove a relation schema, returning it if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<RelSchema> {
        self.relations.remove(name)
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<&RelSchema> {
        self.relations.get(name)
    }

    /// Mutable lookup (schema evolution).
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut RelSchema> {
        self.relations.get_mut(name)
    }

    /// Like [`Schema::relation`] but returns a structured error.
    pub fn expect_relation(&self, name: &str) -> Result<&RelSchema, RelationalError> {
        self.relation(name)
            .ok_or_else(|| RelationalError::UnknownRelation(Name::new(name)))
    }

    /// Iterate over relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelSchema> + '_ {
        self.relations.values()
    }

    /// Relation names in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &Name> + '_ {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Do the two schemas share any relation name? Data-exchange settings
    /// require disjoint source and target vocabularies.
    pub fn overlaps(&self, other: &Schema) -> bool {
        self.relations
            .keys()
            .any(|n| other.relations.contains_key(n.as_str()))
    }

    /// The union of two schemas with disjoint relation names.
    pub fn disjoint_union(&self, other: &Schema) -> Result<Schema, RelationalError> {
        let mut out = self.clone();
        for r in other.relations() {
            out.add_relation(r.clone())?;
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person1() -> RelSchema {
        RelSchema::untyped("Person1", vec!["Id", "Name", "Age", "City"]).unwrap()
    }

    #[test]
    fn untyped_schema_has_any_attrs() {
        let r = person1();
        assert_eq!(r.arity(), 4);
        assert_eq!(r.attr_type("Age"), Some(AttrType::Any));
        assert_eq!(r.position("City"), Some(3));
        assert_eq!(r.position("Zip"), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = RelSchema::untyped("R", vec!["a", "a"]).unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateAttribute { .. }));
    }

    #[test]
    fn typed_admission() {
        let r = RelSchema::new("R", vec![("n", AttrType::Int), ("s", AttrType::Str)]).unwrap();
        assert!(r.attr_type("n").unwrap().admits(&Value::int(3)));
        assert!(!r.attr_type("n").unwrap().admits(&Value::str("x")));
        // Nulls and Skolem terms inhabit every type.
        assert!(r.attr_type("n").unwrap().admits(&Value::null(0)));
        assert!(r
            .attr_type("s")
            .unwrap()
            .admits(&Value::skolem("f", vec![Value::int(1)])));
    }

    #[test]
    fn fd_attributes_validated() {
        let r = person1();
        let ok = r.clone().with_fd(Fd::new(vec!["Id"], vec!["Name"]));
        assert!(ok.is_ok());
        let bad = r.with_fd(Fd::new(vec!["Id"], vec!["Salary"]));
        assert!(matches!(
            bad.unwrap_err(),
            RelationalError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn key_expands_to_fd_over_remaining_attrs() {
        let r = person1().with_key(vec!["Id"]).unwrap();
        let fd = r.fds().iter().next().unwrap();
        assert_eq!(fd.lhs(), &[Name::new("Id")]);
        // Fd normalizes attribute order (sorted).
        assert_eq!(
            fd.rhs(),
            &[Name::new("Age"), Name::new("City"), Name::new("Name")]
        );
    }

    #[test]
    fn key_over_all_attributes_is_trivial() {
        let r = person1()
            .with_key(vec!["Id", "Name", "Age", "City"])
            .unwrap();
        assert_eq!(r.fds().iter().count(), 0);
    }

    #[test]
    fn schema_rejects_duplicate_relations() {
        let mut s = Schema::new();
        s.add_relation(person1()).unwrap();
        let err = s.add_relation(person1()).unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateRelation(_)));
    }

    #[test]
    fn overlap_and_disjoint_union() {
        let s1 = Schema::with_relations(vec![person1()]).unwrap();
        let s2 = Schema::with_relations(vec![RelSchema::untyped(
            "Person2",
            vec!["Id", "Name", "Salary", "ZipCode"],
        )
        .unwrap()])
        .unwrap();
        assert!(!s1.overlaps(&s2));
        let u = s1.disjoint_union(&s2).unwrap();
        assert_eq!(u.len(), 2);
        assert!(s1.overlaps(&s1));
        assert!(s1.disjoint_union(&s1).is_err());
    }

    #[test]
    fn display_forms() {
        let r = RelSchema::new("R", vec![("n", AttrType::Int)]).unwrap();
        assert_eq!(r.to_string(), "R(n: int)");
        assert_eq!(person1().to_string(), "Person1(Id, Name, Age, City)");
    }

    #[test]
    fn expect_relation_error() {
        let s = Schema::new();
        assert!(matches!(
            s.expect_relation("Nope").unwrap_err(),
            RelationalError::UnknownRelation(_)
        ));
    }
}
