//! Secondary index structures for relation storage.
//!
//! Two layers live here:
//!
//! * [`IndexState`] — the per-[`Relation`](crate::Relation) cache: a
//!   versioned tuple arena plus lazily built hash indexes from
//!   attribute position to value to tuple-id postings, and the delta
//!   log backing `insert_delta`/`drain_delta`. Everything in it is
//!   derived data: it is skipped by serde, ignored by equality, and
//!   refreshed on demand after any mutation. Inserts keep a built
//!   index warm incrementally (the new tuple is appended to the arena
//!   and folded into existing postings on the next probe), so the
//!   chase's insert–probe–insert loop costs O(1) amortized per tuple
//!   instead of a full rebuild per insertion. Destructive mutations
//!   (remove, retain, clear) invalidate wholesale.
//!
//! * [`TupleIndex`] — a standalone, eagerly maintained index from a
//!   key projection to the set of full tuples with that key. This is
//!   the shape incremental view-maintenance operators need (insert
//!   and remove as deltas stream through), shared by
//!   `dex_rellens::incremental` join nodes.
//!
//! Probes return tuples in canonical (`BTreeSet`) order regardless of
//! arena order, so index-backed enumeration is byte-identical to a
//! filtered scan — the property the matcher's `Indexed`/`Scan`
//! equivalence rests on.
//!
//! Interior mutability: indexes are built lazily behind an `RwLock` on
//! a shared (`&Relation`) receiver, so matching code can probe during
//! read-only traversals and parallel matchers can share relations
//! across threads. Probes copy their matching tuples out under a
//! short-lived guard — no guard ever escapes this module, so
//! recursive probes across relations cannot deadlock.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Tuple ids are offsets into the arena (full rebuilds lay the arena
/// out in canonical order; subsequent inserts append).
pub type TupleId = u32;

/// The result of an index probe: the matching tuples, in canonical
/// order.
#[derive(Clone, Debug)]
pub struct Probe {
    tuples: Vec<Tuple>,
}

impl Probe {
    /// Iterate the matching tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Number of matching tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Built (derived) index data: the arena at some version plus
/// per-position postings built on first use. `synced` is the watermark
/// of arena entries already folded into every posting map; appends
/// advance the arena and are folded in lazily on the next probe.
#[derive(Default)]
struct Built {
    /// Version of the tuple set this was built from; 0 = never built.
    version: u64,
    /// All tuples at `version`: canonical order up to the last full
    /// rebuild, then in insertion order.
    arena: Vec<Tuple>,
    /// Arena entries reflected in every map of `by_pos`.
    synced: usize,
    /// position -> value -> ids of tuples with that value there.
    by_pos: HashMap<usize, HashMap<Value, Vec<TupleId>>>,
}

/// Cache + delta state carried by every `Relation`.
///
/// Compares equal to everything (it is derived data), defaults to
/// empty on deserialize, and resets its cache on clone.
pub struct IndexState {
    /// Bumped on every mutation of the owning relation's tuple set.
    /// Starts at 1 so a default `Built` (version 0) is always stale.
    version: AtomicU64,
    built: RwLock<Built>,
    /// Tuples inserted via `insert_delta` since the last drain.
    delta: Vec<Tuple>,
    /// How many full arena rebuilds / posting-map builds happened.
    builds: AtomicU64,
    /// How many probes (including posting-length queries) were served.
    probes: AtomicU64,
}

impl Default for IndexState {
    fn default() -> Self {
        IndexState {
            version: AtomicU64::new(1),
            built: RwLock::new(Built::default()),
            delta: Vec::new(),
            builds: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }
}

impl Clone for IndexState {
    fn clone(&self) -> Self {
        IndexState {
            delta: self.delta.clone(),
            ..IndexState::default()
        }
    }
}

impl fmt::Debug for IndexState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexState")
            .field("version", &self.version.load(Ordering::Relaxed))
            .field("delta_len", &self.delta.len())
            .finish()
    }
}

impl IndexState {
    /// Invalidate any built indexes (call on destructive mutations:
    /// remove, retain, clear).
    pub(crate) fn bump(&mut self) {
        // &mut receiver: plain add, no contention possible.
        *self.version.get_mut() += 1;
    }

    /// Record the insertion of a (genuinely new) tuple. If the index
    /// is currently warm, the tuple is appended to the arena so the
    /// next probe only has to fold it into the postings instead of
    /// rebuilding from scratch.
    pub(crate) fn append(&mut self, t: &Tuple) {
        let old = *self.version.get_mut();
        *self.version.get_mut() = old + 1;
        let built = self.built.get_mut().unwrap_or_else(|p| p.into_inner());
        if built.version == old {
            built.arena.push(t.clone());
            built.version = old + 1;
        }
    }

    pub(crate) fn log_delta(&mut self, t: Tuple) {
        self.delta.push(t);
    }

    pub(crate) fn take_delta(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.delta)
    }

    pub(crate) fn delta_len(&self) -> usize {
        self.delta.len()
    }

    pub(crate) fn peek_delta(&self) -> &[Tuple] {
        &self.delta
    }

    /// (index builds, index probes) served so far by this relation.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (
            self.builds.load(Ordering::Relaxed),
            self.probes.load(Ordering::Relaxed),
        )
    }

    /// Matching tuples for `value` at `pos`, in canonical order.
    pub(crate) fn probe(&self, tuples: &BTreeSet<Tuple>, pos: usize, value: &Value) -> Probe {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.with_postings(tuples, pos, |arena, postings| {
            let mut out: Vec<Tuple> = postings
                .get(value)
                .map(|ids| ids.iter().map(|&id| arena[id as usize].clone()).collect())
                .unwrap_or_default();
            // Appended ids trail the canonical prefix; restore canonical
            // order so index-backed enumeration matches a filtered scan.
            out.sort_unstable();
            Probe { tuples: out }
        })
    }

    /// Posting-list length for `value` at `pos` (for join ordering).
    pub(crate) fn posting_len(&self, tuples: &BTreeSet<Tuple>, pos: usize, value: &Value) -> usize {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.with_postings(tuples, pos, |_, postings| {
            postings.get(value).map_or(0, Vec::len)
        })
    }

    /// Run `f` on an up-to-date posting map for `pos`.
    fn with_postings<R>(
        &self,
        tuples: &BTreeSet<Tuple>,
        pos: usize,
        f: impl FnOnce(&[Tuple], &HashMap<Value, Vec<TupleId>>) -> R,
    ) -> R {
        let version = self.version.load(Ordering::Acquire);
        {
            let built = self.built.read().unwrap_or_else(|p| p.into_inner());
            if built.version == version && built.synced == built.arena.len() {
                if let Some(postings) = built.by_pos.get(&pos) {
                    return f(&built.arena, postings);
                }
            }
        }
        let mut built = self.built.write().unwrap_or_else(|p| p.into_inner());
        // Double-checked: a racing writer may have refreshed while we
        // waited on the lock.
        if built.version != version {
            // Fault-injection site for the index (re)build. Probing is
            // infallible by API, so an injected *error* here still
            // surfaces as a panic; the site sits before any mutation
            // of `Built`, and the poison-tolerant locks above make the
            // cache safely reusable (stale, rebuilt on the next probe)
            // after the unwind.
            if let Some(e) = crate::fail::hit("index.build") {
                drop(built);
                panic!("{e}");
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            built.arena = tuples.iter().cloned().collect();
            built.by_pos.clear();
            built.synced = built.arena.len(); // vacuously: no maps yet
            built.version = version;
        }
        let Built {
            arena,
            synced,
            by_pos,
            ..
        } = &mut *built;
        if *synced < arena.len() {
            for (p, map) in by_pos.iter_mut() {
                for (id, t) in arena.iter().enumerate().skip(*synced) {
                    if let Some(v) = t.get(*p) {
                        map.entry(v.clone()).or_default().push(id as TupleId);
                    }
                }
            }
            *synced = arena.len();
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = by_pos.entry(pos) {
            self.builds.fetch_add(1, Ordering::Relaxed);
            let mut postings: HashMap<Value, Vec<TupleId>> = HashMap::new();
            for (id, t) in arena.iter().enumerate() {
                if let Some(v) = t.get(pos) {
                    postings.entry(v.clone()).or_default().push(id as TupleId);
                }
            }
            slot.insert(postings);
        }
        f(arena, &by_pos[&pos])
    }
}

/// An eagerly maintained index from a key projection to the full
/// tuples carrying that key, for incremental operators that see
/// inserts and deletes one delta at a time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TupleIndex {
    key_pos: Vec<usize>,
    map: HashMap<Tuple, BTreeSet<Tuple>>,
}

impl TupleIndex {
    /// An empty index keyed on the given positions of indexed tuples.
    pub fn new(key_pos: Vec<usize>) -> Self {
        TupleIndex {
            key_pos,
            map: HashMap::new(),
        }
    }

    /// The key projection this index groups by.
    pub fn key(&self, t: &Tuple) -> Tuple {
        t.project(&self.key_pos)
    }

    /// Add a tuple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.map.entry(self.key(&t)).or_default().insert(t)
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let key = self.key(t);
        match self.map.get_mut(&key) {
            None => false,
            Some(group) => {
                let removed = group.remove(t);
                if group.is_empty() {
                    self.map.remove(&key);
                }
                removed
            }
        }
    }

    /// All tuples whose key projection equals `key`, in canonical order.
    pub fn get(&self, key: &Tuple) -> impl Iterator<Item = &Tuple> + '_ {
        self.map.get(key).into_iter().flatten()
    }

    /// Are there any tuples under `key`?
    pub fn contains_key(&self, key: &Tuple) -> bool {
        self.map.contains_key(key)
    }

    /// Total number of indexed tuples.
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all (key, group) pairs. Order is unspecified.
    pub fn groups(&self) -> impl Iterator<Item = (&Tuple, &BTreeSet<Tuple>)> + '_ {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn tuple_index_insert_remove_probe() {
        let mut idx = TupleIndex::new(vec![1]);
        assert!(idx.insert(tuple![1i64, "a", 10i64]));
        assert!(idx.insert(tuple![2i64, "a", 20i64]));
        assert!(idx.insert(tuple![3i64, "b", 30i64]));
        assert!(!idx.insert(tuple![3i64, "b", 30i64]), "set semantics");
        assert_eq!(idx.len(), 3);

        let key = tuple!["a"];
        let hits: Vec<_> = idx.get(&key).cloned().collect();
        assert_eq!(
            hits,
            vec![tuple![1i64, "a", 10i64], tuple![2i64, "a", 20i64]]
        );

        assert!(idx.remove(&tuple![1i64, "a", 10i64]));
        assert!(!idx.remove(&tuple![1i64, "a", 10i64]));
        assert_eq!(idx.get(&key).count(), 1);

        // Removing the last tuple of a group drops the group.
        assert!(idx.remove(&tuple![3i64, "b", 30i64]));
        assert!(!idx.contains_key(&tuple!["b"]));
    }

    #[test]
    fn index_state_probe_and_invalidation() {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        tuples.insert(tuple!["x", 1i64]);
        tuples.insert(tuple!["y", 1i64]);
        tuples.insert(tuple!["x", 2i64]);

        let mut state = IndexState::default();
        let p = state.probe(&tuples, 0, &crate::value::Value::str("x"));
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.iter().cloned().collect::<Vec<_>>(),
            vec![tuple!["x", 1i64], tuple!["x", 2i64]],
            "probe preserves canonical order"
        );
        assert_eq!(
            state.posting_len(&tuples, 1, &crate::value::Value::int(1)),
            2
        );

        // Destructive mutation + bump: full rebuild on the next probe.
        tuples.insert(tuple!["x", 3i64]);
        state.bump();
        let p = state.probe(&tuples, 0, &crate::value::Value::str("x"));
        assert_eq!(p.len(), 3);

        let (builds, probes) = state.stats();
        assert!(builds >= 2, "arena rebuilt after bump");
        assert_eq!(probes, 3);
    }

    #[test]
    fn append_keeps_index_warm() {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        tuples.insert(tuple!["x", 1i64]);
        tuples.insert(tuple!["y", 1i64]);

        let mut state = IndexState::default();
        assert_eq!(
            state
                .probe(&tuples, 0, &crate::value::Value::str("x"))
                .len(),
            1
        );
        let (builds_before, _) = state.stats();

        // Insert via the append path: no full rebuild, and the probe
        // still sees the new tuple — in canonical order, even though
        // "a" sorts before everything already in the arena.
        let t = tuple!["a", 7i64];
        tuples.insert(t.clone());
        state.append(&t);
        let t2 = tuple!["x", 0i64];
        tuples.insert(t2.clone());
        state.append(&t2);

        let p = state.probe(&tuples, 0, &crate::value::Value::str("x"));
        assert_eq!(
            p.iter().cloned().collect::<Vec<_>>(),
            vec![tuple!["x", 0i64], tuple!["x", 1i64]],
            "appended tuple folded in, canonical order restored"
        );
        assert_eq!(
            state
                .probe(&tuples, 0, &crate::value::Value::str("a"))
                .len(),
            1
        );
        let (builds_after, _) = state.stats();
        assert_eq!(builds_after, builds_before, "appends avoid rebuilds");
    }
}
