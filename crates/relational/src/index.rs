//! Secondary index structures for relation storage.
//!
//! Two layers live here:
//!
//! * [`IndexState`] — the per-[`Relation`](crate::Relation) cache:
//!   lazily built hash indexes from attribute position to value to
//!   tuple-id postings over the relation's [`ColumnStore`] arena,
//!   plus the delta
//!   log backing `insert_delta`/`drain_delta`. Everything in it is
//!   derived data: it is skipped by serialization, ignored by equality,
//!   and refreshed on demand after any mutation. Inserts keep a built
//!   index warm incrementally (the new arena row is folded into
//!   existing postings on the next probe via the `synced` watermark),
//!   so the chase's insert–probe–insert loop costs O(1) amortized per
//!   tuple instead of a full rebuild per insertion. Destructive
//!   mutations (remove, retain, clear) invalidate wholesale through the
//!   store's version counter.
//!
//! * [`TupleIndex`] — a standalone, eagerly maintained index from a
//!   key projection to the set of full tuples with that key. This is
//!   the shape incremental view-maintenance operators need (insert
//!   and remove as deltas stream through), shared by
//!   `dex_rellens::incremental` join nodes.
//!
//! Probes return ids sorted in canonical (lexicographic row) order
//! regardless of arena order, so index-backed enumeration is
//! byte-identical to a filtered scan — the property the matcher's
//! `Indexed`/`Scan` equivalence rests on. The posting lists themselves
//! hold arena ids, not tuples: consumers on the hot path read matched
//! positions straight out of the columns by `(tuple_id, col)` and only
//! materialize rows at the API boundary.
//!
//! Interior mutability: indexes are built lazily behind an `RwLock` on
//! a shared (`&Relation`) receiver, so matching code can probe during
//! read-only traversals and parallel matchers can share relations
//! across threads. Probes copy their matching ids out under a
//! short-lived guard — no guard ever escapes this module, so
//! recursive probes across relations cannot deadlock.

use crate::columns::ColumnStore;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Tuple ids are row offsets into a relation's column arena. Stable
/// for the lifetime of the store: removal tombstones a row, it never
/// moves.
pub type TupleId = u32;

/// The result of a materializing index probe: the matching tuples, in
/// canonical order. Hot paths use
/// [`Relation::probe_ids`](crate::Relation::probe_ids) instead and
/// read columns directly.
#[derive(Clone, Debug)]
pub struct Probe {
    tuples: Vec<Tuple>,
}

impl Probe {
    pub(crate) fn new(tuples: Vec<Tuple>) -> Self {
        Probe { tuples }
    }

    /// Iterate the matching tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Number of matching tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Built (derived) index data: per-position postings over the store's
/// arena at some store version. `synced` is the watermark of arena
/// rows already folded into every posting map; appends advance the
/// store and are folded in lazily on the next probe.
#[derive(Default)]
struct Built {
    /// Store version this was built at; 0 = never built (always stale,
    /// since store versions start at 1).
    version: u64,
    /// Arena rows reflected in every map of `by_pos`.
    synced: usize,
    /// position -> value -> ids of live rows with that value there.
    by_pos: HashMap<usize, HashMap<Value, Vec<TupleId>>>,
}

/// Cache + delta state carried by every `Relation`.
///
/// Compares equal to everything (it is derived data), defaults to
/// empty on deserialize, and resets its cache on clone.
pub struct IndexState {
    built: RwLock<Built>,
    /// Ids of rows inserted via `insert_delta` since the last drain
    /// (materialized lazily on drain/peek).
    delta: Vec<TupleId>,
    /// How many posting-map (re)builds happened.
    builds: AtomicU64,
    /// How many probes (including posting-length queries) were served.
    probes: AtomicU64,
}

impl Default for IndexState {
    fn default() -> Self {
        IndexState {
            built: RwLock::new(Built::default()),
            delta: Vec::new(),
            builds: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }
}

impl Clone for IndexState {
    fn clone(&self) -> Self {
        IndexState {
            delta: self.delta.clone(),
            ..IndexState::default()
        }
    }
}

impl fmt::Debug for IndexState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexState")
            .field("delta_len", &self.delta.len())
            .finish()
    }
}

impl IndexState {
    /// Keep a built index warm across an append-only store mutation:
    /// if the postings were current just before the append, mark them
    /// current at the new version; the appended rows are folded in on
    /// the next probe via the `synced` watermark.
    pub(crate) fn note_append(&mut self, version_after: u64) {
        let built = self.built.get_mut().unwrap_or_else(|p| p.into_inner());
        if built.version + 1 == version_after {
            built.version = version_after;
        }
    }

    pub(crate) fn log_delta(&mut self, id: TupleId) {
        self.delta.push(id);
    }

    pub(crate) fn take_delta(&mut self) -> Vec<TupleId> {
        std::mem::take(&mut self.delta)
    }

    pub(crate) fn delta_len(&self) -> usize {
        self.delta.len()
    }

    pub(crate) fn peek_delta(&self) -> &[TupleId] {
        &self.delta
    }

    /// (index builds, index probes) served so far by this relation.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (
            self.builds.load(Ordering::Relaxed),
            self.probes.load(Ordering::Relaxed),
        )
    }

    /// Ids of rows matching `value` at `pos`, in canonical order.
    pub(crate) fn probe_ids(&self, store: &ColumnStore, pos: usize, value: &Value) -> Vec<TupleId> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut out = self.with_postings(store, pos, |postings| {
            postings.get(value).cloned().unwrap_or_default()
        });
        // Appended ids trail the canonical prefix; restore canonical
        // order so index-backed enumeration matches a filtered scan.
        store.sort_canonical(&mut out);
        out
    }

    /// Posting-list length for `value` at `pos` (for join ordering).
    pub(crate) fn posting_len(&self, store: &ColumnStore, pos: usize, value: &Value) -> usize {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.with_postings(store, pos, |postings| {
            postings.get(value).map_or(0, Vec::len)
        })
    }

    /// Run `f` on an up-to-date posting map for `pos`.
    fn with_postings<R>(
        &self,
        store: &ColumnStore,
        pos: usize,
        f: impl FnOnce(&HashMap<Value, Vec<TupleId>>) -> R,
    ) -> R {
        let version = store.version();
        {
            let built = self.built.read().unwrap_or_else(|p| p.into_inner());
            if built.version == version && built.synced == store.arena_len() {
                if let Some(postings) = built.by_pos.get(&pos) {
                    return f(postings);
                }
            }
        }
        let mut built = self.built.write().unwrap_or_else(|p| p.into_inner());
        // Double-checked: a racing writer may have refreshed while we
        // waited on the lock.
        if built.version != version {
            // Fault-injection site for the index (re)build. Probing is
            // infallible by API, so an injected *error* here still
            // surfaces as a panic; the site sits before any mutation
            // of `Built`, and the poison-tolerant locks above make the
            // cache safely reusable (stale, rebuilt on the next probe)
            // after the unwind.
            if let Some(e) = crate::fail::hit("index.build") {
                drop(built);
                panic!("{e}");
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            built.by_pos.clear();
            built.synced = store.arena_len(); // vacuously: no maps yet
            built.version = version;
        }
        let Built { synced, by_pos, .. } = &mut *built;
        if *synced < store.arena_len() {
            for (p, map) in by_pos.iter_mut() {
                for id in (*synced as TupleId)..(store.arena_len() as TupleId) {
                    if store.is_live(id) {
                        map.entry(store.value(id, *p).clone()).or_default().push(id);
                    }
                }
            }
            *synced = store.arena_len();
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = by_pos.entry(pos) {
            self.builds.fetch_add(1, Ordering::Relaxed);
            let mut postings: HashMap<Value, Vec<TupleId>> = HashMap::new();
            for id in store.live_ids() {
                postings
                    .entry(store.value(id, pos).clone())
                    .or_default()
                    .push(id);
            }
            slot.insert(postings);
        }
        f(&by_pos[&pos])
    }
}

/// An eagerly maintained index from a key projection to the full
/// tuples carrying that key, for incremental operators that see
/// inserts and deletes one delta at a time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TupleIndex {
    key_pos: Vec<usize>,
    map: HashMap<Tuple, BTreeSet<Tuple>>,
}

impl TupleIndex {
    /// An empty index keyed on the given positions of indexed tuples.
    pub fn new(key_pos: Vec<usize>) -> Self {
        TupleIndex {
            key_pos,
            map: HashMap::new(),
        }
    }

    /// The key projection this index groups by.
    pub fn key(&self, t: &Tuple) -> Tuple {
        t.project(&self.key_pos)
    }

    /// Add a tuple. Returns `true` if it was not already present.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.map.entry(self.key(&t)).or_default().insert(t)
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let key = self.key(t);
        match self.map.get_mut(&key) {
            None => false,
            Some(group) => {
                let removed = group.remove(t);
                if group.is_empty() {
                    self.map.remove(&key);
                }
                removed
            }
        }
    }

    /// All tuples whose key projection equals `key`, in canonical order.
    pub fn get(&self, key: &Tuple) -> impl Iterator<Item = &Tuple> + '_ {
        self.map.get(key).into_iter().flatten()
    }

    /// Are there any tuples under `key`?
    pub fn contains_key(&self, key: &Tuple) -> bool {
        self.map.contains_key(key)
    }

    /// Total number of indexed tuples.
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all (key, group) pairs. Order is unspecified.
    pub fn groups(&self) -> impl Iterator<Item = (&Tuple, &BTreeSet<Tuple>)> + '_ {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn tuple_index_insert_remove_probe() {
        let mut idx = TupleIndex::new(vec![1]);
        assert!(idx.insert(tuple![1i64, "a", 10i64]));
        assert!(idx.insert(tuple![2i64, "a", 20i64]));
        assert!(idx.insert(tuple![3i64, "b", 30i64]));
        assert!(!idx.insert(tuple![3i64, "b", 30i64]), "set semantics");
        assert_eq!(idx.len(), 3);

        let key = tuple!["a"];
        let hits: Vec<_> = idx.get(&key).cloned().collect();
        assert_eq!(
            hits,
            vec![tuple![1i64, "a", 10i64], tuple![2i64, "a", 20i64]]
        );

        assert!(idx.remove(&tuple![1i64, "a", 10i64]));
        assert!(!idx.remove(&tuple![1i64, "a", 10i64]));
        assert_eq!(idx.get(&key).count(), 1);

        // Removing the last tuple of a group drops the group.
        assert!(idx.remove(&tuple![3i64, "b", 30i64]));
        assert!(!idx.contains_key(&tuple!["b"]));
    }

    #[test]
    fn index_state_probe_and_invalidation() {
        let mut store = ColumnStore::new(2);
        store.push(&tuple!["x", 1i64]);
        store.push(&tuple!["y", 1i64]);
        store.push(&tuple!["x", 2i64]);

        let state = IndexState::default();
        let ids = state.probe_ids(&store, 0, &crate::value::Value::str("x"));
        assert_eq!(ids.len(), 2);
        assert_eq!(
            ids.iter()
                .map(|&id| store.materialize(id))
                .collect::<Vec<_>>(),
            vec![tuple!["x", 1i64], tuple!["x", 2i64]],
            "probe preserves canonical order"
        );
        assert_eq!(
            state.posting_len(&store, 1, &crate::value::Value::int(1)),
            2
        );

        // Destructive mutation: full rebuild on the next probe.
        store.remove(&tuple!["x", 1i64]);
        let ids = state.probe_ids(&store, 0, &crate::value::Value::str("x"));
        assert_eq!(ids.len(), 1);

        let (builds, probes) = state.stats();
        assert!(builds >= 2, "postings rebuilt after removal");
        assert_eq!(probes, 3);
    }

    #[test]
    fn append_keeps_index_warm() {
        let mut store = ColumnStore::new(2);
        store.push(&tuple!["x", 1i64]);
        store.push(&tuple!["y", 1i64]);

        let mut state = IndexState::default();
        assert_eq!(
            state
                .probe_ids(&store, 0, &crate::value::Value::str("x"))
                .len(),
            1
        );
        let (builds_before, _) = state.stats();

        // Insert via the append path: no full rebuild, and the probe
        // still sees the new row — in canonical order, even though
        // "a" sorts before everything already in the arena.
        store.push(&tuple!["a", 7i64]);
        state.note_append(store.version());
        store.push(&tuple!["x", 0i64]);
        state.note_append(store.version());

        let ids = state.probe_ids(&store, 0, &crate::value::Value::str("x"));
        assert_eq!(
            ids.iter()
                .map(|&id| store.materialize(id))
                .collect::<Vec<_>>(),
            vec![tuple!["x", 0i64], tuple!["x", 1i64]],
            "appended row folded in, canonical order restored"
        );
        assert_eq!(
            state
                .probe_ids(&store, 0, &crate::value::Value::str("a"))
                .len(),
            1
        );
        let (builds_after, _) = state.stats();
        assert_eq!(builds_after, builds_before, "appends avoid rebuilds");
    }
}
