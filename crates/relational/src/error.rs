//! Structured errors for the relational substrate.

use crate::name::Name;
use std::fmt;

/// Errors raised by schema construction, instance mutation, and algebra
/// evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelationalError {
    /// A relation with this name already exists in the schema.
    DuplicateRelation(Name),
    /// No relation with this name exists.
    UnknownRelation(Name),
    /// An attribute name is repeated within one relation schema.
    DuplicateAttribute {
        /// The relation being defined.
        relation: Name,
        /// The repeated attribute.
        attribute: Name,
    },
    /// An attribute was referenced that the relation does not have.
    UnknownAttribute {
        /// The relation consulted.
        relation: Name,
        /// The missing attribute.
        attribute: Name,
    },
    /// A tuple's width does not match the relation's arity.
    ArityMismatch {
        /// The relation receiving the tuple.
        relation: Name,
        /// Declared arity.
        expected: usize,
        /// Width of the offending tuple.
        actual: usize,
    },
    /// A value does not inhabit the declared attribute type.
    TypeMismatch {
        /// The relation receiving the tuple.
        relation: Name,
        /// The attribute whose type was violated.
        attribute: Name,
        /// Display form of the offending value.
        value: String,
    },
    /// Two relations being combined have incompatible headers.
    SchemaMismatch {
        /// What the operation was doing.
        context: String,
    },
    /// A predicate or expression referenced an attribute not in scope.
    UnboundAttribute(Name),
    /// Expression evaluation failed (e.g. comparing incompatible values,
    /// or applying arithmetic to a null).
    EvalError(String),
    /// A fault was injected at the named fail-point site (feature
    /// `failpoints`; see [`crate::fail`]). Never produced in
    /// production builds.
    FaultInjected(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateRelation(n) => {
                write!(f, "relation `{n}` already defined")
            }
            RelationalError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "duplicate attribute `{attribute}` in relation `{relation}`"
            ),
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected} values, got {actual}"
            ),
            RelationalError::TypeMismatch {
                relation,
                attribute,
                value,
            } => write!(
                f,
                "type mismatch for `{relation}.{attribute}`: value {value} not admitted"
            ),
            RelationalError::SchemaMismatch { context } => {
                write!(f, "schema mismatch: {context}")
            }
            RelationalError::UnboundAttribute(a) => {
                write!(f, "attribute `{a}` is not in scope")
            }
            RelationalError::EvalError(msg) => write!(f, "evaluation error: {msg}"),
            RelationalError::FaultInjected(site) => {
                write!(f, "injected fault at fail point `{site}`")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationalError::ArityMismatch {
            relation: Name::new("Emp"),
            expected: 1,
            actual: 2,
        };
        assert_eq!(
            e.to_string(),
            "arity mismatch for `Emp`: expected 1 values, got 2"
        );
        let e = RelationalError::UnknownAttribute {
            relation: Name::new("R"),
            attribute: Name::new("x"),
        };
        assert!(e.to_string().contains("no attribute"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelationalError::UnknownRelation(Name::new("R")));
    }
}
