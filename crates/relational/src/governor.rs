//! Resource governance: budgets, cooperative cancellation, and
//! exhaustion reports.
//!
//! Chase-based materialization is only semi-decidable, so every
//! long-running loop in the workspace (the phase-1/phase-2 chase, egd
//! enforcement, core minimization, certain-answer enumeration, the
//! nested chases inside compose/inverse, incremental put replay)
//! accepts a [`Governor`]: a [`Budget`] of hard resource caps plus an
//! optional shared [`CancelToken`]. Loops call the cheap check methods
//! at *step boundaries* — between rule firings, between rounds, between
//! endomorphism probes — and, on a trip, surface a typed outcome
//! carrying the consistent prefix computed so far together with an
//! [`ExhaustionReport`].
//!
//! Budget semantics: every limit is a cap on *consumption counted so
//! far*. Because checks are cooperative, consumption can overshoot a
//! cap by at most one atomic step (one tgd firing, or one round's egd
//! enforcement — which always terminates, since each merge eliminates a
//! labeled null). The wall-clock deadline is likewise checked between
//! steps, so the overshoot is bounded by the duration of a single step.
//!
//! The governor is `Sync`: counters are atomics, so a chase running on
//! one thread can be cancelled from another via the shared token, and
//! parallel matching tasks can account against one budget.

use serde::{Serialize, Serializer};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard resource caps for one governed run. All fields default to
/// `None` ("unlimited"); build with the `with_*` methods.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from [`Governor::new`].
    pub deadline: Option<Duration>,
    /// Maximum committed (instance-changing) chase rounds.
    pub max_rounds: Option<u64>,
    /// Maximum derived tuples (counted as genuinely-new insertions).
    pub max_tuples: Option<u64>,
    /// Maximum fresh labeled nulls invented.
    pub max_nulls: Option<u64>,
    /// Approximate cap on bytes of derived tuple data.
    pub max_memory_bytes: Option<u64>,
}

impl Budget {
    /// A budget with no limits at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Cap wall-clock time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Cap committed chase rounds.
    pub fn with_max_rounds(mut self, n: u64) -> Self {
        self.max_rounds = Some(n);
        self
    }

    /// Cap derived tuples.
    pub fn with_max_tuples(mut self, n: u64) -> Self {
        self.max_tuples = Some(n);
        self
    }

    /// Cap fresh nulls.
    pub fn with_max_nulls(mut self, n: u64) -> Self {
        self.max_nulls = Some(n);
        self
    }

    /// Cap approximate derived bytes.
    pub fn with_max_memory(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Synthesize a budget from statically derived chase bounds, each
    /// scaled by a `safety` factor (≥ 1; use 1 for exact admission).
    ///
    /// A finite bound becomes the corresponding cap (saturating at
    /// `u64::MAX` when the safety product overflows — still a valid,
    /// merely loose, cap); an unbounded component yields no cap on that
    /// axis. No deadline is set: the point of static admission control
    /// is to cap *work*, not wall-clock, which the caller can still
    /// layer on with [`with_deadline`](Self::with_deadline).
    ///
    /// Soundness contract (pinned by the cost-analysis property tests):
    /// when every component of `bounds` genuinely over-approximates the
    /// run — as the dex-analyze cost pass guarantees for weakly or
    /// jointly acyclic mappings — a chase governed by
    /// `Budget::from_bounds(&bounds, s)` with any `s ≥ 1` never trips.
    pub fn from_bounds(bounds: &crate::cost::ChaseBounds, safety: u64) -> Self {
        let cap = |b: crate::cost::Bound| b.finite().map(|n| n.saturating_mul(safety.max(1)));
        Budget {
            deadline: None,
            max_rounds: cap(bounds.rounds),
            max_tuples: cap(bounds.tuples),
            max_nulls: cap(bounds.nulls),
            max_memory_bytes: cap(bounds.bytes),
        }
    }

    /// The pointwise intersection of two budgets: on every axis the
    /// *stricter* cap wins (`min` when both are set, the set one when
    /// only one is). This is how `dexd` combines its server default
    /// with a request's overrides and the statically synthesized
    /// [`from_bounds`](Self::from_bounds) caps — a request can narrow
    /// the server's budget but never widen it.
    pub fn intersect(self, other: Budget) -> Budget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
        Budget {
            deadline: tighter(self.deadline, other.deadline),
            max_rounds: tighter(self.max_rounds, other.max_rounds),
            max_tuples: tighter(self.max_tuples, other.max_tuples),
            max_nulls: tighter(self.max_nulls, other.max_nulls),
            max_memory_bytes: tighter(self.max_memory_bytes, other.max_memory_bytes),
        }
    }

    /// Does this budget impose no limit?
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rounds.is_none()
            && self.max_tuples.is_none()
            && self.max_nulls.is_none()
            && self.max_memory_bytes.is_none()
    }
}

/// A shareable cooperative cancellation flag. Clone it, hand one copy
/// to the governed computation (via [`Governor::with_cancel`]) and keep
/// the other; [`cancel`](CancelToken::cancel) from any thread makes the
/// computation stop at its next check point with
/// [`TripReason::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Which budget (or the cancel token) stopped a governed run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The committed-round cap was reached.
    Rounds,
    /// The derived-tuple cap was reached.
    Tuples,
    /// The fresh-null cap was reached.
    Nulls,
    /// The approximate memory cap was reached.
    Memory,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl TripReason {
    /// The stable lowercase wire token for this reason — part of the
    /// versioned [`ExhaustionReport`] JSON format consumed by `dexcli
    /// --stats --format json` and `dexd` clients. Never rename these.
    pub fn token(&self) -> &'static str {
        match self {
            TripReason::Deadline => "deadline",
            TripReason::Rounds => "rounds",
            TripReason::Tuples => "tuples",
            TripReason::Nulls => "nulls",
            TripReason::Memory => "memory",
            TripReason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TripReason::Deadline => "wall-clock deadline",
            TripReason::Rounds => "round limit",
            TripReason::Tuples => "derived-tuple limit",
            TripReason::Nulls => "fresh-null limit",
            TripReason::Memory => "approximate memory limit",
            TripReason::Cancelled => "cancelled",
        })
    }
}

/// What a governed run had consumed when it stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExhaustionReport {
    /// Which budget tripped.
    pub reason: TripReason,
    /// Committed (instance-changing) chase rounds.
    pub rounds_committed: u64,
    /// Genuinely-new tuples derived (and kept — rolled-back partial
    /// rounds still count as consumption).
    pub tuples_derived: u64,
    /// Fresh labeled nulls invented.
    pub nulls_created: u64,
    /// Approximate bytes of derived tuple data (0 unless a memory cap
    /// was set — byte accounting is skipped otherwise).
    pub approx_bytes: u64,
    /// Wall-clock time from governor creation to the trip.
    pub elapsed: Duration,
}

/// Version tag of the [`ExhaustionReport`] JSON wire format. Bump it
/// (and keep reading the old shape) on any incompatible change: the
/// report rides HTTP responses (`dexd` 206s) and the `dexcli --stats
/// --format json` stderr object, so its shape is an API.
pub const EXHAUSTION_REPORT_WIRE_V: u64 = 1;

// Stable versioned wire shape: a leading `"v"` tag, the reason as its
// lowercase token, and the elapsed time flattened to milliseconds
// (`Duration`'s native serde shape would leak an implementation
// detail). Field names are load-bearing; goldens pin them.
#[derive(Serialize)]
struct ExhaustionReportWire {
    v: u64,
    reason: &'static str,
    rounds_committed: u64,
    tuples_derived: u64,
    nulls_created: u64,
    approx_bytes: u64,
    elapsed_ms: u64,
}

impl Serialize for ExhaustionReport {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ExhaustionReportWire {
            v: EXHAUSTION_REPORT_WIRE_V,
            reason: self.reason.token(),
            rounds_committed: self.rounds_committed,
            tuples_derived: self.tuples_derived,
            nulls_created: self.nulls_created,
            approx_bytes: self.approx_bytes,
            elapsed_ms: self.elapsed.as_millis() as u64,
        }
        .serialize(s)
    }
}

impl fmt::Display for ExhaustionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "budget exhausted: {}", self.reason)?;
        writeln!(f, "  rounds committed: {}", self.rounds_committed)?;
        writeln!(f, "  tuples derived:   {}", self.tuples_derived)?;
        writeln!(f, "  nulls created:    {}", self.nulls_created)?;
        if self.approx_bytes > 0 {
            writeln!(f, "  approx bytes:     {}", self.approx_bytes)?;
        }
        write!(f, "  elapsed:          {:?}", self.elapsed)
    }
}

/// A live budget: caps, an optional cancel token, and consumption
/// counters. Construct one per governed run and thread `&Governor`
/// through the loops; see the module docs for check-point placement.
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    /// Fast path: when no limit and no token is set, every check is a
    /// single branch. (Counter accounting stays on regardless so
    /// reports stay accurate.)
    engaged: bool,
    rounds: AtomicU64,
    tuples: AtomicU64,
    nulls: AtomicU64,
    bytes: AtomicU64,
}

impl Default for Governor {
    fn default() -> Self {
        Governor::unlimited()
    }
}

impl Governor {
    /// A governor enforcing `budget`, with the clock starting now.
    pub fn new(budget: Budget) -> Self {
        Governor {
            engaged: !budget.is_unlimited(),
            budget,
            cancel: None,
            start: Instant::now(),
            rounds: AtomicU64::new(0),
            tuples: AtomicU64::new(0),
            nulls: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// A governor that never trips (all checks are a single branch).
    pub fn unlimited() -> Self {
        Governor::new(Budget::unlimited())
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self.engaged = true;
        self
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Is byte accounting worth doing? (Only when a memory cap is set —
    /// walking tuples to estimate bytes is pure overhead otherwise.)
    pub fn tracks_memory(&self) -> bool {
        self.budget.max_memory_bytes.is_some()
    }

    /// Check every budget except rounds (rounds are checked by
    /// [`round_limit_hit`](Governor::round_limit_hit) at round
    /// boundaries). Call between atomic steps; `Err` carries the trip
    /// reason.
    pub fn check(&self) -> Result<(), TripReason> {
        if !self.engaged {
            return Ok(());
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(TripReason::Cancelled);
            }
        }
        if let Some(d) = self.budget.deadline {
            if self.start.elapsed() >= d {
                return Err(TripReason::Deadline);
            }
        }
        if let Some(cap) = self.budget.max_tuples {
            if self.tuples.load(Ordering::Relaxed) > cap {
                return Err(TripReason::Tuples);
            }
        }
        if let Some(cap) = self.budget.max_nulls {
            if self.nulls.load(Ordering::Relaxed) > cap {
                return Err(TripReason::Nulls);
            }
        }
        if let Some(cap) = self.budget.max_memory_bytes {
            if self.bytes.load(Ordering::Relaxed) > cap {
                return Err(TripReason::Memory);
            }
        }
        Ok(())
    }

    /// Record one committed (instance-changing) chase round.
    ///
    /// Accounting is unconditional (even for an unlimited governor) so
    /// exhaustion reports triggered by *external* limits — e.g. the
    /// chase's own `max_rounds` option — still carry accurate counters.
    pub fn note_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Preload the committed-round counter with `n` rounds done by an
    /// earlier run — used when resuming a checkpointed chase so round
    /// caps and exhaustion reports count *total* rounds across the
    /// original and resumed processes, not just the resumed one.
    pub fn note_rounds(&self, n: u64) {
        self.rounds.fetch_add(n, Ordering::Relaxed);
    }

    /// Has the committed-round cap been exceeded? (Checked after
    /// [`note_round`](Governor::note_round), mirroring the historical
    /// `max_rounds` semantics: a run may commit exactly `max_rounds`
    /// changed rounds plus the fixpoint-proving round; one more trips.)
    pub fn round_limit_hit(&self) -> bool {
        match self.budget.max_rounds {
            Some(cap) => self.rounds.load(Ordering::Relaxed) > cap,
            None => false,
        }
    }

    /// Record `n` genuinely-new derived tuples.
    pub fn note_tuples(&self, n: usize) {
        if n > 0 {
            self.tuples.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Record `n` fresh nulls.
    pub fn note_nulls(&self, n: usize) {
        if n > 0 {
            self.nulls.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Record `n` approximate bytes of derived tuple data.
    pub fn note_bytes(&self, n: usize) {
        if n > 0 {
            self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Snapshot consumption into a report for trip `reason`.
    pub fn report(&self, reason: TripReason) -> ExhaustionReport {
        ExhaustionReport {
            reason,
            rounds_committed: self.rounds.load(Ordering::Relaxed),
            tuples_derived: self.tuples.load(Ordering::Relaxed),
            nulls_created: self.nulls.load(Ordering::Relaxed),
            approx_bytes: self.bytes.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let g = Governor::unlimited();
        g.note_tuples(1_000_000);
        g.note_nulls(1_000_000);
        g.note_round();
        assert!(g.check().is_ok());
        assert!(!g.round_limit_hit());
    }

    #[test]
    fn tuple_budget_trips_past_cap() {
        let g = Governor::new(Budget::unlimited().with_max_tuples(10));
        g.note_tuples(10);
        assert!(g.check().is_ok(), "cap is inclusive");
        g.note_tuples(1);
        assert_eq!(g.check(), Err(TripReason::Tuples));
        let r = g.report(TripReason::Tuples);
        assert_eq!(r.tuples_derived, 11);
        assert_eq!(r.reason, TripReason::Tuples);
    }

    #[test]
    fn null_and_memory_budgets_trip() {
        let g = Governor::new(Budget::unlimited().with_max_nulls(2));
        g.note_nulls(3);
        assert_eq!(g.check(), Err(TripReason::Nulls));

        let g = Governor::new(Budget::unlimited().with_max_memory(100));
        assert!(g.tracks_memory());
        g.note_bytes(101);
        assert_eq!(g.check(), Err(TripReason::Memory));
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let g = Governor::new(Budget::unlimited().with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(g.check(), Err(TripReason::Deadline));
    }

    #[test]
    fn round_limit_mirrors_historical_semantics() {
        let g = Governor::new(Budget::unlimited().with_max_rounds(2));
        g.note_round();
        g.note_round();
        assert!(!g.round_limit_hit(), "exactly max_rounds is fine");
        g.note_round();
        assert!(g.round_limit_hit());
        assert!(g.check().is_ok(), "check() ignores rounds");
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let g = Governor::unlimited().with_cancel(t.clone());
        assert!(g.check().is_ok());
        t.cancel();
        assert_eq!(g.check(), Err(TripReason::Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancellation_from_another_thread() {
        let t = CancelToken::new();
        let g = Governor::unlimited().with_cancel(t.clone());
        let handle = std::thread::spawn(move || t.cancel());
        handle.join().expect("cancel thread panicked");
        assert_eq!(g.check(), Err(TripReason::Cancelled));
    }

    #[test]
    fn report_display_is_readable() {
        let g = Governor::new(Budget::unlimited().with_max_tuples(1));
        g.note_tuples(2);
        let text = g.report(TripReason::Tuples).to_string();
        assert!(text.contains("budget exhausted: derived-tuple limit"));
        assert!(text.contains("tuples derived:   2"));
    }

    #[test]
    fn budget_intersect_takes_the_stricter_cap() {
        let server = Budget::unlimited()
            .with_max_rounds(100)
            .with_max_tuples(1000)
            .with_deadline(Duration::from_secs(10));
        let request = Budget::unlimited()
            .with_max_rounds(5)
            .with_max_nulls(7)
            .with_deadline(Duration::from_secs(60));
        let b = server.intersect(request);
        assert_eq!(b.max_rounds, Some(5), "request narrows");
        assert_eq!(b.max_tuples, Some(1000), "server cap survives");
        assert_eq!(b.max_nulls, Some(7), "request adds a new axis");
        assert_eq!(
            b.deadline,
            Some(Duration::from_secs(10)),
            "request cannot widen the server deadline"
        );
        assert_eq!(b.max_memory_bytes, None);
    }

    /// Golden-pins the versioned wire JSON byte-for-byte: this shape is
    /// consumed by `dexd` clients and `--stats --format json` tooling,
    /// so any drift must show up as a deliberate diff here (and a bump
    /// of [`EXHAUSTION_REPORT_WIRE_V`]).
    #[test]
    fn exhaustion_report_wire_format_is_pinned() {
        let r = ExhaustionReport {
            reason: TripReason::Tuples,
            rounds_committed: 3,
            tuples_derived: 11,
            nulls_created: 2,
            approx_bytes: 640,
            elapsed: Duration::from_millis(1234),
        };
        let got = serde_json::to_string(&r).expect("report serializes");
        assert_eq!(
            got,
            "{\"v\":1,\"reason\":\"tuples\",\"rounds_committed\":3,\
             \"tuples_derived\":11,\"nulls_created\":2,\
             \"approx_bytes\":640,\"elapsed_ms\":1234}"
        );
    }

    #[test]
    fn trip_reason_tokens_are_stable() {
        let all = [
            (TripReason::Deadline, "deadline"),
            (TripReason::Rounds, "rounds"),
            (TripReason::Tuples, "tuples"),
            (TripReason::Nulls, "nulls"),
            (TripReason::Memory, "memory"),
            (TripReason::Cancelled, "cancelled"),
        ];
        for (reason, token) in all {
            assert_eq!(reason.token(), token);
        }
    }

    #[test]
    fn governor_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Governor>();
        assert_sync::<CancelToken>();
    }
}
