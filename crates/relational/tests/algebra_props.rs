//! Property-based tests for the relational substrate: algebraic laws of
//! the operators, FD closure properties, and homomorphism structure.

use dex_relational::algebra::{
    difference, intersection, natural_join, natural_join_scan, project, rename_attrs, select, union,
};
use dex_relational::homomorphism::{find_homomorphism, is_homomorphic_to};
use dex_relational::{
    tuple, Expr, Fd, FdSet, Instance, Name, RelSchema, Relation, Schema, Tuple, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn rel_schema() -> RelSchema {
    RelSchema::untyped("R", vec!["a", "b", "c"]).unwrap()
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0i64..6, 0i64..6, 0i64..4), 0..12).prop_map(|rows| {
        Relation::from_tuples(
            rel_schema(),
            rows.into_iter()
                .map(|(a, b, c)| tuple![a, b, c])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    })
}

fn pred() -> Expr {
    Expr::attr("a").le(Expr::attr("b"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ is idempotent: σ_P(σ_P(R)) = σ_P(R).
    #[test]
    fn select_idempotent(r in arb_relation()) {
        let once = select(&r, &pred(), "R").unwrap();
        let twice = select(&once, &pred(), "R").unwrap();
        prop_assert_eq!(once.tuples(), twice.tuples());
    }

    /// σ distributes over ∪.
    #[test]
    fn select_distributes_over_union(r in arb_relation(), s in arb_relation()) {
        let u = union(&r, &s, "R").unwrap();
        let left = select(&u, &pred(), "R").unwrap();
        let right = union(
            &select(&r, &pred(), "R").unwrap(),
            &select(&s, &pred(), "R").unwrap(),
            "R",
        ).unwrap();
        prop_assert_eq!(left.tuples(), right.tuples());
    }

    /// π is monotone and never grows the relation.
    #[test]
    fn project_shrinks(r in arb_relation()) {
        let p = project(&r, &["a", "b"], "P").unwrap();
        prop_assert!(p.len() <= r.len());
        // Projecting everything is the identity on tuples.
        let all = project(&r, &["a", "b", "c"], "P").unwrap();
        prop_assert_eq!(all.tuples(), r.tuples());
    }

    /// Union is commutative and associative; difference undoes union on
    /// disjoint parts.
    #[test]
    fn union_laws(r in arb_relation(), s in arb_relation(), t in arb_relation()) {
        let rs = union(&r, &s, "R").unwrap();
        let sr = union(&s, &r, "R").unwrap();
        prop_assert_eq!(rs.tuples(), sr.tuples());
        let a = union(&rs, &t, "R").unwrap();
        let st = union(&s, &t, "R").unwrap();
        let b = union(&r, &st, "R").unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
        // (R ∪ S) − S ⊆ R.
        let diff = difference(&rs, &s, "R").unwrap();
        for tup in diff.iter() {
            prop_assert!(r.contains(&tup));
        }
    }

    /// Intersection = R − (R − S).
    #[test]
    fn intersection_via_double_difference(r in arb_relation(), s in arb_relation()) {
        let direct = intersection(&r, &s, "R").unwrap();
        let viadiff = difference(&r, &difference(&r, &s, "R").unwrap(), "R").unwrap();
        prop_assert_eq!(direct.tuples(), viadiff.tuples());
    }

    /// Natural join with self (same header) is idempotent-ish:
    /// R ⋈ R = R.
    #[test]
    fn self_join_identity(r in arb_relation()) {
        let j = natural_join(&r, &r, "R").unwrap();
        prop_assert_eq!(j.tuples(), r.tuples());
    }

    /// Rename round-trips.
    #[test]
    fn rename_round_trip(r in arb_relation()) {
        let mut fwd = BTreeMap::new();
        fwd.insert(Name::new("a"), Name::new("x"));
        fwd.insert(Name::new("b"), Name::new("y"));
        let mut bwd = BTreeMap::new();
        bwd.insert(Name::new("x"), Name::new("a"));
        bwd.insert(Name::new("y"), Name::new("b"));
        let renamed = rename_attrs(&r, &fwd, "R").unwrap();
        let back = rename_attrs(&renamed, &bwd, "R").unwrap();
        prop_assert_eq!(back.tuples(), r.tuples());
        prop_assert_eq!(
            back.schema().attr_names().collect::<Vec<_>>(),
            r.schema().attr_names().collect::<Vec<_>>()
        );
    }

    /// Join is bounded by the product size and projects back into its
    /// operands.
    #[test]
    fn join_projections_sound(r in arb_relation(), s_rows in
        proptest::collection::btree_set((0i64..6, 0i64..5), 0..10)) {
        // S(b, d): shares column b with R(a, b, c).
        let s_schema = RelSchema::untyped("S", vec!["b", "d"]).unwrap();
        let s = Relation::from_tuples(
            s_schema,
            s_rows.into_iter().map(|(b, d)| tuple![b, d]).collect::<Vec<_>>(),
        ).unwrap();
        let j = natural_join(&r, &s, "J").unwrap();
        prop_assert!(j.len() <= r.len() * s.len());
        // Every joined row restricted to R's columns is an R row.
        let back_r = project(&j, &["a", "b", "c"], "R").unwrap();
        for tup in back_r.iter() {
            prop_assert!(r.contains(&tup));
        }
        let back_s = project(&j, &["b", "d"], "S").unwrap();
        for tup in back_s.iter() {
            prop_assert!(s.contains(&tup));
        }
    }

    /// The index-probing join agrees with the retained full-scan
    /// oracle on random inputs — shared attributes, disjoint headers
    /// (cartesian product), and self-joins alike.
    #[test]
    fn natural_join_indexed_agrees_with_scan(
        r in arb_relation(),
        s_rows in proptest::collection::btree_set((0i64..6, 0i64..5), 0..10),
        t_rows in proptest::collection::btree_set((0i64..4, 0i64..4), 0..8),
    ) {
        // S(b, d) shares column b with R(a, b, c).
        let s = Relation::from_tuples(
            RelSchema::untyped("S", vec!["b", "d"]).unwrap(),
            s_rows.into_iter().map(|(b, d)| tuple![b, d]).collect::<Vec<_>>(),
        ).unwrap();
        // T(x, y) shares nothing with R: the join degenerates to ×.
        let t = Relation::from_tuples(
            RelSchema::untyped("T", vec!["x", "y"]).unwrap(),
            t_rows.into_iter().map(|(x, y)| tuple![x, y]).collect::<Vec<_>>(),
        ).unwrap();
        for (a, b) in [(&r, &s), (&s, &r), (&r, &t), (&r, &r)] {
            let indexed = natural_join(a, b, "J").unwrap();
            let scan = natural_join_scan(a, b, "J").unwrap();
            prop_assert_eq!(indexed.tuples(), scan.tuples());
            prop_assert_eq!(
                indexed.schema().attr_names().collect::<Vec<_>>(),
                scan.schema().attr_names().collect::<Vec<_>>()
            );
        }
    }

    /// FD closure is extensive, monotone, and idempotent.
    #[test]
    fn fd_closure_is_a_closure_operator(
        fd_pairs in proptest::collection::vec((0usize..4, 0usize..4), 0..5),
        start in proptest::collection::btree_set(0usize..4, 0..4),
    ) {
        let attrs = ["a", "b", "c", "d"];
        let fds: FdSet = fd_pairs
            .into_iter()
            .map(|(x, y)| Fd::new(vec![attrs[x]], vec![attrs[y]]))
            .collect();
        let start: std::collections::BTreeSet<Name> =
            start.into_iter().map(|i| Name::new(attrs[i])).collect();
        let cl = fds.closure(&start);
        prop_assert!(start.is_subset(&cl), "extensive");
        prop_assert_eq!(fds.closure(&cl.clone()), cl.clone(), "idempotent");
        // Monotone: closure of a subset is a subset of the closure.
        if let Some(first) = start.iter().next() {
            let mut smaller = start.clone();
            smaller.remove(&first.clone());
            prop_assert!(fds.closure(&smaller).is_subset(&cl));
        }
    }

    /// Homomorphisms compose: if h : A → B and g : B → C exist, then
    /// A → C exists.
    #[test]
    fn homomorphisms_compose(rows in proptest::collection::btree_set((0u8..3, 0u8..3), 1..5)) {
        let schema = Schema::with_relations(vec![
            RelSchema::untyped("E", vec!["s", "t"]).unwrap()
        ]).unwrap();
        // A: null-graph; B: half-ground; C: fully ground single loop.
        let mut a = Instance::empty(schema.clone());
        let mut b = Instance::empty(schema.clone());
        let mut c = Instance::empty(schema.clone());
        for (x, y) in &rows {
            a.insert("E", Tuple::new(vec![Value::null(*x as u64), Value::null(*y as u64)])).unwrap();
            b.insert("E", Tuple::new(vec![Value::str("v"), Value::null(*y as u64)])).unwrap();
        }
        b.insert("E", Tuple::new(vec![Value::str("v"), Value::str("v")])).unwrap();
        c.insert("E", tuple!["v", "v"]).unwrap();
        if is_homomorphic_to(&a, &b) && is_homomorphic_to(&b, &c) {
            prop_assert!(is_homomorphic_to(&a, &c));
        }
        // And the composed witness verifies.
        if let (Some(h1), Some(h2)) = (find_homomorphism(&a, &b), find_homomorphism(&b, &c)) {
            let h = h1.then(&h2);
            prop_assert!(h.verify(&a, &c));
        }
    }

    /// The revision operator (via select-lens semantics) never violates
    /// a key FD that held before.
    #[test]
    fn fd_violations_detected_exactly(rows in proptest::collection::vec((0i64..4, 0i64..4), 0..8)) {
        let schema = RelSchema::untyped("K", vec!["k", "v"])
            .unwrap()
            .with_fd(Fd::new(vec!["k"], vec!["v"]))
            .unwrap();
        let mut rel = Relation::empty(schema);
        for (k, v) in &rows {
            rel.insert(tuple![*k, *v]).unwrap();
        }
        // Ground truth: group by k, count groups with >1 distinct v.
        let mut by_k: BTreeMap<i64, std::collections::BTreeSet<i64>> = BTreeMap::new();
        for t in rel.iter() {
            by_k.entry(t[0].as_int().unwrap()).or_default().insert(t[1].as_int().unwrap());
        }
        let expected_violating_groups = by_k.values().filter(|vs| vs.len() > 1).count();
        prop_assert_eq!(rel.satisfies_fds(), expected_violating_groups == 0);
    }
}
