//! E5 — lens-law checking throughput: how fast the executable laws run
//! over relational lenses (these checks gate every put in a cautious
//! deployment, so their cost matters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{persons, persons_mapping};
use dex_lens::laws;
use dex_rellens::{Environment, InstanceLens, RelLensExpr, UpdatePolicy};
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn project_lens() -> InstanceLens {
    InstanceLens::new(
        RelLensExpr::base("Person1").project(
            vec!["id", "name"],
            vec![
                ("age", UpdatePolicy::Null),
                ("city", UpdatePolicy::fd_or_null(vec!["name"])),
            ],
        ),
        persons_mapping().source().clone(),
        Environment::new(),
    )
    .unwrap()
}

fn bench_law_checks(c: &mut Criterion) {
    let l = project_lens();
    let mut group = c.benchmark_group("e5_lens_laws");
    for n in [50usize, 500, 2_000] {
        let db = persons(n);
        let view = l.try_get(&db).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("get_put", n), &db, |b, db| {
            b.iter(|| laws::check_get_put(black_box(&l), black_box(db)).is_ok())
        });
        group.bench_with_input(
            BenchmarkId::new("put_get", n),
            &(db.clone(), view.clone()),
            |b, (db, view)| {
                b.iter(|| {
                    laws::check_put_get(black_box(&l), black_box(view), black_box(db)).is_ok()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("create_get", n), &view, |b, view| {
            b.iter(|| laws::check_create_get(black_box(&l), black_box(view)).is_ok())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_law_checks
}
criterion_main!(benches);
