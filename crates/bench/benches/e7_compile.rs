//! E7 — the §4 pipeline: st-tgd → lens-template compile time vs
//! mapping size, and compiled-lens forward throughput vs the chase on
//! the same mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{persons, persons_mapping, takes, university_mapping};
use dex_chase::exchange;
use dex_core::{compile, Engine};
use dex_logic::parse_mapping;
use dex_rellens::Environment;
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// A synthetic mapping with `k` independent projection tgds.
fn wide_mapping(k: usize) -> dex_logic::Mapping {
    let mut text = String::new();
    for i in 0..k {
        text.push_str(&format!("source S{i}(a, b, c);\n"));
        text.push_str(&format!("target T{i}(a, b, extra);\n"));
    }
    for i in 0..k {
        text.push_str(&format!("S{i}(x, y, w) -> T{i}(x, y, z);\n"));
    }
    parse_mapping(&text).unwrap()
}

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_compile/compile_time");
    for k in [1usize, 8, 32] {
        let m = wide_mapping(k);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("tgds", k), &m, |b, m| {
            b.iter(|| compile(black_box(m)).unwrap())
        });
    }
    group.finish();
}

fn bench_forward_vs_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_compile/forward_vs_chase");

    // The Person1/Person2 projection mapping.
    let pm = persons_mapping();
    let pengine = Engine::new(compile(&pm).unwrap(), Environment::new()).unwrap();
    for n in [100usize, 1_000, 5_000] {
        let src = persons(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("persons/chase", n), &src, |b, src| {
            b.iter(|| exchange(black_box(&pm), black_box(src)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("persons/lens_forward", n),
            &src,
            |b, src| b.iter(|| pengine.forward(black_box(src), None).unwrap()),
        );
    }

    // The Figure 1 mapping (multi-atom rhs).
    let um = university_mapping();
    let uengine = Engine::new(compile(&um).unwrap(), Environment::new()).unwrap();
    for n in [100usize, 1_000] {
        let src = takes(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("university/chase", n), &src, |b, src| {
            b.iter(|| exchange(black_box(&um), black_box(src)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("university/lens_forward", n),
            &src,
            |b, src| b.iter(|| uengine.forward(black_box(src), None).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_compile_time, bench_forward_vs_chase
}
criterion_main!(benches);
