//! E10 — core computation cost vs null density: folding redundant
//! null blocks out of a universal solution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::null_spokes;
use dex_chase::core_of;
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_core");
    for n in [40usize, 80] {
        for density in [0.0f64, 0.3, 0.7] {
            let inst = null_spokes(n, density);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("density_{density}"), n),
                &inst,
                |b, inst| b.iter(|| core_of(black_box(inst))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_core
}
criterion_main!(benches);
