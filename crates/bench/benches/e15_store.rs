//! E15 — persistence cost: snapshot write/load throughput, WAL append
//! latency, recovery time vs WAL length, and the overhead a checkpoint
//! sink adds to an otherwise identical chase.
//!
//! All arms run with `sync: false`: fsync latency is a property of the
//! CI disk, not of the store's encode/scan/replay paths, and the
//! durability ordering itself is covered by the crash matrix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dex_chase::{
    exchange_checkpointed, exchange_governed, ChaseOptions, Checkpoint, CheckpointSink,
};
use dex_logic::parse_mapping;
use dex_relational::{Governor, Instance, Name, Tuple, Value};
use dex_store::{snapshot, ChaseState, Store, StoreMode, StoreOptions};
use std::hint::black_box;
use std::path::PathBuf;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

const N: usize = 10_000;

const MAPPING: &str = r#"
    source R(a);
    target S(a, b);
    target T(b);
    R(x) -> S(x, y);
    S(x, y) -> T(y);
"#;

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dex_e15_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn opts() -> StoreOptions {
    StoreOptions {
        snapshot_every: u64::MAX,
        sync: false,
    }
}

/// An instance with `n` two-column tuples in one relation.
fn instance(n: usize) -> Instance {
    let m = parse_mapping(MAPPING).unwrap();
    let facts: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new(vec![Value::str(format!("k{i}")), Value::int(i as i64)]))
        .collect();
    Instance::with_facts(m.target().clone(), vec![("S", facts)]).unwrap()
}

/// A source instance driving a two-round chase over `n` facts.
fn source(n: usize) -> (dex_logic::Mapping, Instance) {
    let m = parse_mapping(MAPPING).unwrap();
    let facts: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new(vec![Value::str(format!("k{i}"))]))
        .collect();
    let src = Instance::with_facts(m.source().clone(), vec![("R", facts)]).unwrap();
    (m, src)
}

/// A sink that swallows checkpoints: isolates the chase-side cost of
/// materializing `Checkpoint` values from any disk work.
struct NullSink;
impl CheckpointSink for NullSink {
    fn on_checkpoint(&mut self, cp: Checkpoint<'_>) -> Result<(), String> {
        black_box(cp.round);
        Ok(())
    }
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_snapshot");
    group.throughput(Throughput::Elements(N as u64));

    let state = ChaseState {
        instance: instance(N),
        round: 7,
        next_null: N as u64,
        complete: false,
    };
    let dir = tempdir("snap");
    group.bench_function(format!("write/{N}"), |b| {
        b.iter(|| snapshot::write(&dir, &state, false).unwrap())
    });
    snapshot::write(&dir, &state, false).unwrap();
    group.bench_function(format!("load/{N}"), |b| {
        b.iter(|| black_box(snapshot::read(&dir).unwrap().unwrap()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_wal");

    let (_, src) = source(16);
    let target = instance(16);
    let batch: Vec<(Name, Vec<Tuple>)> = vec![(
        Name::new("S"),
        (0..8)
            .map(|i| Tuple::new(vec![Value::str(format!("d{i}")), Value::int(i)]))
            .collect(),
    )];

    let dir = tempdir("wal");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::create(&dir, StoreMode::Chase, MAPPING, &src, opts()).unwrap();
    let mut round = 0u64;
    group.bench_function("append_delta_8", |b| {
        b.iter(|| {
            round += 1;
            store
                .record_checkpoint(&Checkpoint {
                    round,
                    next_null: round,
                    target: &target,
                    delta: Some(batch.clone()),
                    complete: false,
                })
                .unwrap()
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_recovery");

    for wal_len in [100u64, 1000] {
        // A store whose WAL holds `wal_len` delta records past the
        // round-0 snapshot; recovery must scan and replay all of them.
        let (_, src) = source(16);
        let target = instance(16);
        let dir = tempdir(&format!("rec{wal_len}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::create(&dir, StoreMode::Chase, MAPPING, &src, opts()).unwrap();
        store
            .record_checkpoint(&Checkpoint {
                round: 0,
                next_null: 0,
                target: &Instance::empty(parse_mapping(MAPPING).unwrap().target().clone()),
                delta: None,
                complete: false,
            })
            .unwrap();
        for round in 1..=wal_len {
            let batch = vec![(
                Name::new("S"),
                vec![Tuple::new(vec![
                    Value::str(format!("r{round}")),
                    Value::int(round as i64),
                ])],
            )];
            store
                .record_checkpoint(&Checkpoint {
                    round,
                    next_null: round,
                    target: &target,
                    delta: Some(batch),
                    complete: false,
                })
                .unwrap();
        }
        group.throughput(Throughput::Elements(wal_len));
        group.bench_function(format!("replay/{wal_len}"), |b| {
            b.iter(|| {
                let s = Store::open(&dir, opts()).unwrap();
                let r = s.recover().unwrap().unwrap();
                assert_eq!(r.state.round, wal_len);
                black_box(r.replayed_records)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_overhead");

    let (m, src) = source(2000);
    group.bench_function("exchange_plain", |b| {
        b.iter(|| {
            black_box(
                exchange_governed(&m, &src, ChaseOptions::default(), &Governor::unlimited())
                    .unwrap(),
            )
        })
    });
    group.bench_function("exchange_null_sink", |b| {
        b.iter(|| {
            black_box(
                exchange_checkpointed(
                    &m,
                    &src,
                    ChaseOptions::default(),
                    &Governor::unlimited(),
                    &mut NullSink,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_snapshot, bench_wal_append, bench_recovery, bench_checkpoint_overhead
}
criterion_main!(benches);
