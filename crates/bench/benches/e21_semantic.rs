//! E21 — chase-based equivalence and the provably-safe optimizer.
//!
//! Two questions about the semantic pass (DESIGN.md §15):
//!
//! * **equivalence cost** — `equivalent(m, m)` chases one critical
//!   instance per dependency per direction, so self-equivalence on `n`
//!   copy rules is the clean scaling probe for the whole containment
//!   machinery (shim construction, critical freeze, implication
//!   chase). Benched at n = 2/8/32.
//! * **optimizer cost** — `optimize` re-verifies every candidate
//!   rewrite through that same machinery, so its cost is roughly
//!   (candidates × containment checks). Benched on mappings with `n`
//!   planted duplicate rules, which the optimizer must find and prove
//!   deletable one at a time.
//!
//! `DEX_E21_JSON=path cargo bench -p dex-bench --bench e21_semantic`
//! skips criterion and writes the CI smoke artifact instead: one JSON
//! object with per-rule equivalence time, optimizer time, and the
//! rewrite count (which doubles as a correctness probe — the optimizer
//! must delete exactly the planted redundancy).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dex_analyze::{equivalent, optimize};
use dex_logic::{parse_mapping, Mapping};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// `n` independent copy rules `S{i}(x, y) → T{i}(x, y)` — already
/// minimal, so `equivalent(m, m)` exercises pure containment checking
/// and `optimize` runs every candidate probe without finding anything.
fn copy_mapping(n: usize) -> Mapping {
    let mut text = String::new();
    for i in 0..n {
        let _ = writeln!(text, "source S{i}(a, b);");
        let _ = writeln!(text, "target T{i}(a, b);");
    }
    for i in 0..n {
        let _ = writeln!(text, "S{i}(x, y) -> T{i}(x, y);");
    }
    parse_mapping(&text).expect("copy mapping parses")
}

/// `n` copy rules, each stated twice — `n` planted deletions for the
/// optimizer to find and prove, one containment obligation each.
fn redundant_mapping(n: usize) -> Mapping {
    let mut text = String::new();
    for i in 0..n {
        let _ = writeln!(text, "source S{i}(a, b);");
        let _ = writeln!(text, "target T{i}(a, b);");
    }
    for i in 0..n {
        let _ = writeln!(text, "S{i}(x, y) -> T{i}(x, y);");
        let _ = writeln!(text, "S{i}(x, y) -> T{i}(x, y);");
    }
    parse_mapping(&text).expect("redundant mapping parses")
}

fn bench_semantic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_semantic");
    for n in [2usize, 8, 32] {
        group.throughput(Throughput::Elements(n as u64));
        let m = copy_mapping(n);
        group.bench_with_input(BenchmarkId::new("eq_self", n), &m, |b, m| {
            b.iter(|| equivalent(black_box(m), black_box(m)))
        });
    }
    for n in [2usize, 4, 8] {
        group.throughput(Throughput::Elements(n as u64));
        let m = redundant_mapping(n);
        group.bench_with_input(BenchmarkId::new("optimize_redundant", n), &m, |b, m| {
            b.iter(|| optimize(black_box(m)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_semantic
}

/// Median-of-9 wall time for `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The CI smoke artifact: one data point per benchmark family, plus
/// the optimizer's rewrite count as a built-in correctness probe.
fn smoke(path: &str) {
    let n_eq = 32usize;
    let eq_m = copy_mapping(n_eq);
    let eq_us = median_us(|| {
        black_box(equivalent(black_box(&eq_m), black_box(&eq_m)));
    });
    assert!(
        equivalent(&eq_m, &eq_m).holds(),
        "self-equivalence must hold"
    );

    let n_opt = 8usize;
    let opt_m = redundant_mapping(n_opt);
    let opt_us = median_us(|| {
        black_box(optimize(black_box(&opt_m)));
    });
    let out = optimize(&opt_m);
    assert_eq!(
        out.rewrites.len(),
        n_opt,
        "optimizer must delete exactly the planted duplicates"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e21_semantic\",\n  \
         \"eq_self\": {{\"rules\": {n_eq}, \"us_per_rule\": {:.3}}},\n  \
         \"optimize\": {{\"planted\": {n_opt}, \"rewrites\": {}, \"us_total\": {:.1}}}\n}}\n",
        eq_us / n_eq as f64,
        out.rewrites.len(),
        opt_us,
    );
    std::fs::write(path, &json).expect("write smoke artifact");
    println!("e21 smoke metrics -> {path}\n{json}");
}

fn main() {
    if let Ok(path) = std::env::var("DEX_E21_JSON") {
        smoke(&path);
        return;
    }
    benches();
}
