//! E12 — the storage/matching substrate ablation: full-scan oracle vs
//! indexed matching vs indexed **semi-naive** target chase, on E1's
//! Emp → Manager workload at n = 10² … 10⁵.
//!
//! Two workloads:
//! * `scan` / `indexed` — plain E1 (`Emp(x) → ∃y Manager(x, y)`). The
//!   standard chase's per-firing `has_match` check is the hot spot:
//!   a scan is O(n) per check (O(n²) total), an index probe is O(1).
//! * `semi_naive_scan` / `semi_naive` — E1 extended with a target tgd
//!   (`Manager(e, m) → Mgr(m)`), so phase 2 actually runs rounds and
//!   the delta-driven matcher has something to skip.
//!
//! The scan arms are capped at n ≤ 10³ — beyond that the quadratic
//! blow-up makes the bench run minutes per sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{emp_mapping, emps};
use dex_chase::{exchange_governed, exchange_with, Budget, ChaseOptions, Governor, Matcher};
use dex_logic::{parse_mapping, Mapping};
use std::hint::black_box;

/// Never-tripping budget for the governed arm (see E14): engages every
/// counter check without a memory cap.
fn generous_budget() -> Budget {
    Budget::unlimited()
        .with_deadline(std::time::Duration::from_secs(3600))
        .with_max_rounds(u64::MAX / 2)
        .with_max_tuples(u64::MAX / 2)
        .with_max_nulls(u64::MAX / 2)
}

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// E1 plus a target tgd, so the phase-2 chase runs real rounds.
fn emp_mgr_mapping() -> Mapping {
    parse_mapping(
        r#"
        source Emp(name);
        target Manager(emp, mgr);
        target Mgr(m);
        Emp(x) -> Manager(x, y);
        Manager(e, m) -> Mgr(m);
        "#,
    )
    .unwrap()
}

fn opts(matcher: Matcher) -> ChaseOptions {
    ChaseOptions {
        matcher,
        ..Default::default()
    }
}

fn bench_matching(c: &mut Criterion) {
    let plain = emp_mapping();
    let with_target_deps = emp_mgr_mapping();
    let mut group = c.benchmark_group("e12_matching");
    for n in [100usize, 1_000, 10_000, 100_000] {
        let src = emps(n);
        group.throughput(Throughput::Elements(n as u64));
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("scan", n), &src, |b, src| {
                b.iter(|| {
                    exchange_with(black_box(&plain), black_box(src), opts(Matcher::Scan)).unwrap()
                })
            });
            group.bench_with_input(BenchmarkId::new("semi_naive_scan", n), &src, |b, src| {
                b.iter(|| {
                    exchange_with(
                        black_box(&with_target_deps),
                        black_box(src),
                        opts(Matcher::Scan),
                    )
                    .unwrap()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("indexed", n), &src, |b, src| {
            b.iter(|| {
                exchange_with(black_box(&plain), black_box(src), opts(Matcher::Indexed)).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &src, |b, src| {
            b.iter(|| {
                exchange_with(
                    black_box(&with_target_deps),
                    black_box(src),
                    opts(Matcher::Indexed),
                )
                .unwrap()
            })
        });
        // The delta-driven chase under an engaged, never-tripping
        // governor — phase-2 rounds are where the per-obligation and
        // per-round budget checks concentrate (E14).
        group.bench_with_input(
            BenchmarkId::new("semi_naive_governed", n),
            &src,
            |b, src| {
                b.iter(|| {
                    let gov = Governor::new(generous_budget());
                    exchange_governed(
                        black_box(&with_target_deps),
                        black_box(src),
                        opts(Matcher::Indexed),
                        &gov,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_matching
}
criterion_main!(benches);
