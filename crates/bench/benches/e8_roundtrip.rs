//! E8 — backward propagation throughput vs edit batch size: the cost
//! of pushing target edits to the source through the compiled lenses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{persons, persons_mapping};
use dex_core::{compile, Engine};
use dex_relational::{Instance, Tuple, Value};
use dex_rellens::Environment;
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn bench_backward(c: &mut Criterion) {
    let m = persons_mapping();
    let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    let src = persons(2_000);
    let tgt = engine.forward(&src, None).unwrap();

    let mut group = c.benchmark_group("e8_roundtrip/backward");
    for batch in [1usize, 32, 256] {
        // Edit: delete `batch` rows and insert `batch` new rows.
        let mut edited = tgt.clone();
        let victims: Vec<Tuple> = edited
            .relation("Person2")
            .unwrap()
            .iter()
            .take(batch)
            .collect();
        for v in &victims {
            edited.remove("Person2", v).unwrap();
        }
        for i in 0..batch {
            edited
                .insert(
                    "Person2",
                    Tuple::new(vec![
                        Value::int(100_000 + i as i64),
                        Value::str(format!("fresh{i}")),
                        Value::int(1),
                        Value::str("0000"),
                    ]),
                )
                .unwrap();
        }
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(batch),
            &edited,
            |b, edited: &Instance| {
                b.iter(|| engine.backward(black_box(edited), black_box(&src)).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_forward_update(c: &mut Criterion) {
    // Forward as an update (prev target provided) — the stateful cospan
    // direction users hit on every sync.
    let m = persons_mapping();
    let engine = Engine::new(compile(&m).unwrap(), Environment::new()).unwrap();
    let mut group = c.benchmark_group("e8_roundtrip/forward_update");
    for n in [500usize, 2_000] {
        let src = persons(n);
        let tgt = engine.forward(&src, None).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(src, tgt),
            |b, (src, tgt)| {
                b.iter(|| {
                    engine
                        .forward(black_box(src), Some(black_box(tgt)))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_backward, bench_forward_update
}
criterion_main!(benches);
