//! E19 — `dexd` under load: request latency, concurrency scaling, and
//! the cost of saying no.
//!
//! Three questions about the daemon (DESIGN.md §13):
//!
//! * **round-trip floor** — what one governed chase request costs over
//!   a real socket (accept + parse + admission + chase + respond),
//!   benched on a small copy exchange and on the employees join.
//! * **scaling** — wall-clock for a fixed batch of requests as client
//!   concurrency grows past the worker count: the bounded queue should
//!   turn contention into queueing, not collapse.
//! * **shed cost** — when a burst overruns queue + workers, refused
//!   requests must be *cheaper* than served ones (the whole point of
//!   admission before work): measured as served vs shed latency under
//!   a deliberately overloaded burst.
//!
//! `DEX_E19_JSON=path cargo bench -p dex-bench --bench e19_serve`
//! skips criterion and writes the CI smoke artifact instead.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dexd::{Catalog, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const COPY: &str = "source A(x);\ntarget B(x);\nA(v) -> B(v);";
const EMPLOYEES: &str = "source Emp(name, dept);\n\
     source Dept(dept, mgr);\n\
     target Worker(name, dept, mgr);\n\
     key Worker(name);\n\
     Emp(n, d) & Dept(d, m) -> Worker(n, d, m);";

const COPY_BODY: &str = r#"{"source": {"A": [["a"], ["b"], ["c"], ["d"]]}}"#;
const EMP_BODY: &str = r#"{"source": {"Emp": [["ann", "eng"], ["bob", "ops"], ["cid", "eng"]], "Dept": [["eng", "dana"], ["ops", "eve"]]}}"#;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(10)
}

/// One blocking request; returns the status code (0 when the
/// connection died — how a shed at the accept stage looks).
fn status_of(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: e19\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    if stream.write_all(head.as_bytes()).is_err() || stream.write_all(body.as_bytes()).is_err() {
        return 0;
    }
    let mut raw = Vec::new();
    if stream.read_to_end(&mut raw).is_err() {
        return 0;
    }
    let text = String::from_utf8_lossy(&raw);
    text.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn spawn_server(workers: usize, queue: usize) -> ServerHandle {
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    };
    let catalog = Catalog::from_texts(&[("copy", COPY), ("emp", EMPLOYEES)]).expect("catalog");
    ServerHandle::spawn(config, catalog).expect("spawn dexd")
}

/// Fire `clients` threads × `per_client` requests each, all released
/// together; returns (elapsed, served-2xx count, shed-429 count).
fn burst(
    addr: SocketAddr,
    clients: usize,
    per_client: usize,
    path: &str,
    body: &str,
) -> (Duration, u64, u64) {
    let served = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let (served, shed, barrier) =
                (Arc::clone(&served), Arc::clone(&shed), Arc::clone(&barrier));
            let (path, body) = (path.to_string(), body.to_string());
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..per_client {
                    match status_of(addr, &path, &body) {
                        200 | 206 => served.fetch_add(1, Ordering::Relaxed),
                        429 | 503 => shed.fetch_add(1, Ordering::Relaxed),
                        _ => 0,
                    };
                }
            })
        })
        .collect();
    barrier.wait();
    let t = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    (
        t.elapsed(),
        served.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
    )
}

fn bench_serve(c: &mut Criterion) {
    let srv = spawn_server(4, 64);
    let addr = srv.addr();
    let mut group = c.benchmark_group("e19_serve");

    // Round-trip floor: one request, one connection, one chase.
    for (name, path, body) in [
        ("chase_copy", "/v1/mappings/copy/chase", COPY_BODY),
        ("exchange_emp", "/v1/mappings/emp/exchange", EMP_BODY),
    ] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(name, |b| {
            b.iter(|| {
                let status = status_of(addr, path, body);
                assert_eq!(status, 200);
            })
        });
    }

    // Scaling: 32 requests total, split across growing client counts.
    for clients in [1usize, 4, 8] {
        let per_client = 32 / clients;
        group.throughput(Throughput::Elements((clients * per_client) as u64));
        group.bench_with_input(
            BenchmarkId::new("batch32", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let (_, served, _) = burst(
                        addr,
                        clients,
                        per_client,
                        "/v1/mappings/copy/chase",
                        COPY_BODY,
                    );
                    assert_eq!(served, (clients * per_client) as u64);
                })
            },
        );
    }
    group.finish();
    srv.shutdown();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_serve
}

/// Median of the samples, in microseconds.
fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The CI smoke artifact: single-request medians, batch throughput at
/// 1 and 8 clients, and the overload split (served/shed and their
/// relative latency) against a deliberately tiny daemon.
fn smoke(path: &str) {
    let srv = spawn_server(4, 64);
    let addr = srv.addr();
    let mut lat = Vec::new();
    for (p, body) in [
        ("/v1/mappings/copy/chase", COPY_BODY),
        ("/v1/mappings/emp/exchange", EMP_BODY),
    ] {
        let mut samples: Vec<f64> = (0..15)
            .map(|_| {
                let t = Instant::now();
                assert_eq!(status_of(addr, p, body), 200);
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        lat.push(median_us(&mut samples));
    }
    let (t1, s1, _) = burst(addr, 1, 32, "/v1/mappings/copy/chase", COPY_BODY);
    let (t8, s8, _) = burst(addr, 8, 4, "/v1/mappings/copy/chase", COPY_BODY);
    assert_eq!(s1 + s8, 64);
    srv.shutdown();

    // Overload: 2 workers, queue of 2, 16 clients at once. Some must
    // be shed, everyone must get an answer.
    let tiny = spawn_server(2, 2);
    let taddr = tiny.addr();
    let (_, served, shed) = burst(taddr, 16, 2, "/v1/mappings/copy/chase", COPY_BODY);
    tiny.shutdown();

    let json = format!(
        "{{\n  \"experiment\": \"e19_serve\",\n  \
         \"request_us\": {{\"chase_copy\": {:.1}, \"exchange_emp\": {:.1}}},\n  \
         \"batch32_rps\": {{\"c1\": {:.0}, \"c8\": {:.0}}},\n  \
         \"overload\": {{\"requests\": 32, \"served\": {served}, \"shed\": {shed}}}\n}}\n",
        lat[0],
        lat[1],
        32.0 / t1.as_secs_f64(),
        32.0 / t8.as_secs_f64(),
    );
    std::fs::write(path, &json).expect("write smoke artifact");
    println!("e19 smoke metrics -> {path}\n{json}");
}

fn main() {
    if let Ok(path) = std::env::var("DEX_E19_JSON") {
        smoke(&path);
        return;
    }
    benches();
}
