//! E3 — Example 2's composition: symbolic composition cost vs chain
//! length, and executing the composed SO-tgd in one chase vs chasing
//! the two mappings in sequence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{chain_mappings, emps, example2_mappings};
use dex_chase::{exchange, so_exchange};
use dex_ops::compose;
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn bench_symbolic_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_composition/symbolic");
    for k in [2usize, 4, 8] {
        let chain = chain_mappings(k);
        group.bench_with_input(BenchmarkId::new("chain", k), &chain, |b, chain| {
            b.iter(|| {
                let mut acc = chain[0].clone();
                for next in &chain[1..] {
                    acc = compose(black_box(&acc), black_box(next))
                        .unwrap()
                        .into_mapping()
                        .unwrap();
                }
                acc
            })
        });
    }
    // The paper's Example 2 pair (second-order output).
    let (m12, m23) = example2_mappings();
    group.bench_function("example2", |b| {
        b.iter(|| compose(black_box(&m12), black_box(&m23)).unwrap())
    });
    group.finish();
}

fn bench_one_step_vs_two_step(c: &mut Criterion) {
    let (m12, m23) = example2_mappings();
    let comp = compose(&m12, &m23).unwrap();
    let mut group = c.benchmark_group("e3_composition/execution");
    for n in [100usize, 1_000, 5_000] {
        let src = emps(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("two_step_chase", n), &src, |b, src| {
            b.iter(|| {
                let j = exchange(black_box(&m12), black_box(src)).unwrap().target;
                exchange(black_box(&m23), &j).unwrap().target
            })
        });
        group.bench_with_input(BenchmarkId::new("one_step_sochase", n), &src, |b, src| {
            b.iter(|| so_exchange(black_box(&comp.sotgd), m23.target(), black_box(src)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_symbolic_composition, bench_one_step_vs_two_step
}
criterion_main!(benches);
