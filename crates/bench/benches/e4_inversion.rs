//! E4 — Example 3's inversion: maximum-recovery construction cost and
//! the bounded recovery verification cost vs instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_bench::{parents, parents_mapping};
use dex_ops::{is_recovery_witness, maximum_recovery, not_invertible_witness};
use dex_relational::{tuple, Instance};
use std::hint::black_box;

/// Short measurement windows: the suite's job is shape, not
/// publication-grade confidence intervals; this keeps the full
/// `cargo bench --workspace` run to a couple of minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

fn bench_recovery_construction(c: &mut Criterion) {
    let m = parents_mapping();
    c.bench_function("e4_inversion/maximum_recovery_construct", |b| {
        b.iter(|| maximum_recovery(black_box(&m)).unwrap())
    });
}

fn bench_recovery_verification(c: &mut Criterion) {
    let m = parents_mapping();
    let rec = maximum_recovery(&m).unwrap();
    let mut group = c.benchmark_group("e4_inversion/verify");
    for n in [10usize, 50, 200] {
        let sample = parents(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &sample, |b, sample| {
            b.iter(|| {
                is_recovery_witness(black_box(&m), black_box(&rec), std::slice::from_ref(sample))
            })
        });
    }
    group.finish();
}

fn bench_invertibility_witness(c: &mut Criterion) {
    let m = parents_mapping();
    let i1 = Instance::with_facts(
        m.source().clone(),
        vec![("Father", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    let i2 = Instance::with_facts(
        m.source().clone(),
        vec![("Mother", vec![tuple!["Leslie", "Alice"]])],
    )
    .unwrap();
    c.bench_function("e4_inversion/not_invertible_witness", |b| {
        b.iter(|| not_invertible_witness(black_box(&m), black_box(&i1), black_box(&i2)))
    });
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_recovery_construction, bench_recovery_verification, bench_invertibility_witness
}
criterion_main!(benches);
