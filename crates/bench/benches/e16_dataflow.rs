//! E16 — dataflow analysis & plan explanation cost vs mapping size.
//!
//! Three measurements over synthetic mappings of 10/100/1000
//! dependencies:
//!
//! * `flow_closure` — building the position-level flow graph and
//!   running the provenance fixpoint, on a *chain* mapping
//!   (`T{i} → T{i+1}`) whose closure genuinely propagates transitively
//!   through every link;
//! * `dataflow_pass` — the full DEX4xx lint pass (graph + closure +
//!   the five derived diagnostics);
//! * `explain` — lowering to the `MappingPlan` IR and rendering the
//!   annotated tree and the JSON surface (includes the lens compiler).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dex_analyze::{dataflow_pass, explain, FlowGraph};
use dex_logic::{Atom, Mapping, StTgd, Term};
use dex_relational::{RelSchema, Schema};
use std::hint::black_box;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

/// `S(x, y) → T0(x, z)` plus a chain of target tgds
/// `T{i}(x, y) → T{i+1}(y, z)`: every link copies one value forward and
/// invents one null, so provenance from `S` must flow through the whole
/// chain and the closure's fixpoint does `n` real propagation rounds.
fn chain_mapping(n: usize) -> Mapping {
    let source =
        Schema::with_relations(vec![RelSchema::untyped("S", vec!["a", "b"]).unwrap()]).unwrap();
    let target = Schema::with_relations(
        (0..n)
            .map(|i| RelSchema::untyped(format!("T{i}"), vec!["a", "b"]).unwrap())
            .collect(),
    )
    .unwrap();
    let st_tgds = vec![StTgd::new(
        vec![Atom::new("S", vec![Term::var("x"), Term::var("y")])],
        vec![Atom::new("T0", vec![Term::var("x"), Term::var("z")])],
    )];
    let target_tgds = (0..n.saturating_sub(1))
        .map(|i| {
            StTgd::new(
                vec![Atom::new(
                    format!("T{i}"),
                    vec![Term::var("x"), Term::var("y")],
                )],
                vec![Atom::new(
                    format!("T{}", i + 1),
                    vec![Term::var("y"), Term::var("z")],
                )],
            )
        })
        .collect();
    Mapping::with_target_deps(source, target, st_tgds, target_tgds, vec![]).unwrap()
}

/// `n` independent compilable copy rules — the shape `explain` meets in
/// practice (the lens section compiles, one tree per target relation).
fn copy_mapping(n: usize) -> Mapping {
    let source = Schema::with_relations(
        (0..n)
            .map(|i| RelSchema::untyped(format!("S{i}"), vec!["a", "b"]).unwrap())
            .collect(),
    )
    .unwrap();
    let target = Schema::with_relations(
        (0..n)
            .map(|i| RelSchema::untyped(format!("T{i}"), vec!["a", "b"]).unwrap())
            .collect(),
    )
    .unwrap();
    let st_tgds = (0..n)
        .map(|i| {
            StTgd::new(
                vec![Atom::new(
                    format!("S{i}"),
                    vec![Term::var("x"), Term::var("y")],
                )],
                vec![Atom::new(
                    format!("T{i}"),
                    vec![Term::var("x"), Term::var("y")],
                )],
            )
        })
        .collect();
    Mapping::new(source, target, st_tgds).unwrap()
}

fn bench_dataflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_dataflow");

    for n in [10usize, 100, 1000] {
        let m = chain_mapping(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("flow_closure", n), &m, |b, m| {
            b.iter(|| FlowGraph::build(black_box(m)).closure())
        });
        group.bench_with_input(BenchmarkId::new("dataflow_pass", n), &m, |b, m| {
            b.iter(|| dataflow_pass(black_box(m), None))
        });
    }

    // Rendering includes the lens compiler; keep single iterations
    // sub-second.
    for n in [10usize, 100] {
        let m = copy_mapping(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("explain_tree", n), &m, |b, m| {
            b.iter(|| explain(black_box(m), None).render_tree())
        });
        group.bench_with_input(BenchmarkId::new("explain_json", n), &m, |b, m| {
            b.iter(|| explain(black_box(m), None).to_json().to_string())
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_dataflow
}
criterion_main!(benches);
