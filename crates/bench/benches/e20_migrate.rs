//! E20 — live schema migration: staged-migration wall-clock against
//! the brute-force alternative (export the source, re-run the whole
//! exchange under the new schema), and the overhead the staging store
//! adds over the bare migration chase.
//!
//! The migrated store holds N `Staff(id, name)` tuples; the evolution
//! is `ADD COLUMN Staff.grade DEFAULT "none"` — a single-round copy
//! chase, so the numbers isolate the per-tuple cost of the migration
//! machinery rather than chase fixpoint behavior.
//!
//! All arms run with `sync: false` (fsync latency is a property of the
//! CI disk; durability ordering is covered by the crash matrix).
//!
//! `DEX_E20_JSON=path cargo bench -p dex-bench --bench e20_migrate`
//! emits the CI smoke artifact; set `DEX_E20_FULL=1` to extend the
//! smoke sweep to 10⁶ tuples.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use dex_chase::{exchange_checkpointed, exchange_governed, ChaseOptions};
use dex_evolution::{compile_migration, diff, prefix_instance, render_mapping_dex, Catalog};
use dex_logic::{parse_mapping, Mapping};
use dex_relational::{Governor, Instance, Schema, Tuple, Value};
use dex_store::{MigratePlan, MigrateRun, Migration, Store, StoreMode, StoreOptions, StoreSink};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10)
}

const OLD_MAPPING: &str =
    "source Emp(id, name);\ntarget Staff(id, name);\nEmp(i, n) -> Staff(i, n);\n";
const NEW_SCHEMA: &str = "target Staff(id, name, grade);\n";
/// The brute-force path: re-exchange the exported source under the new
/// schema directly.
const NEW_MAPPING: &str =
    "source Emp(id, name);\ntarget Staff(id, name, grade);\nEmp(i, n) -> Staff(i, n, \"none\");\n";

fn opts() -> StoreOptions {
    StoreOptions {
        snapshot_every: u64::MAX,
        sync: false,
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dex_e20_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn source(n: usize) -> (Mapping, Instance) {
    let m = parse_mapping(OLD_MAPPING).unwrap();
    let facts: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new(vec![Value::int(i as i64), Value::str(format!("n{i}"))]))
        .collect();
    let src = Instance::with_facts(m.source().clone(), vec![("Emp", facts)]).unwrap();
    (m, src)
}

/// Build a completed, durable store of N migrated-from tuples at `dir`
/// — the thing a migration starts from.
fn build_store(dir: &Path, n: usize) {
    let (m, src) = source(n);
    let _ = std::fs::remove_dir_all(dir);
    let mut store = Store::create(dir, StoreMode::Chase, OLD_MAPPING, &src, opts()).unwrap();
    let mut sink = StoreSink::new(&mut store);
    exchange_checkpointed(
        &m,
        &src,
        ChaseOptions::default(),
        &Governor::unlimited(),
        &mut sink,
    )
    .unwrap();
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// The compiled migration artifacts for a store at `dir`: the staged
/// plan, the `v0__`-prefixed stored instance, and the fold of the SMO
/// sequence as one chase mapping.
fn plan_migration(dir: &Path) -> (MigratePlan, Instance, Mapping) {
    let store = Store::open(dir, opts()).unwrap();
    let state = store.recover().unwrap().unwrap().state;
    let old = Catalog::from_schema(state.instance.schema());
    let new_schema: Schema = parse_mapping(NEW_SCHEMA).unwrap().target().clone();
    let smos = diff(&old, &Catalog::from_schema(&new_schema)).unwrap();
    let migration = compile_migration(state.instance.schema(), &new_schema, &smos).unwrap();
    let prefixed = prefix_instance(&state.instance, 0).unwrap();
    let plan = MigratePlan {
        schema_text: NEW_SCHEMA.to_string(),
        mapping_text: render_mapping_dex(&migration.mapping),
    };
    (plan, prefixed, migration.mapping)
}

/// The whole staged migration at `dir`: recover, diff, compile, stage,
/// chase into the staging store, commit, roll forward. Returns the
/// migrated tuple count.
fn migrate(dir: &Path) -> usize {
    let (plan, prefixed, _) = plan_migration(dir);
    let mut mig = Migration::begin(dir, &plan, &prefixed, opts()).unwrap();
    let tuples = match mig
        .run(ChaseOptions::default(), &Governor::unlimited())
        .unwrap()
    {
        MigrateRun::Done(state) => state.instance.fact_count(),
        MigrateRun::Suspended(r) => panic!("unbudgeted migration suspended: {r:?}"),
    };
    mig.finalize().unwrap();
    tuples
}

/// The brute-force alternative: re-run the full exchange of the
/// exported source under the new schema and persist a fresh store.
fn re_exchange(dir: &Path, n: usize) -> usize {
    let m = parse_mapping(NEW_MAPPING).unwrap();
    let (_, src) = source(n);
    let _ = std::fs::remove_dir_all(dir);
    let mut store = Store::create(dir, StoreMode::Chase, NEW_MAPPING, &src, opts()).unwrap();
    let mut sink = StoreSink::new(&mut store);
    let outcome = exchange_checkpointed(
        &m,
        &src,
        ChaseOptions::default(),
        &Governor::unlimited(),
        &mut sink,
    )
    .unwrap();
    black_box(outcome);
    n
}

fn bench_migrate(c: &mut Criterion) {
    for n in [10_000usize, 100_000] {
        let mut group = c.benchmark_group(format!("e20_migrate/{n}"));
        group.throughput(Throughput::Elements(n as u64));

        let template = tempdir(&format!("tmpl{n}"));
        build_store(&template, n);

        // Full staged migration, fresh store copy per iteration.
        let scratch = tempdir(&format!("mig{n}"));
        group.bench_function("staged", |b| {
            b.iter_batched(
                || {
                    let _ = std::fs::remove_dir_all(&scratch);
                    copy_dir(&template, &scratch);
                    scratch.clone()
                },
                |dir| {
                    assert_eq!(migrate(&dir), n);
                },
                BatchSize::PerIteration,
            )
        });

        // The bare migration chase with no staging store around it:
        // the staged/chase gap is the checkpoint + commit overhead.
        let (_, prefixed, mapping) = plan_migration(&template);
        group.bench_function("chase_only", |b| {
            b.iter(|| {
                black_box(
                    exchange_governed(
                        &mapping,
                        &prefixed,
                        ChaseOptions::default(),
                        &Governor::unlimited(),
                    )
                    .unwrap(),
                )
            })
        });

        // Brute force: full export + re-exchange under the new schema.
        let redir = tempdir(&format!("re{n}"));
        group.bench_function("re_exchange", |b| {
            b.iter(|| assert_eq!(re_exchange(&redir, n), n))
        });

        for d in [&template, &scratch, &redir] {
            let _ = std::fs::remove_dir_all(d);
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_migrate
}

/// The CI smoke artifact: one timed pass of each arm per size.
fn smoke(path: &str) {
    let mut sizes = vec![10_000usize, 100_000];
    if std::env::var("DEX_E20_FULL").is_ok() {
        sizes.push(1_000_000);
    }
    let mut rows = Vec::new();
    for n in &sizes {
        let n = *n;
        let template = tempdir(&format!("smoke_tmpl{n}"));
        build_store(&template, n);

        let dir = tempdir(&format!("smoke_mig{n}"));
        let _ = std::fs::remove_dir_all(&dir);
        copy_dir(&template, &dir);
        let t = Instant::now();
        assert_eq!(migrate(&dir), n);
        let migrate_ms = t.elapsed().as_secs_f64() * 1e3;

        let (_, prefixed, mapping) = plan_migration(&template);
        let t = Instant::now();
        let res = exchange_governed(
            &mapping,
            &prefixed,
            ChaseOptions::default(),
            &Governor::unlimited(),
        )
        .unwrap();
        black_box(res);
        let chase_ms = t.elapsed().as_secs_f64() * 1e3;

        let redir = tempdir(&format!("smoke_re{n}"));
        let t = Instant::now();
        assert_eq!(re_exchange(&redir, n), n);
        let re_exchange_ms = t.elapsed().as_secs_f64() * 1e3;

        rows.push(format!(
            "    {{\"tuples\": {n}, \"migrate_ms\": {migrate_ms:.1}, \
             \"chase_only_ms\": {chase_ms:.1}, \"re_exchange_ms\": {re_exchange_ms:.1}, \
             \"speedup_vs_re_exchange\": {:.2}}}",
            re_exchange_ms / migrate_ms
        ));
        for d in [&template, &dir, &redir] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"e20_migrate\",\n  \"arms\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("write smoke artifact");
    println!("e20 smoke metrics -> {path}\n{json}");
}

fn main() {
    if let Ok(path) = std::env::var("DEX_E20_JSON") {
        smoke(&path);
        return;
    }
    benches();
}
